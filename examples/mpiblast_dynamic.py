#!/usr/bin/env python3
"""mpiBLAST-style dynamic scheduling with Opass guided lists (§IV-D, §V-A3).

A master process feeds fragment-scan tasks to workers whose per-task compute
times are irregular (lognormal).  The default master picks arbitrary
remaining tasks; the Opass master follows precomputed per-worker lists and,
when a fast worker drains its list, steals the task with the most co-located
data from the longest remaining list — keeping both locality and load
balance in a heterogeneous run.

Run:  python examples/mpiblast_dynamic.py [--nodes N] [--fragments K]
"""

import argparse

from repro.apps import MpiBlastConfig, MpiBlastRun
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_table
from repro.workloads import gene_database


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--fragments", type=int, default=640)
    parser.add_argument("--compute-mean", type=float, default=0.5,
                        help="mean irregular compute time per task (s)")
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args()

    spec = ClusterSpec.homogeneous(args.nodes)
    fs = DistributedFileSystem(spec, seed=args.seed)
    db = gene_database(args.fragments)
    fs.put_dataset(db)
    placement = ProcessPlacement.one_per_node(args.nodes)
    config = MpiBlastConfig(compute_mean=args.compute_mean, compute_cv=0.8)
    print(f"gene database: {args.fragments} fragments "
          f"({db.size / 1e9:.1f} GB) on {args.nodes} nodes; "
          f"irregular compute ~{args.compute_mean}s/task\n")

    rows = []
    steals = {}
    for name, use_opass in [("default dynamic", False), ("Opass dynamic", True)]:
        fs.reset_counters()
        run = MpiBlastRun(fs, placement, db, config=config, use_opass=use_opass)
        out = run.execute(seed=args.seed)
        stats = out.result.io_stats()
        steals[name] = out.steals
        rows.append((
            name,
            stats["avg"], stats["max"], stats["min"],
            f"{out.result.locality_fraction:.0%}",
            out.result.makespan,
        ))

    print(format_table(
        ["method", "avg io (s)", "max io (s)", "min io (s)", "local reads",
         "makespan (s)"],
        rows,
        title="Figure 11 reproduction (paper: average I/O ~2.7x better with Opass)",
    ))
    ratio = rows[0][1] / rows[1][1]
    print(f"\naverage I/O improvement: {ratio:.1f}x; "
          f"locality-aware steals performed: {steals['Opass dynamic']}")


if __name__ == "__main__":
    main()
