#!/usr/bin/env python3
"""Opass on a busy, shared cluster (§V-C's multi-tenancy caveat).

Two tenants share one cluster clock:

* the application under test (the Fig-7 single-data workload), scheduled
  either naively or by Opass;
* Poisson background cross-traffic (another team's jobs).

The paper's prediction holds: everyone slows on a busy cluster, but
Opass's reads stay local, so its advantage persists at every load level.

Run:  python examples/shared_cluster.py
"""

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import (
    BackgroundTraffic,
    ParallelReadRun,
    Simulation,
    StaticSource,
    cluster_resources,
)
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32
MB = 10**6


def run(noise_rate: float, use_opass: bool):
    spec = ClusterSpec.homogeneous(NODES)
    fs = DistributedFileSystem(spec, seed=2015)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    assignment = (
        optimize_single_data(graph, seed=1).assignment
        if use_opass
        else rank_interval_assignment(len(tasks), NODES)
    )

    sim = Simulation()
    sim.add_resources(cluster_resources(spec))
    app = ParallelReadRun(
        fs, placement, tasks, StaticSource(assignment), seed=1, sim=sim
    )
    app.prepare()
    if noise_rate > 0:
        BackgroundTraffic(
            sim, spec, arrival_rate=noise_rate, transfer_size=32 * MB,
            duration=120.0, seed=7,
        ).prepare()
    sim.run()
    return app.collect()


def main() -> None:
    rows = []
    for rate, label in [(0.0, "idle cluster"), (2.0, "moderate traffic"),
                        (6.0, "heavy traffic")]:
        base = run(rate, use_opass=False)
        opass = run(rate, use_opass=True)
        rows.append((
            label,
            base.io_stats()["avg"], base.makespan,
            opass.io_stats()["avg"], opass.makespan,
            f"{base.io_stats()['avg'] / opass.io_stats()['avg']:.1f}x",
        ))
    print(format_table(
        ["cluster state", "naive avg io", "naive makespan",
         "opass avg io", "opass makespan", "opass advantage"],
        rows,
        title="one application + background tenants (32 nodes)",
    ))
    print("\nOpass cannot make a busy cluster idle (§V-C), but its requests "
          "are 'served in an optimized way as long as the cluster nodes "
          "have the capability' — the relative win survives the noise.")


if __name__ == "__main__":
    main()
