#!/usr/bin/env python3
"""Failure injection and incremental plan repair.

Demonstrates the reliability story end to end:

1. an Opass-scheduled run survives two DataNode deaths mid-execution —
   in-flight reads retry against surviving replicas (HDFS's replication
   doing its job), at the cost of some locality;
2. afterwards, instead of recomputing the matching from scratch for the
   next campaign run, the plan is *repaired* incrementally: only the dead
   nodes' tasks move (the §V-C scheduling-scalability future work).

Run:  python examples/failure_and_repair.py
"""

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    opass_single_data,
    rematch_incremental,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import FaultPlan, ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32


def build():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=2015)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    return fs, placement, tasks, data


def main() -> None:
    # -- 1. a clean Opass run, then the same run with two node deaths -------
    fs, placement, tasks, data = build()
    matched, graph, _ = opass_single_data(fs, data, placement, seed=1)
    clean = ParallelReadRun(
        fs, placement, tasks, StaticSource(matched.assignment), seed=1
    ).run()

    fs, placement, tasks, data = build()
    matched, graph, _ = opass_single_data(fs, data, placement, seed=1)
    run = ParallelReadRun(fs, placement, tasks, StaticSource(matched.assignment), seed=1)
    FaultPlan().fail(1.0, 0).fail(3.0, 1).attach(run)
    faulty = run.run()

    print(format_table(
        ["run", "tasks done", "read retries", "locality", "makespan (s)"],
        [
            ("clean", clean.tasks_completed, clean.read_retries,
             f"{clean.locality_fraction:.0%}", clean.makespan),
            ("nodes 0+1 die mid-run", faulty.tasks_completed, faulty.read_retries,
             f"{faulty.locality_fraction:.0%}", faulty.makespan),
        ],
        title="1. surviving DataNode failures (replication absorbs them)",
    ))

    # -- 2. repair the plan for the next run instead of re-solving ----------
    # The dead nodes stay gone; their processes too.
    fs.namenode.drop_node_replicas(0)
    fs.namenode.drop_node_replicas(1)
    new_graph = graph_from_filesystem(fs, tasks, placement)
    survivors = equal_quotas(len(tasks), NODES - 2)
    quotas = [0, 0] + survivors

    repaired = rematch_incremental(new_graph, matched.assignment, quotas=quotas, seed=1)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ("tasks that changed owner", repaired.churn),
            ("tasks kept in place", len(repaired.kept_tasks)),
            ("locality after repair",
             f"{locality_fraction(repaired.assignment, new_graph):.0%}"),
        ],
        title="2. incremental plan repair after decommissioning nodes 0+1",
    ))
    print("\nOnly the dead nodes' tasks moved; the rest of the campaign's "
          "plan (and any cached state keyed on it) is untouched.")


if __name__ == "__main__":
    main()
