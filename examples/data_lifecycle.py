#!/usr/bin/env python3
"""Full data lifecycle: parallel ingest, then locality-aware analysis.

The paper's context in one script:

1. an MPI writer fleet ingests a dataset through the HDFS replication
   pipeline (writer-local first replica, Garth/Sun-style parallel writes);
2. the *same* fleet re-reads its own intervals — locality is free;
3. a *different* fleet (half the nodes, the usual analysis situation)
   reads the same data — locality collapses, I/O time balloons;
4. Opass re-matches the new fleet to the existing layout and recovers the
   performance without moving a byte.

Run:  python examples/data_lifecycle.py
"""

from repro.core import (
    ProcessPlacement,
    opass_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, HdfsWriterLocalPlacement
from repro.dfs.chunk import uniform_dataset
from repro.simulate import DatasetIngest, ParallelReadRun, StaticSource
from repro.viz import format_table

NODES = 32
CHUNKS = 320


def main() -> None:
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(NODES),
        placement=HdfsWriterLocalPlacement(),
        seed=2015,
    )
    dataset = uniform_dataset("campaign", CHUNKS)
    writers = ProcessPlacement.one_per_node(NODES)

    # -- 1. ingest -----------------------------------------------------------
    ingest = DatasetIngest(fs, writers, dataset, seed=1).run()
    w = ingest.write_stats()
    print(f"ingested {ingest.bytes_written / 1e9:.1f} GB through the "
          f"replication pipeline in {ingest.makespan:.0f} s "
          f"(avg chunk write {w['avg']:.2f} s)\n")

    tasks = tasks_from_dataset(fs.dataset("campaign"))
    rows = []

    # -- 2. aligned readers: the writer fleet re-reads its own intervals ---
    run = ParallelReadRun(
        fs, writers, tasks,
        StaticSource(rank_interval_assignment(CHUNKS, NODES)), seed=2,
    ).run()
    rows.append(("writer fleet, rank intervals", f"{run.locality_fraction:.0%}",
                 run.io_stats()["avg"], run.makespan))
    fs.reset_counters()

    # -- 3. a different fleet reads the same data -----------------------------
    analysts = ProcessPlacement(tuple(range(0, NODES, 2)))  # every other node
    run = ParallelReadRun(
        fs, analysts, tasks,
        StaticSource(rank_interval_assignment(CHUNKS, analysts.num_processes)),
        seed=2,
    ).run()
    rows.append(("analysis fleet, rank intervals", f"{run.locality_fraction:.0%}",
                 run.io_stats()["avg"], run.makespan))
    fs.reset_counters()

    # -- 4. Opass re-matches the analysis fleet ------------------------------
    matched, _, _ = opass_single_data(fs, dataset, analysts, seed=2)
    run = ParallelReadRun(
        fs, analysts, tasks, StaticSource(matched.assignment), seed=2
    ).run()
    rows.append(("analysis fleet, Opass", f"{run.locality_fraction:.0%}",
                 run.io_stats()["avg"], run.makespan))

    print(format_table(
        ["reader configuration", "locality", "avg io (s)", "makespan (s)"],
        rows,
        title="reading the ingested dataset",
    ))
    print("\nThe writer fleet gets locality for free (writer-local first "
          "replicas + the same intervals).  Any other fleet needs Opass.")


if __name__ == "__main__":
    main()
