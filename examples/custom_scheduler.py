#!/usr/bin/env python3
"""Plugging your own scheduler into the harness.

The runner accepts any object with ``next_task(rank) -> int | Wait | None``
(the ``TaskSource`` protocol), so new scheduling ideas drop straight into
the paper's benchmark machinery.  This example implements a *replica-aware
round-robin* dispatcher in ~25 lines — each worker cycles through chunk
replicas it hosts, handing off leftovers round-robin — and races it
against the built-in ladder (random, locality-greedy, Opass) on the
Figure-11 workload.

Run:  python examples/custom_scheduler.py
"""

from repro.core import (
    DefaultDynamicPolicy,
    LocalityGreedyPolicy,
    ProcessPlacement,
    graph_from_filesystem,
    opass_dynamic_plan,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import ParallelReadRun
from repro.viz import format_table
from repro.workloads import gene_database

NODES = 32
FRAGMENTS = 320


class ReplicaRoundRobin:
    """A custom TaskSource: serve your replicas first, then round-robin.

    Unlike the greedy policy it pre-partitions local candidates per rank
    (no per-dispatch max scan) and drains leftovers in task-id order —
    simpler, slightly worse, and a template for your own ideas.
    """

    def __init__(self, graph):
        self._remaining = set(range(graph.num_tasks))
        # Cheap per-rank preference lists built once from the layout.
        self._prefs = {
            rank: sorted(graph.edges_of_process(rank), key=lambda t: -graph.edge_weight(rank, t))
            for rank in range(graph.num_processes)
        }
        self._leftovers = sorted(self._remaining)

    def next_task(self, rank):
        for task in self._prefs[rank]:
            if task in self._remaining:
                self._remaining.discard(task)
                return task
        while self._leftovers:
            task = self._leftovers.pop(0)
            if task in self._remaining:
                self._remaining.discard(task)
                return task
        return None


def main() -> None:
    rows = []
    for name in ("random master", "replica round-robin (custom)",
                 "locality greedy", "Opass guided lists"):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=2015)
        db = gene_database(FRAGMENTS)
        fs.put_dataset(db)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(db)
        graph = graph_from_filesystem(fs, tasks, placement)
        if name == "random master":
            policy = DefaultDynamicPolicy(len(tasks), mode="random", seed=1)
        elif name.startswith("replica"):
            policy = ReplicaRoundRobin(graph)
        elif name.startswith("locality"):
            policy = LocalityGreedyPolicy(graph, seed=1)
        else:
            policy, _, _ = opass_dynamic_plan(fs, "genedb", placement, seed=1)
        result = ParallelReadRun(fs, placement, tasks, policy, seed=1).run()
        rows.append((
            name,
            f"{result.locality_fraction:.0%}",
            result.io_stats()["avg"],
            result.makespan,
        ))

    print(format_table(
        ["scheduler", "locality", "avg io (s)", "makespan (s)"],
        rows,
        title=f"custom scheduler vs the built-in ladder ({NODES} nodes)",
    ))
    print("\nAnything with next_task(rank) plugs in — see "
          "repro.simulate.runner.TaskSource.")


if __name__ == "__main__":
    main()
