#!/usr/bin/env python3
"""Multi-input genome comparison with Algorithm 1 (§II-B, §IV-C, §V-A2).

The paper's motivating multi-data workload: every task compares gene files
of three species (inputs of 30, 20 and 10 MB drawn from three datasets that
HDFS scattered independently).  A task's inputs rarely share a node, so no
assignment is fully local — Algorithm 1 maximises co-located bytes with its
propose-and-steal matching.

Run:  python examples/genome_comparison.py [--nodes N] [--tasks K]
"""

import argparse

from repro.apps import MultiInputComparison
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.metrics import ServeMonitor
from repro.viz import format_table
from repro.workloads import multi_input_datasets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--tasks", type=int, default=640)
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args()

    spec = ClusterSpec.homogeneous(args.nodes)
    fs = DistributedFileSystem(spec, seed=args.seed)
    datasets = multi_input_datasets(args.tasks)
    for ds in datasets:
        fs.put_dataset(ds)
    placement = ProcessPlacement.one_per_node(args.nodes)
    total_gb = sum(ds.size for ds in datasets) / 1e9
    print(f"{args.tasks} comparison tasks x (30+20+10) MB inputs "
          f"from 3 datasets = {total_gb:.1f} GB on {args.nodes} nodes\n")

    rows = []
    for name, use_opass in [("default assignment", False), ("Opass (Algorithm 1)", True)]:
        monitor = ServeMonitor(fs)
        monitor.start()
        app = MultiInputComparison(fs, placement, datasets, use_opass=use_opass)
        out = app.execute(seed=args.seed)
        stats = out.result.io_stats()
        served = monitor.served_summary_mb()
        rows.append((
            name,
            f"{out.planned_locality:.0%}",
            stats["avg"], stats["max"], stats["min"],
            served.max, served.min,
            out.result.makespan,
        ))

    print(format_table(
        ["method", "local bytes", "avg io (s)", "max io (s)", "min io (s)",
         "max MB/node", "min MB/node", "makespan (s)"],
        rows,
        title="Figures 9-10 reproduction (paper: ~2x average I/O improvement; "
              "balance better but not perfect)",
    ))
    print("\nNote: tasks need inputs from three scattered datasets, so part "
          "of the data must be read remotely — the improvement is smaller "
          "than the single-data case, exactly as §V-C discusses.")


if __name__ == "__main__":
    main()
