#!/usr/bin/env python3
"""Analytical scaling study: §III's models vs Monte-Carlo vs full simulation.

Three independent estimates of how locality and balance decay as the
cluster grows:

1. closed-form (§III-A/B binomial models, both the paper's printed r=1
   parameterisation and the corrected r=3 one);
2. Monte-Carlo placement sampling;
3. full end-to-end runs on the cluster simulator.

Run:  python examples/scaling_analysis.py
"""

import numpy as np

from repro.analysis import (
    empirical_nodes_serving,
    expected_local_fraction,
    expected_nodes_serving_at_most,
    expected_nodes_serving_more_than,
    figure3_series,
    paper_figure3_series,
)
from repro.core import ProcessPlacement, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.parallel import run_rank_interval
from repro.viz import format_table
from repro.workloads import single_data_workload


def locality_vs_cluster_size() -> None:
    print("=== locality decay with cluster size (n = 10 chunks/process, r = 3) ===")
    rows = []
    for m in (8, 16, 32, 64):
        analytic = expected_local_fraction(3, m)
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=m)
        data = single_data_workload(m, 10)
        fs.put_dataset(data)
        out = run_rank_interval(
            fs, ProcessPlacement.one_per_node(m), tasks_from_dataset(data), seed=1
        )
        rows.append((m, f"{analytic:.1%}", f"{out.result.locality_fraction:.1%}"))
    print(format_table(["nodes", "model r/m", "simulated"], rows))
    print()


def figure3_cdf() -> None:
    print("=== Figure 3: P(X > 5) locally-read chunks (n = 512) ===")
    corrected = {r.num_nodes: r.prob_more_than_5 for r in figure3_series()}
    printed = {r.num_nodes: r.prob_more_than_5 for r in paper_figure3_series()}
    paper_quotes = {64: 0.8109, 128: 0.2143, 256: 0.0164, 512: 0.0046}
    rows = [
        (m, f"{paper_quotes[m]:.2%}", f"{printed[m]:.2%}", f"{corrected[m]:.2%}")
        for m in (64, 128, 256, 512)
    ]
    print(format_table(
        ["nodes", "paper quotes", "our r=1 (paper's arithmetic)", "our r=3 (paper's formula)"],
        rows,
    ))
    print("(The paper's printed numbers follow Binomial(n, 1/m); "
          "its own formula says Binomial(n, r/m).)\n")


def balance_model_vs_montecarlo() -> None:
    print("=== §III-B imbalance: model vs Monte-Carlo (n=512, r=3, m=128) ===")
    rng = np.random.default_rng(0)
    mc = empirical_nodes_serving(512, 3, 128, trials=400, rng=rng)
    rows = [
        ("nodes serving <=1 chunk",
         f"{expected_nodes_serving_at_most(1, 512, 3, 128):.1f}",
         f"{mc['nodes_at_most_1']:.1f}"),
        ("nodes serving >8 chunks",
         f"{expected_nodes_serving_more_than(8, 512, 3, 128):.1f}",
         f"{mc['nodes_more_than_8']:.1f}"),
        ("hottest node serves (chunks)", "-", f"{mc['mean_max_served']:.1f}"),
    ]
    print(format_table(["metric", "closed form", "Monte-Carlo"], rows))
    print("(Average load is 4 chunks/node: the hottest node serves ~3x that, "
          "idle nodes sit at <=1 — the paper's imbalance story.)")


def main() -> None:
    locality_vs_cluster_size()
    figure3_cdf()
    balance_model_vs_montecarlo()


if __name__ == "__main__":
    main()
