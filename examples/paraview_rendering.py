#!/usr/bin/env python3
"""ParaView MultiBlock rendering with and without Opass (§V-B, Figure 12).

Models the paper's real-application test: a 64-node ParaView data-server
fleet renders a Protein-Data-Bank-derived MultiBlock series from HDFS.
Each rendering step every server reads one ~56 MB piece and parses it; the
fleet then synchronises to render the frame.  Stock ParaView assigns pieces
by rank arithmetic; the patched reader calls Opass inside ReadXMLData().

Run:  python examples/paraview_rendering.py [--nodes N] [--datasets K]
"""

import argparse

from repro.apps import ParaViewMultiBlockReader
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_series, format_table
from repro.workloads import paraview_multiblock_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--datasets", type=int, default=640)
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args()

    spec = ClusterSpec.homogeneous(args.nodes)
    fs = DistributedFileSystem(spec, seed=args.seed)
    series = paraview_multiblock_series(args.datasets)
    fs.put_dataset(series)
    placement = ProcessPlacement.one_per_node(args.nodes)
    print(f"MultiBlock series: {args.datasets} pieces, "
          f"{series.size / 1e9:.1f} GB total, {args.nodes} data servers\n")

    rows = []
    for name, use_opass in [("w/o Opass", False), ("with Opass", True)]:
        fs.reset_counters()
        reader = ParaViewMultiBlockReader(
            fs, placement, series, use_opass=use_opass, opass_seed=args.seed
        )
        result = reader.render(seed=args.seed)
        rows.append((
            name,
            result.avg_call_time,
            result.std_call_time,
            result.min_call_time,
            result.max_call_time,
            result.total_execution_time,
        ))
        print(format_series(
            f"{name} vtkFileSeriesReader call times (s)",
            result.reader_call_times,
        ))

    print()
    print(format_table(
        ["method", "avg call (s)", "std", "min", "max", "total (s)"],
        rows,
        title="Figure 12 / §V-B reproduction "
              "(paper: 5.48±1.339 vs 3.07±0.316; totals 167 s vs 98 s)",
    ))


if __name__ == "__main__":
    main()
