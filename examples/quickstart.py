#!/usr/bin/env python3
"""Quickstart: store a dataset, compare the naive assignment with Opass.

Reproduces the paper's core single-data scenario on a small cluster:

1. build a 32-node cluster and an HDFS-like file system on it;
2. store a dataset of 320 chunk files (10 per process, like §V-A1);
3. assign tasks the ParaView way (rank intervals) and the Opass way
   (max-flow matching over the block layout);
4. execute both on the cluster simulator and compare I/O times, locality
   and per-node serving balance.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ProcessPlacement,
    locality_fraction,
    opass_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.metrics import ServeMonitor, jains_fairness
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32
CHUNKS_PER_PROCESS = 10


def main() -> None:
    # -- 1. cluster + file system -------------------------------------------
    spec = ClusterSpec.homogeneous(NODES)
    fs = DistributedFileSystem(spec, seed=2015)
    placement = ProcessPlacement.one_per_node(NODES)

    # -- 2. store the dataset (3-way random replication, 64 MB chunks) ------
    data = single_data_workload(NODES, CHUNKS_PER_PROCESS)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    print(f"stored {data.num_chunks} chunks ({data.size / 1e9:.1f} GB) "
          f"on {NODES} nodes, replication x{fs.replication}\n")

    # -- 3. two assignments ---------------------------------------------------
    baseline = rank_interval_assignment(len(tasks), NODES)
    opass, graph, _ = opass_single_data(fs, data, placement, seed=1)
    print(f"baseline planned locality: "
          f"{locality_fraction(baseline, graph):6.1%}")
    print(f"opass    planned locality: "
          f"{locality_fraction(opass.assignment, graph):6.1%} "
          f"(full matching: {opass.full_matching})\n")

    # -- 4. execute both ---------------------------------------------------------
    rows = []
    fairness = {}
    for name, assignment in [("w/o Opass", baseline), ("with Opass", opass.assignment)]:
        monitor = ServeMonitor(fs)
        monitor.start()
        run = ParallelReadRun(fs, placement, tasks, StaticSource(assignment), seed=7)
        result = run.run()
        stats = result.io_stats()
        served = monitor.served_summary_mb()
        fairness[name] = jains_fairness(monitor.served_mb_array())
        rows.append((
            name,
            stats["avg"], stats["max"], stats["min"],
            f"{result.locality_fraction:.0%}",
            served.max, served.min,
            result.makespan,
        ))

    print(format_table(
        ["method", "avg io (s)", "max io (s)", "min io (s)", "local",
         "max MB/node", "min MB/node", "makespan (s)"],
        rows,
    ))
    print(f"\nserving fairness (Jain): "
          f"{fairness['w/o Opass']:.3f} -> {fairness['with Opass']:.3f}")
    speedup = rows[0][1] / rows[1][1]
    print(f"average I/O-time improvement: {speedup:.1f}x "
          f"(paper reports ~4x on 64 nodes)")


if __name__ == "__main__":
    main()
