"""Tests that the library emits useful structured log records."""

import logging

import pytest

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_multi_data,
    optimize_single_data,
    rematch_incremental,
    tasks_from_dataset,
    tasks_from_datasets,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    Rebalancer,
    SkewedPlacement,
    reconstruct_for_tasks,
    uniform_dataset,
)
from repro.workloads import multi_input_datasets


@pytest.fixture
def env():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=61)
    fs.put_dataset(uniform_dataset("d", 24))
    placement = ProcessPlacement.one_per_node(8)
    tasks = tasks_from_dataset(fs.dataset("d"))
    graph = graph_from_filesystem(fs, tasks, placement)
    return fs, placement, tasks, graph


class TestMatchingLogs:
    def test_single_data_logs_summary(self, env, caplog):
        _, _, _, graph = env
        with caplog.at_level(logging.INFO, logger="repro.core.single_data"):
            optimize_single_data(graph, seed=0)
        assert any("single-data matching" in r.message for r in caplog.records)
        assert any("max_flow=" in r.message for r in caplog.records)

    def test_multi_data_logs_summary(self, caplog):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=61)
        datasets = multi_input_datasets(16)
        for ds in datasets:
            fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(8)
        graph = graph_from_filesystem(fs, tasks_from_datasets(datasets), placement)
        with caplog.at_level(logging.INFO, logger="repro.core.multi_data"):
            optimize_multi_data(graph)
        assert any("multi-data matching" in r.message for r in caplog.records)
        assert any("reassignments" in r.message for r in caplog.records)

    def test_incremental_logs_churn(self, env, caplog):
        fs, placement, tasks, graph = env
        base = optimize_single_data(graph, seed=0)
        fs.namenode.drop_node_replicas(0)
        new_graph = graph_from_filesystem(fs, tasks, placement)
        with caplog.at_level(logging.INFO, logger="repro.core.incremental"):
            rematch_incremental(new_graph, base.assignment, seed=0)
        assert any("incremental rematch" in r.message for r in caplog.records)


class TestMaintenanceLogs:
    def test_rebalancer_logs_moves(self, caplog):
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(8),
            placement=SkewedPlacement(excluded_fraction=0.5),
            seed=61,
        )
        fs.put_dataset(uniform_dataset("d", 40))
        with caplog.at_level(logging.INFO, logger="repro.dfs.rebalancer"):
            Rebalancer(fs, threshold=0.2).run()
        assert any("rebalance:" in r.message for r in caplog.records)

    def test_reconstruction_logs_copies(self, caplog):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=61)
        datasets = multi_input_datasets(16)
        for ds in datasets:
            fs.put_dataset(ds)
        tasks = tasks_from_datasets(datasets)
        with caplog.at_level(logging.INFO, logger="repro.dfs.reconstruction"):
            reconstruct_for_tasks(fs, tasks)
        assert any("reconstruction:" in r.message for r in caplog.records)


class TestRunnerLogs:
    def test_retry_logged_on_failure(self, caplog):
        from repro.core import rank_interval_assignment
        from repro.simulate import FaultPlan, ParallelReadRun, StaticSource

        found = False
        for victim in range(8):
            fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=61)
            fs.put_dataset(uniform_dataset("f", 24))
            placement = ProcessPlacement.one_per_node(8)
            tasks = tasks_from_dataset(fs.dataset("f"))
            run = ParallelReadRun(
                fs, placement, tasks,
                StaticSource(rank_interval_assignment(24, 8)), seed=61,
            )
            FaultPlan().fail(0.1, victim).attach(run)
            with caplog.at_level(logging.INFO, logger="repro.simulate.runner"):
                result = run.run()
            if result.read_retries:
                found = any("retrying read" in r.message for r in caplog.records)
                break
        assert found
