"""Tests for MRAP-style data reconstruction."""

import pytest

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    optimize_multi_data,
    tasks_from_datasets,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, reconstruct_for_tasks
from repro.workloads import multi_input_datasets


@pytest.fixture
def env():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=47)
    datasets = multi_input_datasets(40)
    for ds in datasets:
        fs.put_dataset(ds)
    tasks = tasks_from_datasets(datasets)
    return fs, tasks


class TestReconstruction:
    def test_empty_tasks(self, env):
        fs, _ = env
        report = reconstruct_for_tasks(fs, [])
        assert report.num_copies == 0
        assert report.bytes_copied == 0

    def test_every_task_gets_an_anchor_with_all_inputs(self, env):
        fs, tasks = env
        report = reconstruct_for_tasks(fs, tasks)
        assert set(report.anchor_of) == {t.task_id for t in tasks}
        for task in tasks:
            anchor = report.anchor_of[task.task_id]
            for cid in task.inputs:
                assert anchor in fs.namenode.locations_of(cid)
                assert fs.datanodes[anchor].holds(cid)

    def test_bytes_copied_consistent(self, env):
        fs, tasks = env
        report = reconstruct_for_tasks(fs, tasks)
        expected = sum(fs.chunk(cid).size for cid, _ in report.copies)
        assert report.bytes_copied == expected
        assert report.bytes_copied > 0  # scattered inputs need copies

    def test_anchor_balance_cap(self, env):
        fs, tasks = env
        report = reconstruct_for_tasks(fs, tasks)
        counts: dict[int, int] = {}
        for anchor in report.anchor_of.values():
            counts[anchor] = counts.get(anchor, 0) + 1
        assert max(counts.values()) <= -(-len(tasks) // 8)

    def test_custom_cap_validated(self, env):
        fs, tasks = env
        with pytest.raises(ValueError):
            reconstruct_for_tasks(fs, tasks, max_tasks_per_node=0)

    def test_cap_too_tight_raises(self, env):
        fs, tasks = env
        # 40 tasks, 8 nodes, cap 1 -> only 8 anchors available.
        with pytest.raises(RuntimeError, match="anchor cap"):
            reconstruct_for_tasks(fs, tasks, max_tasks_per_node=1)

    def test_reconstruction_enables_full_matching(self, env):
        """After co-location, Algorithm 1 recovers (near-)full locality —
        the §V-C 'reconstruction may be needed' claim, quantified."""
        fs, tasks = env
        placement = ProcessPlacement.one_per_node(8)
        before_graph = graph_from_filesystem(fs, tasks, placement)
        before = locality_fraction(
            optimize_multi_data(before_graph).assignment, before_graph
        )
        reconstruct_for_tasks(fs, tasks)
        after_graph = graph_from_filesystem(fs, tasks, placement)
        after = locality_fraction(
            optimize_multi_data(after_graph).assignment, after_graph
        )
        assert before < 0.9
        assert after > 0.95
