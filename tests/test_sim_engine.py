"""Tests for the discrete-event engine."""

import pytest

from repro.simulate.engine import Simulation
from repro.simulate.resources import Resource


@pytest.fixture
def sim():
    s = Simulation()
    s.add_resource(Resource("r", 10.0))
    s.add_resource(Resource("q", 5.0))
    return s


class TestTimers:
    def test_timer_fires_at_time(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_timers_in_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_nested_scheduling(self, sim):
        events = []

        def first():
            events.append(sim.now)
            sim.schedule(1.0, lambda: events.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert events == [1.0, 2.0]


class TestFlows:
    def test_single_flow_duration(self, sim):
        done = []
        sim.start_flow(100, ["r"], lambda f: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10.0)]
        assert sim.completed_flows == 1

    def test_two_flows_share_then_speed_up(self, sim):
        """Two equal flows: first halves finish together... equal flows on
        one resource finish simultaneously; a shorter one frees capacity."""
        done = {}
        sim.start_flow(50, ["r"], lambda f: done.__setitem__("short", sim.now))
        sim.start_flow(100, ["r"], lambda f: done.__setitem__("long", sim.now))
        sim.run()
        # Shared 5/s each: short finishes at t=10 having moved 50.
        assert done["short"] == pytest.approx(10.0)
        # Long moved 50 by t=10, then full 10/s: +5 s.
        assert done["long"] == pytest.approx(15.0)

    def test_flow_on_unknown_resource(self, sim):
        with pytest.raises(KeyError):
            sim.start_flow(1, ["zzz"], lambda f: None)

    def test_rate_cap_respected(self, sim):
        done = []
        sim.start_flow(10, ["r"], lambda f: done.append(sim.now), rate_cap=2.0)
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_flow_started_by_timer(self, sim):
        done = []
        sim.schedule(1.0, lambda: sim.start_flow(10, ["r"], lambda f: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_chained_flows(self, sim):
        done = []

        def second(_f):
            sim.start_flow(20, ["q"], lambda f: done.append(sim.now))

        sim.start_flow(10, ["r"], second)
        sim.run()
        assert done == [pytest.approx(1.0 + 4.0)]

    def test_payload_passed_through(self, sim):
        got = []
        sim.start_flow(1, ["r"], lambda f: got.append(f.payload), payload="tag")
        sim.run()
        assert got == ["tag"]

    def test_current_rate(self, sim):
        f1 = sim.start_flow(100, ["r"], lambda f: None)
        assert sim.current_rate(f1) == pytest.approx(10.0)
        f2 = sim.start_flow(100, ["r"], lambda f: None)
        assert sim.current_rate(f1) == pytest.approx(5.0)
        assert sim.current_rate(f2) == pytest.approx(5.0)


class TestRunControl:
    def test_run_until(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert not fired
        sim.run()
        assert fired

    def test_until_advances_flows_partially(self, sim):
        f = sim.start_flow(100, ["r"], lambda _: None)
        sim.run(until=4.0)
        assert f.remaining == pytest.approx(60.0)

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="events"):
            sim.run(max_events=100)

    def test_empty_run_returns_zero(self, sim):
        assert sim.run() == 0.0

    def test_duplicate_resource_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.add_resource(Resource("r", 1.0))

    def test_has_resource(self, sim):
        assert sim.has_resource("r")
        assert not sim.has_resource("nope")

    def test_events_counted(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.start_flow(10, ["r"], lambda f: None)
        sim.run()
        assert sim.events_processed == 2
