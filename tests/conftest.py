"""Shared fixtures: small clusters and stored datasets for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB


@pytest.fixture
def spec8() -> ClusterSpec:
    """An 8-node homogeneous cluster."""
    return ClusterSpec.homogeneous(8)


@pytest.fixture
def fs8(spec8: ClusterSpec) -> DistributedFileSystem:
    """An 8-node file system with a 32-chunk dataset 'data' stored."""
    fs = DistributedFileSystem(spec8, seed=42)
    fs.put_dataset(uniform_dataset("data", 32, chunk_size=16 * MB))
    return fs


@pytest.fixture
def placement8() -> ProcessPlacement:
    return ProcessPlacement.one_per_node(8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
