"""Tests for cluster resource construction and read paths."""

import pytest

from repro.dfs.cluster import ClusterSpec
from repro.simulate.resources import (
    Resource,
    cluster_resources,
    disk,
    local_read_path,
    nic_rx,
    nic_tx,
    remote_read_path,
)


class TestNames:
    def test_naming_scheme(self):
        assert disk(3) == "disk:3"
        assert nic_tx(3) == "tx:3"
        assert nic_rx(3) == "rx:3"


class TestClusterResources:
    def test_three_per_node(self):
        spec = ClusterSpec.homogeneous(4)
        res = cluster_resources(spec)
        assert len(res) == 12
        names = {r.name for r in res}
        assert disk(0) in names and nic_tx(3) in names and nic_rx(2) in names

    def test_capacities_match_spec(self):
        spec = ClusterSpec.homogeneous(2, disk_bw=11.0, nic_bw=22.0)
        by_name = {r.name: r for r in cluster_resources(spec)}
        assert by_name[disk(0)].capacity == 11.0
        assert by_name[nic_tx(1)].capacity == 22.0

    def test_disk_penalty_propagated(self):
        spec = ClusterSpec.homogeneous(2, disk_concurrency_penalty=0.4)
        by_name = {r.name: r for r in cluster_resources(spec)}
        assert by_name[disk(0)].concurrency_penalty == 0.4
        assert by_name[nic_tx(0)].concurrency_penalty == 0.0


class TestPaths:
    def test_local_path(self):
        assert local_read_path(5) == [disk(5)]

    def test_remote_path(self):
        assert remote_read_path(2, 7) == [disk(2), nic_tx(2), nic_rx(7)]

    def test_remote_same_node_rejected(self):
        with pytest.raises(ValueError):
            remote_read_path(2, 2)


class TestResourceValidation:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            Resource("x", 0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            Resource("x", 1, concurrency_penalty=-1)
