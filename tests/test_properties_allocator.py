"""Differential property tests: IncrementalAllocator ≡ allocate_rates.

Random interleavings of flow add/remove (covering rate caps, concurrency
penalties and removal while resources are saturated) must produce rates
**exactly equal** — ``==``, not ``approx`` — to re-running the pure
reference allocator on the surviving flow set.  This is the invariant the
engine's bit-for-bit golden reproduction rests on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate.allocator import IncrementalAllocator
from repro.simulate.flows import Flow, allocate_rates
from repro.simulate.resources import Resource


@st.composite
def allocator_scripts(draw):
    """Resources plus an op script: (add, path, cap) / (remove, index)."""
    num_resources = draw(st.integers(min_value=1, max_value=5))
    names = [f"r{i}" for i in range(num_resources)]
    resources = {}
    for n in names:
        cap = draw(st.floats(min_value=1.0, max_value=100.0))
        pen = draw(st.sampled_from([None, 0.0, 0.1, 0.5]))
        resources[n] = cap if pen is None else Resource(n, cap, pen)
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        if live and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            k = draw(st.integers(min_value=1, max_value=num_resources))
            path = tuple(draw(st.permutations(names))[:k])
            cap = draw(
                st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0))
            )
            ops.append(("add", path, cap))
            live += 1
    return resources, ops


@given(allocator_scripts())
@settings(max_examples=150, deadline=None)
def test_incremental_matches_reference_exactly(script):
    resources, ops = script
    alloc = IncrementalAllocator()
    for name, res in resources.items():
        alloc.register(name, res)
    active: list[Flow] = []
    for op in ops:
        if op[0] == "add":
            _, path, cap = op
            f = Flow(100.0, path, rate_cap=cap)
            alloc.add(f)
            active.append(f)
        else:
            f = active.pop(op[1])
            alloc.remove(f)
        assert alloc.solve() == allocate_rates(active, resources)


@given(allocator_scripts())
@settings(max_examples=60, deadline=None)
def test_solve_only_at_end_matches(script):
    """Equivalence must not depend on solving after every mutation."""
    resources, ops = script
    alloc = IncrementalAllocator()
    for name, res in resources.items():
        alloc.register(name, res)
    active: list[Flow] = []
    for op in ops:
        if op[0] == "add":
            _, path, cap = op
            f = Flow(100.0, path, rate_cap=cap)
            alloc.add(f)
            active.append(f)
        else:
            alloc.remove(active.pop(op[1]))
    assert alloc.solve() == allocate_rates(active, resources)
