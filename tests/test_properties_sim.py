"""Property-based tests for the flow simulator.

Invariants:
* max-min allocation is feasible (no resource over effective capacity) and
  max-min optimal (every flow bottlenecked or capped);
* frozen-allocation monotonicity: adding a flow never increases another
  flow's rate;
* conservation: a run's total bytes read equals the workload's bytes;
* simulated duration of an isolated flow equals size/bottleneck exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate.engine import Simulation
from repro.simulate.flows import Flow, allocate_rates, verify_allocation
from repro.simulate.resources import Resource


@st.composite
def flow_systems(draw):
    num_resources = draw(st.integers(min_value=1, max_value=6))
    names = [f"r{i}" for i in range(num_resources)]
    resources = {
        n: Resource(
            n,
            draw(st.floats(min_value=1.0, max_value=100.0)),
            draw(st.sampled_from([0.0, 0.1, 0.5])),
        )
        for n in names
    }
    num_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for _ in range(num_flows):
        k = draw(st.integers(min_value=1, max_value=num_resources))
        path = tuple(draw(st.permutations(names))[:k])
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)))
        flows.append(Flow(draw(st.floats(min_value=1.0, max_value=1e6)), path, rate_cap=cap))
    return flows, resources


@given(flow_systems())
@settings(max_examples=100, deadline=None)
def test_allocation_feasible_and_maxmin(system):
    flows, resources = system
    rates = allocate_rates(flows, resources)
    assert set(rates) == set(flows)
    assert all(r > 0 for r in rates.values())
    verify_allocation(flows, resources, rates)


@given(flow_systems())
@settings(max_examples=60, deadline=None)
def test_adding_flow_never_raises_min_rate(system):
    """Max-min maximises the minimum rate; a superset of flows on the same
    capacities can only lower it.  (Individual non-bottlenecked flows *can*
    legitimately speed up when a new flow shifts a bottleneck.)"""
    flows, resources = system
    if len(flows) < 2:
        return
    before = allocate_rates(flows[:-1], resources)
    after = allocate_rates(flows, resources)
    assert min(after.values()) <= min(before.values()) * (1 + 1e-6)


@given(
    st.floats(min_value=1.0, max_value=1e6),
    st.floats(min_value=0.5, max_value=200.0),
)
@settings(max_examples=40, deadline=None)
def test_isolated_flow_duration_exact(size, capacity):
    sim = Simulation()
    sim.add_resource(Resource("r", capacity))
    done = []
    sim.start_flow(size, ["r"], lambda f: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(size / capacity, rel=1e-6)


@given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_shared_resource_completion_order_by_size(sizes):
    """Flows sharing one resource from t=0 finish in size order (ties allowed)."""
    sim = Simulation()
    sim.add_resource(Resource("r", 10.0))
    finished = []
    for i, s in enumerate(sizes):
        sim.start_flow(s, ["r"], lambda f, i=i: finished.append(i))
    sim.run()
    durations = [sizes[i] for i in finished]
    assert durations == sorted(durations)


@given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_work_conservation_single_resource(sizes):
    """Total completion time of the last flow ≥ total work / capacity, with
    equality when all flows start at t=0 and share one resource."""
    cap = 7.0
    sim = Simulation()
    sim.add_resource(Resource("r", cap))
    ends = []
    for s in sizes:
        sim.start_flow(s, ["r"], lambda f: ends.append(sim.now))
    sim.run()
    assert max(ends) == pytest.approx(sum(sizes) / cap, rel=1e-6)
