"""Tests for heterogeneous-cluster quota shaping."""

import pytest

from repro.core import ProcessPlacement, graph_from_filesystem, tasks_from_dataset
from repro.core.heterogeneous import (
    node_speed_weights,
    plan_heterogeneous,
    proportional_quotas,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, NodeSpec, uniform_dataset


class TestProportionalQuotas:
    def test_equal_weights_equal_quotas(self):
        assert proportional_quotas([1, 1, 1, 1], 12) == [3, 3, 3, 3]

    def test_proportional(self):
        assert proportional_quotas([2, 1, 1], 8) == [4, 2, 2]

    def test_sum_always_exact(self):
        for n in (0, 1, 7, 13, 100):
            q = proportional_quotas([3.3, 1.1, 2.7, 0.5], n)
            assert sum(q) == n

    def test_within_one_of_real_share(self):
        weights = [5.0, 3.0, 2.0]
        q = proportional_quotas(weights, 17)
        shares = [w / 10 * 17 for w in weights]
        for got, share in zip(q, shares):
            assert abs(got - share) < 1

    def test_zero_weight_gets_nothing_unless_remainder(self):
        q = proportional_quotas([1, 0], 4)
        assert q == [4, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            proportional_quotas([], 3)
        with pytest.raises(ValueError):
            proportional_quotas([1], -1)
        with pytest.raises(ValueError):
            proportional_quotas([-1, 2], 3)
        with pytest.raises(ValueError):
            proportional_quotas([0, 0], 3)


class TestNodeSpeedWeights:
    def test_disk_bw_proxy(self):
        spec = ClusterSpec(
            nodes=(
                NodeSpec(0, disk_bw=100.0),
                NodeSpec(1, disk_bw=50.0),
            )
        )
        placement = ProcessPlacement.one_per_node(2)
        assert node_speed_weights(spec, placement) == [100.0, 50.0]

    def test_split_among_corank_processes(self):
        spec = ClusterSpec(nodes=(NodeSpec(0, disk_bw=100.0),))
        placement = ProcessPlacement.k_per_node(1, 2)
        assert node_speed_weights(spec, placement) == [50.0, 50.0]

    def test_explicit_speeds_override(self):
        spec = ClusterSpec.homogeneous(2)
        placement = ProcessPlacement.one_per_node(2)
        w = node_speed_weights(spec, placement, speeds={0: 3.0, 1: 1.0})
        assert w == [3.0, 1.0]

    def test_negative_speed_rejected(self):
        spec = ClusterSpec.homogeneous(1)
        placement = ProcessPlacement.one_per_node(1)
        with pytest.raises(ValueError):
            node_speed_weights(spec, placement, speeds={0: -1.0})


class TestPlanHeterogeneous:
    @pytest.fixture
    def env(self):
        nodes = tuple(
            NodeSpec(i, disk_bw=140e6 if i < 4 else 70e6) for i in range(8)
        )
        spec = ClusterSpec(nodes=nodes)
        fs = DistributedFileSystem(spec, seed=5)
        ds = uniform_dataset("d", 48)
        fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(8)
        graph = graph_from_filesystem(fs, tasks_from_dataset(ds), placement)
        return spec, graph

    def test_fast_nodes_get_more_tasks(self, env):
        spec, graph = env
        plan = plan_heterogeneous(graph, spec)
        # 2:1 speed ratio, 48 tasks -> 8 each for fast, 4 each for slow.
        assert plan.quotas[:4] == [8, 8, 8, 8]
        assert plan.quotas[4:] == [4, 4, 4, 4]

    def test_assignment_valid_and_lists_match(self, env):
        spec, graph = env
        plan = plan_heterogeneous(graph, spec)
        plan.matching.assignment.validate(48, quotas=plan.quotas)
        listed = sorted(t for lst in plan.plan.lists.values() for t in lst)
        assert listed == list(range(48))

    def test_explicit_speeds(self, env):
        spec, graph = env
        plan = plan_heterogeneous(graph, spec, speeds={i: 1.0 for i in range(8)})
        assert plan.quotas == [6] * 8
