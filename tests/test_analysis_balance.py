"""Tests of the §III-B imbalance model."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_served_chunks,
    cdf_served_chunks_total_probability,
    expected_nodes_serving_at_most,
    expected_nodes_serving_more_than,
    section3b_summary,
    served_chunks_distribution,
    stored_chunks_distribution,
)


class TestDistributions:
    def test_stored_mean_is_nr_over_m(self):
        dist = stored_chunks_distribution(512, 3, 128)
        assert dist.mean() == pytest.approx(512 * 3 / 128)

    def test_served_mean_is_n_over_m(self):
        dist = served_chunks_distribution(512, 3, 128)
        assert dist.mean() == pytest.approx(512 / 128)

    def test_served_mean_independent_of_replication(self):
        """Thinning: serving load doesn't depend on r, only its spread does."""
        for r in (1, 2, 3, 5):
            assert served_chunks_distribution(512, r, 128).mean() == pytest.approx(4.0)


class TestTotalProbabilityIdentity:
    """The paper's law-of-total-probability sum equals the thinned binomial."""

    @pytest.mark.parametrize("k", [0, 1, 4, 8, 20])
    def test_identity(self, k):
        closed = float(cdf_served_chunks(k, 512, 3, 128))
        summed = cdf_served_chunks_total_probability(k, 512, 3, 128)
        assert summed == pytest.approx(closed, rel=1e-9)

    @pytest.mark.parametrize("n,r,m", [(100, 2, 10), (64, 3, 8), (256, 5, 32)])
    def test_identity_other_configs(self, n, r, m):
        for k in (0, 2, 7):
            closed = float(cdf_served_chunks(k, n, r, m))
            summed = cdf_served_chunks_total_probability(k, n, r, m)
            assert summed == pytest.approx(closed, rel=1e-9)

    def test_negative_k(self):
        assert cdf_served_chunks_total_probability(-1, 512, 3, 128) == 0.0


class TestSection3bNumbers:
    def test_nodes_at_most_1_matches_paper(self):
        """128·P(Z≤1) ≈ 11, the paper's quoted count (their '512×' is the
        n-multiplier typo; see DESIGN.md)."""
        val = expected_nodes_serving_at_most(1, 512, 3, 128)
        assert val == pytest.approx(11.0, abs=1.0)

    def test_overloaded_nodes_exist(self):
        val = expected_nodes_serving_more_than(8, 512, 3, 128)
        assert val > 1.0  # some nodes serve >2x the average of 4

    def test_paper_multiplier_variant(self):
        s = section3b_summary()
        assert s.paper_multiplier_at_most_1 == pytest.approx(
            512 * float(cdf_served_chunks(1, 512, 3, 128))
        )

    def test_summary_fields(self):
        s = section3b_summary()
        assert s.expected_served == pytest.approx(4.0)
        assert s.num_nodes == 128
        assert s.nodes_at_most_1 + s.nodes_more_than_8 < 128

    def test_imbalance_ratio_claim(self):
        """'some storage nodes will serve more than 8X the number of chunk
        requests as others': both tails are non-negligible."""
        low = expected_nodes_serving_at_most(1, 512, 3, 128)
        high = expected_nodes_serving_more_than(8, 512, 3, 128)
        assert low >= 1.0 and high >= 1.0


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            cdf_served_chunks(1, 0, 3, 128)
        with pytest.raises(ValueError):
            cdf_served_chunks(1, 512, 0, 128)
        with pytest.raises(ValueError):
            cdf_served_chunks(1, 512, 3, 2)

    def test_cdf_monotone(self):
        ks = np.arange(0, 20)
        cdf = cdf_served_chunks(ks, 512, 3, 128)
        assert (np.diff(cdf) >= 0).all()
