"""Tests for ASCII table/series rendering."""

import pytest

from repro.viz.tables import (
    format_histogram,
    format_series,
    format_table,
    paper_vs_measured,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["name", "v"], [("a", 1.5), ("bb", 20.25)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in out
        assert "20.25" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_custom_float_fmt(self):
        out = format_table(["x"], [(1.23456,)], float_fmt="{:.4f}")
        assert "1.2346" in out

    def test_string_cells_passthrough(self):
        out = format_table(["x"], [("92%",)])
        assert "92%" in out

    def test_columns_aligned(self):
        out = format_table(["aa", "b"], [("x", 1.0), ("yyyy", 2.0)])
        lines = out.splitlines()
        # Separator and rows share width.
        assert len({len(l) for l in lines[1:]}) == 1


class TestFormatSeries:
    def test_short_series_full(self):
        out = format_series("s", [1.0, 2.0])
        assert out == "s: 1.00 2.00"

    def test_long_series_elided(self):
        out = format_series("s", range(100), max_items=10)
        assert "…" in out
        assert out.count(" ") < 30

    def test_custom_fmt(self):
        assert "1.5" in format_series("s", [1.5], fmt="{:.1f}")


class TestHistogram:
    def test_bins_and_bars(self):
        out = format_histogram([1.0] * 10 + [2.0], bins=2)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert format_histogram([]) == "(empty)"

    def test_counts_shown(self):
        out = format_histogram([1, 1, 1], bins=1)
        assert "3" in out


class TestPaperVsMeasured:
    def test_shape(self):
        out = paper_vs_measured(
            [("avg", "5.48", 5.1), ("std", "1.339", 1.2)], title="fig12"
        )
        assert "paper" in out
        assert "measured" in out
        assert "5.48" in out
        assert "5.10" in out
