"""End-to-end integration tests: the paper's headline claims at small scale.

Each test runs a full pipeline — store dataset, build graph, optimize,
execute on the simulator — and checks the *shape* of the paper's result
(who wins, and roughly by how much), scaled down for test speed.
"""

import numpy as np
import pytest

from repro.analysis import (
    expected_local_fraction,
    prob_more_than,
)
from repro.apps import MpiBlastRun, MultiInputComparison, ParaViewMultiBlockReader
from repro.core import (
    DefaultDynamicPolicy,
    ProcessPlacement,
    opass_dynamic_plan,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.metrics import ServeMonitor, imbalance_factor, jains_fairness
from repro.parallel import run_master_worker, run_opass_single, run_rank_interval
from repro.workloads import (
    gene_database,
    multi_input_datasets,
    paraview_multiblock_series,
    single_data_workload,
)

NODES = 16


def fresh_fs(seed=0):
    return DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)


class TestSingleDataEndToEnd:
    """The §V-A1 experiment at 16 nodes."""

    def test_opass_flattens_io_and_balances_serving(self):
        fs = fresh_fs(seed=3)
        data = single_data_workload(NODES, 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)

        mon = ServeMonitor(fs)
        mon.start()
        base = run_rank_interval(fs, placement, tasks, seed=1)
        base_served = mon.served_mb_array()

        mon.start()
        opass = run_opass_single(fs, placement, tasks, seed=1)
        opass_served = mon.served_mb_array()

        # I/O time: Opass much flatter and faster on average.
        bs, os_ = base.result.io_stats(), opass.result.io_stats()
        assert os_["avg"] < bs["avg"] / 1.5
        assert os_["max"] < bs["max"] / 2
        assert os_["std"] < bs["std"]

        # Locality: baseline near r/m, Opass near 1.
        assert base.result.locality_fraction < 0.4
        assert opass.result.locality_fraction > 0.95

        # Balance: serving is near-perfectly fair under Opass.
        assert jains_fairness(opass_served) > jains_fairness(base_served)
        assert jains_fairness(opass_served) > 0.97

        # Makespan improves end to end.
        assert opass.result.makespan < base.result.makespan

    def test_baseline_locality_matches_analysis(self):
        """Measured baseline locality ≈ the §III expectation r/m."""
        fracs = []
        for seed in range(5):
            fs = fresh_fs(seed=seed)
            data = single_data_workload(NODES, 10)
            fs.put_dataset(data)
            placement = ProcessPlacement.one_per_node(NODES)
            tasks = tasks_from_dataset(data)
            out = run_rank_interval(fs, placement, tasks, seed=seed)
            fracs.append(out.result.locality_fraction)
        expected = expected_local_fraction(3, NODES)
        assert np.mean(fracs) == pytest.approx(expected, abs=0.06)


class TestMultiDataEndToEnd:
    """The §V-A2 experiment: improvement exists but is smaller."""

    def test_opass_improves_but_partially(self):
        fs = fresh_fs(seed=7)
        datasets = multi_input_datasets(NODES * 10)
        for ds in datasets:
            fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(NODES)

        base = MultiInputComparison(fs, placement, datasets, use_opass=False).execute(seed=2)
        fs.reset_counters()
        opass = MultiInputComparison(fs, placement, datasets, use_opass=True).execute(seed=2)

        ratio = base.result.io_stats()["avg"] / opass.result.io_stats()["avg"]
        assert ratio > 1.2  # clearly better
        # ...but smaller than the single-data win, and locality is partial:
        assert opass.result.locality_fraction < 0.9
        assert opass.result.locality_fraction > base.result.locality_fraction


class TestDynamicEndToEnd:
    """The §V-A3 experiment: guided lists beat the random master."""

    def test_opass_dynamic_beats_default(self):
        fs = fresh_fs(seed=11)
        db = gene_database(NODES * 10)
        fs.put_dataset(db)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(db)

        default = run_master_worker(
            fs, placement, tasks, DefaultDynamicPolicy(len(tasks), seed=1), seed=2
        )
        fs.reset_counters()
        plan, _, _ = opass_dynamic_plan(fs, "genedb", placement)
        opass = run_master_worker(fs, placement, tasks, plan, seed=2)

        ratio = default.result.io_stats()["avg"] / opass.result.io_stats()["avg"]
        assert ratio > 1.8  # paper: 2.7x at 64 nodes
        assert opass.result.locality_fraction > 0.9


class TestParaViewEndToEnd:
    """The §V-B experiment: lower mean, much lower variance, faster run."""

    def test_reader_call_statistics_shape(self):
        fs = fresh_fs(seed=13)
        series = paraview_multiblock_series(NODES * 5)
        fs.put_dataset(series)
        placement = ProcessPlacement.one_per_node(NODES)

        stock = ParaViewMultiBlockReader(fs, placement, series, use_opass=False).render(seed=3)
        fs.reset_counters()
        opass = ParaViewMultiBlockReader(fs, placement, series, use_opass=True).render(seed=3)

        assert opass.avg_call_time < stock.avg_call_time
        assert opass.std_call_time < stock.std_call_time / 2
        assert opass.total_execution_time < stock.total_execution_time
        # Fastest stock call ≈ a local read+parse, same as Opass's typical.
        assert stock.min_call_time == pytest.approx(opass.avg_call_time, rel=0.25)


class TestMotivationEndToEnd:
    """Figure 1: imbalanced serving and varied I/O times on the baseline."""

    def test_figure1_shape(self):
        fs = fresh_fs(seed=17)
        data = uniform_dataset("intro", NODES * 2)  # 2 chunks/node ideal
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)

        mon = ServeMonitor(fs)
        mon.start()
        out = run_rank_interval(fs, placement, tasks, seed=4)
        served_chunks = mon.chunks_served_array()

        # Ideal is 2 chunks/node; reality: some nodes serve 0, some many.
        assert served_chunks.max() >= 4
        assert served_chunks.min() <= 1
        # I/O times vary (Figure 1(b)).
        assert imbalance_factor(out.result.durations()) > 2

    def test_remote_fraction_grows_with_cluster_size(self):
        """§III-A's scaling claim measured end to end."""
        fractions = []
        for m in (8, 16, 32):
            fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=19)
            data = single_data_workload(m, 5)
            fs.put_dataset(data)
            placement = ProcessPlacement.one_per_node(m)
            tasks = tasks_from_dataset(data)
            out = run_rank_interval(fs, placement, tasks, seed=5)
            fractions.append(1 - out.result.locality_fraction)
        assert fractions[0] < fractions[1] < fractions[2]
        # And the analytical tail probability drops accordingly.
        assert prob_more_than(5, 160, 3, 32) < prob_more_than(5, 40, 3, 8)
