"""Tests for the `opass-verify` incremental cache (``.opass-cache/``).

The acceptance bar: a warm run over an unchanged tree recomputes *no*
module summary (all counters are hits, and the summarizer is provably
never invoked), and editing a leaf module re-checks exactly the modules
whose import closure contains it.
"""

from __future__ import annotations

import pytest

import repro.tools.verify as verify_mod
from repro.tools.cache import AnalysisCache, CacheStats, module_key
from repro.tools.config import LintConfig
from repro.tools.verify import verify_paths

A_SRC = (
    "from repro.core.b import mid\n"
    "def top(cluster):\n"
    "    return mid(cluster)\n"
)
B_SRC = (
    "from repro.core.c import leaf\n"
    "def mid(cluster):\n"
    "    return leaf(cluster)\n"
)
C_SRC = "def leaf(cluster):\n    return len(cluster)\n"
D_SRC = "def lonely():\n    return 42\n"


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(A_SRC, encoding="utf-8")
    (pkg / "b.py").write_text(B_SRC, encoding="utf-8")
    (pkg / "c.py").write_text(C_SRC, encoding="utf-8")
    (pkg / "d.py").write_text(D_SRC, encoding="utf-8")
    return tmp_path


def run(tree, tmp_path, config=None):
    stats = CacheStats()
    cache = AnalysisCache(tmp_path / "cache", stats)
    report = verify_paths(
        [str(tree / "src")], config=config or LintConfig(), cache=cache
    )
    return report, stats


class TestWarmPath:
    def test_cold_then_warm_counters(self, tree, tmp_path):
        _, cold = run(tree, tmp_path)
        assert cold.summary_hits == 0 and cold.summary_misses == 4
        assert cold.check_hits == 0 and cold.check_misses == 4

        _, warm = run(tree, tmp_path)
        assert warm.summary_misses == 0 and warm.summary_hits == 4
        assert warm.check_misses == 0 and warm.check_hits == 4

    def test_warm_run_never_invokes_the_summarizer(self, tree, tmp_path, monkeypatch):
        run(tree, tmp_path)

        def boom(decl):  # pragma: no cover - must not run
            raise AssertionError(f"summarize_module called for {decl.module}")

        monkeypatch.setattr(verify_mod, "summarize_module", boom)
        report, warm = run(tree, tmp_path)
        assert report.ok and warm.summary_misses == 0

    def test_warm_report_is_identical(self, tree, tmp_path):
        cold_report, _ = run(tree, tmp_path)
        warm_report, _ = run(tree, tmp_path)
        assert cold_report.to_json() == warm_report.to_json()

    def test_cached_violations_replay_identically(self, tree, tmp_path):
        # make c.py mutate the cluster so the pure-module rule fires in a
        pkg = tree / "src" / "repro" / "core"
        (pkg / "opass.py").write_text(
            "from repro.core.c import leaf\n"
            "def assign(cluster: 'Cluster', tasks):\n"
            "    poke(cluster)\n"
            "    return []\n"
            "def poke(cluster):\n"
            "    cluster.load = {}\n",
            encoding="utf-8",
        )
        cold_report, cold = run(tree, tmp_path)
        assert not cold_report.ok
        warm_report, warm = run(tree, tmp_path)
        assert warm.check_misses == 0
        assert warm_report.to_json() == cold_report.to_json()


class TestInvalidation:
    def test_leaf_edit_reanalyzes_only_dependents(self, tree, tmp_path):
        run(tree, tmp_path)
        pkg = tree / "src" / "repro" / "core"
        (pkg / "c.py").write_text(
            C_SRC + "\ndef extra():\n    return 0\n", encoding="utf-8"
        )
        _, stats = run(tree, tmp_path)
        # only c's summary is recomputed ...
        assert stats.summary_misses == 1 and stats.summary_hits == 3
        # ... but every module whose closure contains c is re-checked,
        # while the unrelated module d replays from the cache
        assert stats.check_misses == 3 and stats.check_hits == 1

    def test_check_config_edit_keeps_summaries_warm(self, tree, tmp_path):
        # summaries are config-independent (raw axis/taint facts), so a
        # check-relevant edit re-runs the checks but re-parses nothing
        run(tree, tmp_path)
        other = LintConfig(decision_packages=("core", "dfs", "simulate"))
        _, stats = run(tree, tmp_path, config=other)
        assert stats.summary_hits == 4 and stats.summary_misses == 0
        assert stats.check_hits == 0 and stats.check_misses == 4

    def test_lint_only_config_edit_rechecks_nothing(self, tree, tmp_path):
        # knobs only opass-lint reads are outside the check fingerprint:
        # the warm run after the edit must stay fully cached
        run(tree, tmp_path)
        other = LintConfig(float_attrs=("weird",), remove_allow=("xs",))
        _, stats = run(tree, tmp_path, config=other)
        assert stats.summary_misses == 0 and stats.summary_hits == 4
        assert stats.check_misses == 0 and stats.check_hits == 4

    def test_contract_edit_rechecks_only_the_declaring_module(self, tree, tmp_path):
        run(tree, tmp_path)
        contracts = dict(LintConfig().cost_contracts)
        contracts["repro.core.c.leaf"] = "O(1)"
        _, stats = run(tree, tmp_path, config=LintConfig(cost_contracts=contracts))
        assert stats.summary_misses == 0
        # only c.py declares the newly contracted function; a, b and d
        # replay their check results from the cache untouched
        assert stats.check_misses == 1 and stats.check_hits == 3

    def test_module_keys_differ_by_source_and_config(self):
        fp_a = LintConfig().fingerprint()
        fp_b = LintConfig(pure_modules=()).fingerprint()
        assert module_key("x = 1\n", fp_a) != module_key("x = 2\n", fp_a)
        assert module_key("x = 1\n", fp_a) != module_key("x = 1\n", fp_b)


class TestRobustness:
    def test_corrupt_cache_entries_are_misses(self, tree, tmp_path):
        _, cold = run(tree, tmp_path)
        for entry in (tmp_path / "cache").rglob("*.json"):
            entry.write_text("{ not json", encoding="utf-8")
        report, stats = run(tree, tmp_path)
        assert report.ok
        assert stats.summary_hits == 0 and stats.summary_misses == 4

    def test_disabled_cache_never_hits(self, tree, tmp_path):
        stats = CacheStats()
        cache = AnalysisCache(None, stats)
        verify_paths([str(tree / "src")], config=LintConfig(), cache=cache)
        verify_paths([str(tree / "src")], config=LintConfig(), cache=cache)
        assert stats.summary_hits == 0 and stats.check_hits == 0

    def test_readonly_cache_dir_does_not_fail(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        cache_dir.chmod(0o500)
        try:
            report, _ = run(tree, tmp_path)
            assert report.ok
        finally:
            cache_dir.chmod(0o700)
