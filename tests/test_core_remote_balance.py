"""Tests for balanced remote-read planning (the Opass+ extension)."""

import numpy as np
import pytest

from repro.core.remote_balance import (
    PlannedReplicaChoice,
    RemoteBalanceResult,
    plan_remote_reads,
)
from repro.dfs.chunk import ChunkId


def cid(i: int) -> ChunkId:
    return ChunkId(f"c{i}", 0)


class TestPlanning:
    def test_empty(self):
        plan = plan_remote_reads([], {})
        assert plan.server_of == {}
        assert plan.max_load == 0

    def test_single_chunk(self):
        plan = plan_remote_reads([cid(0)], {cid(0): (3, 5)})
        assert plan.server_of[cid(0)] in (3, 5)
        assert plan.max_load == 1

    def test_perfectly_balanceable(self):
        """4 chunks, each on both of 2 nodes: optimal is 2 per node."""
        locations = {cid(i): (0, 1) for i in range(4)}
        plan = plan_remote_reads([cid(i) for i in range(4)], locations)
        assert plan.max_load == 2
        assert sorted(plan.load_per_node.values()) == [2, 2]

    def test_constrained_hot_node(self):
        """Every chunk only on node 0: all load must land there."""
        locations = {cid(i): (0,) for i in range(3)}
        plan = plan_remote_reads([cid(i) for i in range(3)], locations)
        assert plan.load_per_node == {0: 3}
        assert plan.max_load == 3

    def test_spreads_when_possible(self):
        """Chain structure: c0 on {0,1}, c1 on {1,2}, c2 on {2,0}; optimum
        puts one chunk on each node."""
        locations = {cid(0): (0, 1), cid(1): (1, 2), cid(2): (2, 0)}
        plan = plan_remote_reads([cid(i) for i in range(3)], locations)
        assert plan.max_load == 1
        assert sorted(plan.load_per_node.values()) == [1, 1, 1]

    def test_every_chunk_served_by_a_replica(self):
        rng = np.random.default_rng(3)
        chunks = [cid(i) for i in range(30)]
        locations = {
            c: tuple(int(x) for x in rng.choice(10, size=3, replace=False))
            for c in chunks
        }
        plan = plan_remote_reads(chunks, locations)
        assert set(plan.server_of) == set(chunks)
        for c, server in plan.server_of.items():
            assert server in locations[c]

    def test_beats_random_choice_on_max_load(self):
        rng = np.random.default_rng(5)
        chunks = [cid(i) for i in range(60)]
        locations = {
            c: tuple(int(x) for x in rng.choice(12, size=3, replace=False))
            for c in chunks
        }
        plan = plan_remote_reads(chunks, locations)
        worst_random = 0
        for trial in range(10):
            rng2 = np.random.default_rng(trial)
            load = np.zeros(12, dtype=int)
            for c in chunks:
                load[locations[c][int(rng2.integers(3))]] += 1
            worst_random = max(worst_random, int(load.max()))
        assert plan.max_load <= worst_random

    def test_duplicate_chunks_rejected(self):
        with pytest.raises(ValueError):
            plan_remote_reads([cid(0), cid(0)], {cid(0): (0,)})

    def test_missing_replica_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            plan_remote_reads([cid(0)], {cid(0): ()})


class TestPlannedReplicaChoice:
    def test_follows_plan(self, rng):
        plan = RemoteBalanceResult({cid(0): 4}, {4: 1}, 1, 1)
        policy = PlannedReplicaChoice(plan)
        assert policy.choose(cid(0), (2, 4, 6), 0, rng) == 4

    def test_fallback_for_unplanned_chunk(self, rng):
        plan = RemoteBalanceResult({}, {}, 0, 0)
        policy = PlannedReplicaChoice(plan)
        assert policy.choose(cid(1), (7,), 0, rng) == 7

    def test_fallback_when_planned_server_not_in_replicas(self, rng):
        """E.g. the planned node died: replicas no longer include it."""
        plan = RemoteBalanceResult({cid(0): 4}, {4: 1}, 1, 1)
        policy = PlannedReplicaChoice(plan)
        assert policy.choose(cid(0), (2, 6), 0, rng) in (2, 6)

    def test_reset_propagates(self, rng):
        from repro.dfs.policies import LeastLoaded

        fallback = LeastLoaded()
        policy = PlannedReplicaChoice(RemoteBalanceResult({}, {}, 0, 0), fallback)
        policy.choose(cid(0), (1, 2), 0, rng)
        policy.reset()
        assert policy.choose(cid(0), (1, 2), 0, rng) == 1
