"""Tests for the opass CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["single"])
        assert args.nodes == 64
        assert args.chunks_per_process == 10

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestCommands:
    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "P(X > 5)" in out
        assert "128" in out

    def test_single_small(self, capsys):
        assert main(["single", "--nodes", "8", "--chunks-per-process", "3"]) == 0
        out = capsys.readouterr().out
        assert "w/o Opass" in out
        assert "with Opass" in out

    def test_multi_small(self, capsys):
        assert main(["multi", "--nodes", "8", "--tasks", "16"]) == 0
        out = capsys.readouterr().out
        assert "with Opass" in out

    def test_dynamic_small(self, capsys):
        assert main(["dynamic", "--nodes", "8", "--tasks", "16"]) == 0
        out = capsys.readouterr().out
        assert "Opass dynamic" in out

    def test_paraview_small(self, capsys):
        assert main(["paraview", "--nodes", "8", "--datasets", "16", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "total run" in out
        assert "w/o Opass:" in out  # the trace series

    def test_sweep_small(self, capsys):
        assert main(["sweep", "--sizes", "4,8", "--chunks-per-process", "2"]) == 0
        out = capsys.readouterr().out
        assert "base avg" in out
        assert out.count("\n") >= 4  # header + 2 size rows

    def test_export_writes_files(self, capsys, tmp_path):
        outdir = tmp_path / "exp"
        assert main([
            "export", str(outdir), "--nodes", "4", "--chunks-per-process", "2"
        ]) == 0
        assert (outdir / "baseline_reads.csv").exists()
        assert (outdir / "baseline_summary.json").exists()
        assert (outdir / "opass_reads.csv").exists()
        assert (outdir / "opass_summary.json").exists()

    def test_validate_passes(self, capsys):
        assert main(["validate", "--sizes", "8", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst deviation" in out

    def test_hotspot(self, capsys):
        assert main(["hotspot", "--chunks", "64", "--nodes", "16",
                     "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "hottest node" in out
        assert "overload factor" in out

    def test_ingest(self, capsys):
        assert main(["ingest", "--nodes", "4", "--chunks", "8"]) == 0
        out = capsys.readouterr().out
        assert "ingest makespan" in out
        assert "chunks written" in out

    @pytest.mark.parametrize("fig", ["fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"])
    def test_figure_command(self, capsys, fig):
        nodes = ["--nodes", "8"] if fig != "fig1" else []
        assert main(["figure", fig, *nodes]) == 0
        out = capsys.readouterr().out
        assert "Figure" in out

    def test_figure_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
