"""Tests for the serve monitor."""

import pytest

from repro.dfs.chunk import MB, ChunkId
from repro.metrics.recorder import ServeMonitor


class TestServeMonitor:
    def test_requires_start(self, fs8):
        mon = ServeMonitor(fs8)
        with pytest.raises(RuntimeError):
            mon.bytes_served()

    def test_counts_deltas_only(self, fs8):
        cid = ChunkId("data/part-00000", 0)
        node = fs8.layout_snapshot()[cid][0]
        fs8.resolve_read(cid, node)  # before start: excluded

        mon = ServeMonitor(fs8)
        mon.start()
        fs8.resolve_read(cid, node)
        served = mon.bytes_served()
        assert served[node] == 16 * MB
        assert sum(served.values()) == 16 * MB

    def test_requests_served(self, fs8):
        cid = ChunkId("data/part-00000", 0)
        node = fs8.layout_snapshot()[cid][0]
        mon = ServeMonitor(fs8)
        mon.start()
        fs8.resolve_read(cid, node)
        fs8.resolve_read(cid, node)
        assert mon.requests_served()[node] == 2
        assert mon.chunks_served_array()[node] == 2

    def test_served_mb_array_indexing(self, fs8):
        cid = ChunkId("data/part-00001", 0)
        node = fs8.layout_snapshot()[cid][0]
        mon = ServeMonitor(fs8)
        mon.start()
        fs8.resolve_read(cid, node)
        arr = mon.served_mb_array()
        assert arr.shape == (8,)
        assert arr[node] == pytest.approx(16.0)

    def test_summary(self, fs8):
        mon = ServeMonitor(fs8)
        mon.start()
        s = mon.served_summary_mb()
        assert s.avg == 0.0 and s.n == 8

    def test_restart_rebaselines(self, fs8):
        cid = ChunkId("data/part-00000", 0)
        node = fs8.layout_snapshot()[cid][0]
        mon = ServeMonitor(fs8)
        mon.start()
        fs8.resolve_read(cid, node)
        mon.start()
        assert sum(mon.bytes_served().values()) == 0
