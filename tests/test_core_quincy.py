"""Tests for the Quincy-style min-cost-flow scheduler."""

import pytest

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    fully_local_tasks,
    graph_from_filesystem,
    local_bytes,
    locality_fraction,
    optimize_quincy,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.core.bipartite import build_locality_graph
from repro.core.tasks import Task
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB, ChunkId, dataset_from_sizes


@pytest.fixture
def graph():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=89)
    fs.put_dataset(uniform_dataset("d", 40))
    placement = ProcessPlacement.one_per_node(8)
    return graph_from_filesystem(fs, tasks_from_dataset(fs.dataset("d")), placement)


class TestQuincy:
    def test_valid_full_coverage(self, graph):
        assignment, cost = optimize_quincy(graph)
        assignment.validate(40, quotas=equal_quotas(40, 8))
        assert cost >= 0

    def test_matches_flow_optimum_on_equal_chunks(self, graph):
        """On equal-size chunk files byte-optimality == count-optimality."""
        quincy, _ = optimize_quincy(graph)
        flow = optimize_single_data(graph, seed=0)
        assert len(fully_local_tasks(quincy, graph)) == len(
            fully_local_tasks(flow.assignment, graph)
        )

    def test_zero_cost_iff_full_matching(self, graph):
        assignment, cost = optimize_quincy(graph)
        if locality_fraction(assignment, graph) == 1.0:
            assert cost == 0

    def test_byte_optimality_beats_count_optimality(self):
        """With unequal task sizes, Quincy minimises remote *bytes*, which
        can beat the unit matching's remote-byte total."""
        # One big (40 MB) and two small (1 MB) tasks; node 0 holds all
        # three, node 1 holds only the small ones.  Quotas [2, 1]:
        # byte-optimal keeps the big task on node 0.
        locations = {
            ChunkId("big", 0): (0,),
            ChunkId("s1", 0): (0, 1),
            ChunkId("s2", 0): (0, 1),
        }
        sizes = {ChunkId("big", 0): 40 * MB, ChunkId("s1", 0): MB, ChunkId("s2", 0): MB}
        tasks = [Task(0, (ChunkId("big", 0),)), Task(1, (ChunkId("s1", 0),)),
                 Task(2, (ChunkId("s2", 0),))]
        g = build_locality_graph(tasks, locations, sizes, ProcessPlacement.one_per_node(2))
        quincy, cost = optimize_quincy(g, quotas=[2, 1])
        assert local_bytes(quincy, g) == 42 * MB  # everything local
        assert cost == 0
        owner = quincy.process_of()
        assert owner[0] == 0  # the big task stays with its only holder

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            optimize_quincy(graph, quotas=[1] * 8)  # sum < n
        with pytest.raises(ValueError):
            optimize_quincy(graph, quotas=[5] * 4)  # wrong length
        with pytest.raises(ValueError):
            optimize_quincy(graph, cost_granularity=0)

    def test_unmatchable_tasks_still_assigned(self):
        """Tasks with no co-located process get assigned remotely at cost."""
        locations = {ChunkId("a", 0): (3,)}
        sizes = {ChunkId("a", 0): 4 * MB}
        tasks = [Task(0, (ChunkId("a", 0),))]
        g = build_locality_graph(tasks, locations, sizes, ProcessPlacement((0,)))
        assignment, cost = optimize_quincy(g)
        assignment.validate(1)
        assert cost == 4  # 4 MB remote at 1 MB granularity


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_remote_bytes_never_worse_than_random(self, seed):
        """Quincy minimises remote bytes over ALL quota-feasible
        assignments, so any random deal is an upper bound."""
        from repro.core import random_assignment

        fs = DistributedFileSystem(ClusterSpec.homogeneous(6), seed=seed)
        fs.put_dataset(dataset_from_sizes(
            "v", [(i % 5 + 1) * MB for i in range(18)], chunk_size=8 * MB
        ))
        placement = ProcessPlacement.one_per_node(6)
        g = graph_from_filesystem(
            fs, tasks_from_dataset(fs.dataset("v")), placement
        )
        quincy, _ = optimize_quincy(g, cost_granularity=1)
        quincy_remote = g.total_bytes() - local_bytes(quincy, g)
        for sub in range(4):
            rand = random_assignment(18, 6, seed=seed * 10 + sub)
            rand_remote = g.total_bytes() - local_bytes(rand, g)
            assert quincy_remote <= rand_remote

    def test_remote_bytes_never_worse_than_flow_matching(self):
        """Byte-optimality dominates the count-optimal flow matching too."""
        fs = DistributedFileSystem(ClusterSpec.homogeneous(6), seed=97)
        fs.put_dataset(dataset_from_sizes(
            "w", [(i % 7 + 1) * MB for i in range(24)], chunk_size=8 * MB
        ))
        placement = ProcessPlacement.one_per_node(6)
        g = graph_from_filesystem(
            fs, tasks_from_dataset(fs.dataset("w")), placement
        )
        quincy, _ = optimize_quincy(g, cost_granularity=1)
        flow = optimize_single_data(g, seed=0)
        assert (g.total_bytes() - local_bytes(quincy, g)) <= (
            g.total_bytes() - local_bytes(flow.assignment, g)
        )
