"""Full-scale integration: Marmot-sized runs and a whole-lifecycle chain.

These run at the paper's actual cluster size (128 nodes) and chain every
major subsystem in one scenario.  They are the slowest tests in the suite
(a few seconds each) and exist to catch scale-dependent regressions the
small fixtures cannot.
"""

import numpy as np
import pytest

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    opass_single_data,
    optimize_single_data,
    rank_interval_assignment,
    rematch_incremental,
    tasks_from_dataset,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    HdfsWriterLocalPlacement,
    save_snapshot,
    load_snapshot,
)
from repro.dfs.chunk import uniform_dataset
from repro.metrics import jains_fairness
from repro.simulate import (
    DatasetIngest,
    FaultPlan,
    ParallelReadRun,
    StaticSource,
)


class TestMarmotScale:
    """The paper's 128-node cluster size."""

    def test_single_data_at_128_nodes(self):
        m = 128
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=71)
        data = uniform_dataset("big", m * 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(m)
        tasks = tasks_from_dataset(data)
        result, graph, _ = opass_single_data(fs, data, placement, seed=1)
        assert result.full_matching
        assert locality_fraction(result.assignment, graph) == 1.0

        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(result.assignment), seed=1
        ).run()
        assert run.tasks_completed == 1280
        stats = run.io_stats()
        assert stats["max"] - stats["min"] < 1e-6  # perfectly flat
        assert stats["avg"] == pytest.approx(0.924, abs=0.02)
        served = run.served_bytes_array(m)
        assert jains_fairness(served) > 0.999

    def test_baseline_at_128_nodes_matches_analysis(self):
        from repro.analysis import expected_local_fraction

        m = 128
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=73)
        data = uniform_dataset("big", m * 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(m)
        tasks = tasks_from_dataset(data)
        run = ParallelReadRun(
            fs, placement, tasks,
            StaticSource(rank_interval_assignment(len(tasks), m)), seed=1,
        ).run()
        # §III: locality ≈ r/m = 2.3% at 128 nodes.
        assert run.locality_fraction == pytest.approx(
            expected_local_fraction(3, m), abs=0.02
        )


class TestWholeLifecycle:
    def test_ingest_match_fail_repair_chain(self, tmp_path):
        """One scenario through every subsystem: timed ingest → snapshot →
        matching → faulted run with retries → incremental repair →
        re-run on the repaired plan."""
        m = 24
        spec = ClusterSpec.homogeneous(m)
        fs = DistributedFileSystem(
            spec, placement=HdfsWriterLocalPlacement(), seed=79
        )
        data = uniform_dataset("life", m * 5)
        writers = ProcessPlacement.one_per_node(m)

        # 1. ingest through the write pipeline.
        ingest = DatasetIngest(fs, writers, data, seed=1).run()
        assert ingest.bytes_written == data.size

        # 2. snapshot the layout (the reproducibility artifact).
        snap = save_snapshot(fs, tmp_path / "layout.json")
        replica = DistributedFileSystem(spec, seed=0)
        load_snapshot(replica, snap)
        assert replica.layout_snapshot() == fs.layout_snapshot()

        # 3. match and run under two node failures.
        tasks = tasks_from_dataset(fs.dataset("life"))
        graph = graph_from_filesystem(fs, tasks, writers)
        matched = optimize_single_data(graph, seed=1)
        run = ParallelReadRun(
            fs, writers, tasks, StaticSource(matched.assignment), seed=1
        )
        FaultPlan().fail(0.5, 0).fail(1.5, 1).attach(run)
        faulty = run.run()
        assert faulty.tasks_completed == len(tasks)

        # 4. repair the plan for the shrunken cluster.
        fs.namenode.drop_node_replicas(0)
        fs.namenode.drop_node_replicas(1)
        new_graph = graph_from_filesystem(fs, tasks, writers)
        quotas = [0, 0] + equal_quotas(len(tasks), m - 2)
        repaired = rematch_incremental(
            new_graph, matched.assignment, quotas=quotas, seed=1
        )
        assert repaired.churn >= 10  # at least the dead nodes' tasks
        assert len(repaired.assignment.tasks_of[0]) == 0
        assert len(repaired.assignment.tasks_of[1]) == 0

        # 5. the repaired plan runs clean on the survivors.
        rerun = ParallelReadRun(
            fs, writers, tasks, StaticSource(repaired.assignment), seed=2
        ).run()
        assert rerun.tasks_completed == len(tasks)
        assert rerun.read_retries == 0
        assert rerun.locality_fraction > 0.85
