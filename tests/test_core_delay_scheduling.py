"""Tests for the delay-scheduling and locality-greedy baselines."""

import pytest

from repro.core import (
    DelaySchedulingPolicy,
    LocalityGreedyPolicy,
    ProcessPlacement,
    graph_from_filesystem,
    tasks_from_dataset,
)
from repro.core.bipartite import build_locality_graph
from repro.core.tasks import Task
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB, ChunkId
from repro.simulate import ParallelReadRun, Wait


def _tiny_graph():
    """3 tasks: t0 on node 0, t1 on node 1, t2 on node 1 (bigger)."""
    tasks = [Task(i, (ChunkId(f"c{i}", 0),)) for i in range(3)]
    locations = {
        ChunkId("c0", 0): (0,),
        ChunkId("c1", 0): (1,),
        ChunkId("c2", 0): (1,),
    }
    sizes = {ChunkId("c0", 0): MB, ChunkId("c1", 0): MB, ChunkId("c2", 0): 2 * MB}
    return build_locality_graph(tasks, locations, sizes, ProcessPlacement.one_per_node(2))


class TestLocalityGreedy:
    def test_prefers_local_and_biggest(self):
        policy = LocalityGreedyPolicy(_tiny_graph())
        assert policy.next_task(1) == 2  # 2 MB local beats 1 MB local
        assert policy.next_task(1) == 1
        assert policy.next_task(0) == 0
        assert policy.next_task(0) is None

    def test_falls_back_to_remote(self):
        policy = LocalityGreedyPolicy(_tiny_graph(), seed=1)
        assert policy.next_task(0) == 0  # its only local task
        got = policy.next_task(0)  # nothing local left -> any remaining
        assert got in (1, 2)

    def test_each_task_dispatched_once(self):
        policy = LocalityGreedyPolicy(_tiny_graph())
        got = [policy.next_task(i % 2) for i in range(3)]
        assert sorted(got) == [0, 1, 2]
        assert policy.remaining == 0


class TestDelayScheduling:
    def test_waits_then_concedes(self):
        policy = DelaySchedulingPolicy(
            _tiny_graph(), max_delay=1.0, poll_interval=0.5
        )
        assert policy.next_task(0) == 0
        # No local task left for rank 0: two waits, then a remote task.
        assert isinstance(policy.next_task(0), Wait)
        assert isinstance(policy.next_task(0), Wait)
        got = policy.next_task(0)
        assert got in (1, 2)
        assert policy.concessions == 1

    def test_budget_resets_after_dispatch(self):
        policy = DelaySchedulingPolicy(
            _tiny_graph(), max_delay=0.5, poll_interval=0.5
        )
        policy.next_task(0)
        assert isinstance(policy.next_task(0), Wait)
        policy.next_task(0)  # concession
        # Fresh budget: waits again before the next concession.
        assert isinstance(policy.next_task(0), Wait)

    def test_zero_delay_is_pure_greedy(self):
        policy = DelaySchedulingPolicy(_tiny_graph(), max_delay=0.0)
        policy.next_task(0)
        got = policy.next_task(0)
        assert got in (1, 2)  # no Wait ever

    def test_exhausted_pool_returns_none(self):
        policy = DelaySchedulingPolicy(_tiny_graph(), max_delay=1.0, poll_interval=0.5)
        dispatched = []
        for _ in range(20):
            got = policy.next_task(1)
            if got is None:
                break
            if not isinstance(got, Wait):
                dispatched.append(got)
        assert sorted(dispatched) == [0, 1, 2]
        assert policy.next_task(1) is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DelaySchedulingPolicy(_tiny_graph(), max_delay=-1)
        with pytest.raises(ValueError):
            DelaySchedulingPolicy(_tiny_graph(), poll_interval=0)
        with pytest.raises(ValueError):
            Wait(0)


class TestEndToEnd:
    @pytest.fixture
    def env(self):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=53)
        fs.put_dataset(uniform_dataset("d", 40))
        placement = ProcessPlacement.one_per_node(8)
        tasks = tasks_from_dataset(fs.dataset("d"))
        graph = graph_from_filesystem(fs, tasks, placement)
        return fs, placement, tasks, graph

    def test_greedy_run_completes_with_high_locality(self, env):
        fs, placement, tasks, graph = env
        policy = LocalityGreedyPolicy(graph, seed=2)
        result = ParallelReadRun(fs, placement, tasks, policy, seed=2).run()
        assert result.tasks_completed == 40
        # Greedy gets most reads local (r=3 on 8 nodes is replica-rich).
        assert result.locality_fraction > 0.6

    def test_delay_run_waits_and_completes(self, env):
        fs, placement, tasks, graph = env
        policy = DelaySchedulingPolicy(graph, max_delay=1.0, poll_interval=0.25, seed=2)
        run = ParallelReadRun(fs, placement, tasks, policy, seed=2)
        result = run.run()
        assert result.tasks_completed == 40
        assert run.waits > 0

    def test_wait_rejected_in_barrier_mode(self, env):
        fs, placement, tasks, graph = env

        class AlwaysWait:
            def next_task(self, rank):
                return Wait(1.0)

        from repro.core import Assignment
        from repro.simulate import StaticSource

        # Barrier mode only accepts StaticSource, which never Waits — the
        # guard is therefore unreachable through public config; verify the
        # runner's internal check directly.
        run = ParallelReadRun(
            fs, placement, tasks,
            StaticSource(Assignment({r: [] for r in range(8)})),
            barrier=True,
        )
        run.source = AlwaysWait()
        with pytest.raises(ValueError, match="barrier"):
            run.run()
