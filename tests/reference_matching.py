"""Frozen pre-CSR matching kernels (PR 5 differential oracle).

This module is a verbatim-behaviour snapshot of the scheduler-side hot
path as it stood *before* the CSR/array rewrite: dict-of-dict locality
graph, dataclass-edge max-flow and min-cost-flow solvers, and the
matching optimizers built on them.  The production modules in
``repro.core`` must reproduce every output of these functions
byte-for-byte; ``tests/test_properties_sched.py`` runs randomized
differential comparisons and ``benchmarks/bench_sched_performance.py``
uses them to measure the pre-PR throughput baseline.

Do not "improve" this file — its only job is to stay exactly as slow and
exactly as deterministic as the seed implementation.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import Assignment, equal_quotas
from repro.core.bipartite import ProcessPlacement
from repro.core.tasks import Task
from repro.dfs.chunk import ChunkId

_INF = 1 << 62


# -- locality graph (pre-CSR dict-of-dict form) --------------------------------


@dataclass
class RefLocalityGraph:
    """The seed bipartite graph: nested dicts, eagerly built."""

    placement: ProcessPlacement
    tasks: list[Task]
    sizes: dict[ChunkId, int]
    colocated: dict[int, dict[int, int]] = field(default_factory=dict)
    task_ranks: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_processes(self) -> int:
        return self.placement.num_processes

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        return sum(len(d) for d in self.colocated.values())

    def edge_weight(self, rank: int, task_id: int) -> int:
        return self.colocated.get(rank, {}).get(task_id, 0)

    def edges_of_process(self, rank: int) -> dict[int, int]:
        return dict(self.colocated.get(rank, {}))

    def ranks_of_task(self, task_id: int) -> list[int]:
        return list(self.task_ranks.get(task_id, []))

    def task_bytes(self, task_id: int) -> int:
        return sum(self.sizes[cid] for cid in self.tasks[task_id].inputs)

    def total_bytes(self) -> int:
        return sum(self.task_bytes(t.task_id) for t in self.tasks)


def build_locality_graph_ref(
    tasks: list[Task],
    locations: dict[ChunkId, tuple[int, ...]],
    sizes: dict[ChunkId, int],
    placement: ProcessPlacement,
) -> RefLocalityGraph:
    ids = [t.task_id for t in tasks]
    if ids != list(range(len(tasks))):
        raise ValueError("task ids must be 0..n-1 in order")
    ranks_on = placement.ranks_on_node()
    colocated: dict[int, dict[int, int]] = {
        r: {} for r in range(placement.num_processes)
    }
    task_ranks: dict[int, list[int]] = {}
    for task in tasks:
        seen_ranks: set[int] = set()
        for cid in task.inputs:
            if cid not in locations:
                raise KeyError(f"no layout for chunk {cid}")
            if cid not in sizes:
                raise KeyError(f"no size for chunk {cid}")
            for node in locations[cid]:
                for rank in ranks_on.get(node, ()):
                    bucket = colocated[rank]
                    bucket[task.task_id] = bucket.get(task.task_id, 0) + sizes[cid]
                    seen_ranks.add(rank)
        task_ranks[task.task_id] = sorted(seen_ranks)
    return RefLocalityGraph(
        placement=placement,
        tasks=list(tasks),
        sizes=dict(sizes),
        colocated=colocated,
        task_ranks=task_ranks,
    )


# -- max flow (pre-array dataclass edges) --------------------------------------


@dataclass
class _Edge:
    to: int
    cap: int
    rev: int
    original_cap: int


@dataclass
class RefFlowNetwork:
    num_vertices: int
    adj: list[list[_Edge]] = field(init=False)

    def __post_init__(self) -> None:
        self.adj = [[] for _ in range(self.num_vertices)]

    def add_edge(self, u: int, v: int, capacity: int) -> tuple[int, int]:
        fwd = _Edge(to=v, cap=capacity, rev=len(self.adj[v]), original_cap=capacity)
        bwd = _Edge(to=u, cap=0, rev=len(self.adj[u]), original_cap=0)
        self.adj[u].append(fwd)
        self.adj[v].append(bwd)
        return (u, len(self.adj[u]) - 1)

    def flow_on(self, handle: tuple[int, int]) -> int:
        u, idx = handle
        edge = self.adj[u][idx]
        return edge.original_cap - edge.cap

    def edmonds_karp(self, source: int, sink: int) -> int:
        flow = 0
        while True:
            parent: list[tuple[int, int] | None] = [None] * self.num_vertices
            parent[source] = (source, -1)
            queue = deque([source])
            while queue and parent[sink] is None:
                u = queue.popleft()
                for idx, e in enumerate(self.adj[u]):
                    if e.cap > 0 and parent[e.to] is None:
                        parent[e.to] = (u, idx)
                        queue.append(e.to)
            if parent[sink] is None:
                return flow
            bottleneck = None
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                cap = self.adj[u][idx].cap
                bottleneck = cap if bottleneck is None else min(bottleneck, cap)
                v = u
            assert bottleneck is not None and bottleneck > 0
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                edge = self.adj[u][idx]
                edge.cap -= bottleneck
                self.adj[v][edge.rev].cap += bottleneck
                v = u
            flow += bottleneck

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        level = [-1] * self.num_vertices
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.adj[u]:
                if e.cap > 0 and level[e.to] < 0:
                    level[e.to] = level[u] + 1
                    queue.append(e.to)
        return level if level[sink] >= 0 else None

    def _dfs_blocking(
        self, u: int, sink: int, pushed: int, level: list[int], it: list[int]
    ) -> int:
        if u == sink:
            return pushed
        while it[u] < len(self.adj[u]):
            e = self.adj[u][it[u]]
            if e.cap > 0 and level[e.to] == level[u] + 1:
                d = self._dfs_blocking(e.to, sink, min(pushed, e.cap), level, it)
                if d > 0:
                    e.cap -= d
                    self.adj[e.to][e.rev].cap += d
                    return d
            it[u] += 1
        return 0

    def dinic(self, source: int, sink: int) -> int:
        flow = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return flow
            it = [0] * self.num_vertices
            while True:
                pushed = self._dfs_blocking(source, sink, _INF, level, it)
                if pushed == 0:
                    break
                flow += pushed

    def max_flow(self, source: int, sink: int, *, algorithm: str = "dinic") -> int:
        if algorithm == "dinic":
            return self.dinic(source, sink)
        return self.edmonds_karp(source, sink)


# -- min-cost max-flow (pre-array, Bellman-Ford bootstrap always) --------------


@dataclass
class _Arc:
    to: int
    cap: int
    cost: int
    rev: int
    original_cap: int


@dataclass
class RefMinCostFlowNetwork:
    num_vertices: int
    adj: list[list[_Arc]] = field(init=False)

    def __post_init__(self) -> None:
        self.adj = [[] for _ in range(self.num_vertices)]

    def add_edge(self, u: int, v: int, capacity: int, cost: int) -> tuple[int, int]:
        fwd = _Arc(to=v, cap=capacity, cost=cost, rev=len(self.adj[v]),
                   original_cap=capacity)
        bwd = _Arc(to=u, cap=0, cost=-cost, rev=len(self.adj[u]), original_cap=0)
        self.adj[u].append(fwd)
        self.adj[v].append(bwd)
        return (u, len(self.adj[u]) - 1)

    def flow_on(self, handle: tuple[int, int]) -> int:
        u, idx = handle
        arc = self.adj[u][idx]
        return arc.original_cap - arc.cap

    def _initial_potentials(self, source: int) -> list[int]:
        dist = [_INF] * self.num_vertices
        dist[source] = 0
        for _ in range(self.num_vertices - 1):
            changed = False
            for u in range(self.num_vertices):
                if dist[u] == _INF:
                    continue
                for arc in self.adj[u]:
                    if arc.cap > 0 and dist[u] + arc.cost < dist[arc.to]:
                        dist[arc.to] = dist[u] + arc.cost
                        changed = True
            if not changed:
                break
        else:
            for u in range(self.num_vertices):
                if dist[u] == _INF:
                    continue
                for arc in self.adj[u]:
                    if arc.cap > 0 and dist[u] + arc.cost < dist[arc.to]:
                        raise ValueError("graph contains a negative-cost cycle")
        return dist

    def min_cost_flow(
        self, source: int, sink: int, max_flow: int | None = None
    ) -> tuple[int, int]:
        limit = _INF if max_flow is None else max_flow
        potential = self._initial_potentials(source)
        flow = 0
        total_cost = 0
        while flow < limit:
            dist = [_INF] * self.num_vertices
            parent: list[tuple[int, int] | None] = [None] * self.num_vertices
            dist[source] = 0
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                for idx, arc in enumerate(self.adj[u]):
                    if arc.cap <= 0 or potential[u] == _INF:
                        continue
                    nd = d + arc.cost + potential[u] - potential[arc.to]
                    if nd < dist[arc.to]:
                        dist[arc.to] = nd
                        parent[arc.to] = (u, idx)
                        heapq.heappush(heap, (nd, arc.to))
            if dist[sink] == _INF:
                break
            for v in range(self.num_vertices):
                if dist[v] < _INF and potential[v] < _INF:
                    potential[v] += dist[v]
            push = limit - flow
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                push = min(push, self.adj[u][idx].cap)
                v = u
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                arc = self.adj[u][idx]
                arc.cap -= push
                self.adj[v][arc.rev].cap += push
                total_cost += push * arc.cost
                v = u
            flow += push
        return flow, total_cost


# -- single-data optimizer (pre-CSR network build) -----------------------------


def _fallback_distribute(assignment, unmatched, quotas, rng, policy):
    deficits = {
        rank: quotas[rank] - len(assignment.tasks_of.get(rank, []))
        for rank in range(len(quotas))
    }
    open_ranks = [r for r, d in deficits.items() if d > 0]
    if sum(deficits[r] for r in open_ranks) < len(unmatched):
        raise ValueError("quotas cannot absorb unmatched tasks")
    for task_id in unmatched:
        if policy == "random":
            rank = open_ranks[int(rng.integers(len(open_ranks)))]
        else:
            rank = min(open_ranks, key=lambda r: (len(assignment.tasks_of.get(r, [])), r))
        assignment.assign(rank, task_id)
        deficits[rank] -= 1
        if deficits[rank] == 0:
            open_ranks.remove(rank)


def optimize_single_data_ref(
    graph,
    *,
    quotas=None,
    capacity_mode: str = "unit",
    algorithm: str = "dinic",
    fallback: str = "random",
    seed=0,
):
    """The seed flow-based optimizer; returns ``(assignment, max_flow,
    matched, pending)``."""
    m, n = graph.num_processes, graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    net = RefFlowNetwork(m + n + 2)
    s, t = 0, m + n + 1
    handles: dict[tuple[int, int], tuple[int, int]] = {}
    if capacity_mode == "unit":
        for rank in range(m):
            net.add_edge(s, 1 + rank, quotas[rank])
        for rank in range(m):
            for task_id in graph.edges_of_process(rank):
                handles[(rank, task_id)] = net.add_edge(1 + rank, 1 + m + task_id, 1)
        for task_id in range(n):
            net.add_edge(1 + m + task_id, t, 1)
    else:
        total_bytes = graph.total_bytes()
        quota_sum = sum(quotas)
        quotas_bytes = [-(-total_bytes * q // quota_sum) for q in quotas]
        for rank in range(m):
            net.add_edge(s, 1 + rank, quotas_bytes[rank])
        for rank in range(m):
            for task_id, weight in graph.edges_of_process(rank).items():
                handles[(rank, task_id)] = net.add_edge(
                    1 + rank, 1 + m + task_id, weight
                )
        for task_id in range(n):
            net.add_edge(1 + m + task_id, t, graph.task_bytes(task_id))

    max_flow = net.max_flow(s, t, algorithm=algorithm)

    assignment = Assignment.empty(m)
    flow_to: dict[int, list[tuple[int, int]]] = {}
    for (rank, task_id), handle in handles.items():
        f = net.flow_on(handle)
        if f > 0:
            flow_to.setdefault(task_id, []).append((f, rank))
    matched: set[int] = set()
    pending: list[int] = []
    for task_id in range(n):
        carriers = flow_to.get(task_id)
        if not carriers:
            pending.append(task_id)
            continue
        carriers.sort(reverse=True)
        best_flow = carriers[0][0]
        best_rank = min(r for f, r in carriers if f == best_flow)
        if capacity_mode == "unit" or best_flow * 2 >= graph.task_bytes(task_id):
            assignment.assign(best_rank, task_id)
            matched.add(task_id)
        else:
            pending.append(task_id)

    for rank in range(m):
        ts = assignment.tasks_of.get(rank, [])
        while len(ts) > quotas[rank]:
            worst_i, worst = min(
                enumerate(ts),
                key=lambda it: (graph.edge_weight(rank, it[1]), -it[1]),
            )
            del ts[worst_i]
            matched.discard(worst)
            pending.append(worst)
    pending.sort()

    _fallback_distribute(assignment, pending, quotas, rng, fallback)
    assignment.validate(n, quotas=quotas)
    return assignment, max_flow, frozenset(matched), frozenset(pending)


# -- multi-data optimizer (Algorithm 1, pre-CSR proposal orders) ---------------


def optimize_multi_data_ref(graph, *, quotas=None, order: str = "round_robin",
                            seed: int = 0):
    """The seed Algorithm-1 matcher; returns ``(assignment, local_bytes,
    reassignments, proposals)``.

    Note: faithfully reproduces the seed's variable shadowing, where the
    proposal-order dict rebinds ``order`` and every selection mode falls
    through to the seeded random draw.
    """
    if order not in ("round_robin", "stack", "random"):
        raise ValueError(f"unknown selection order {order!r}")
    rng = np.random.default_rng(seed)
    m, n = graph.num_processes, graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)

    order: dict[int, deque[int]] = {}  # noqa: F811 — deliberate seed shadowing
    for rank in range(m):
        weights = graph.edges_of_process(rank)
        ranked = sorted(range(n), key=lambda t: (-weights.get(t, 0), t))
        order[rank] = deque(ranked)

    owner: dict[int, int] = {}
    load = [0] * m
    reassignments = 0
    proposals = 0
    active = deque(rank for rank in range(m) if quotas[rank] > 0)

    while active:
        if order == "round_robin":  # never true: order is the dict above
            rank = active.popleft()
        elif order == "stack":
            rank = active.pop()
        else:
            idx = int(rng.integers(len(active)))
            rank = active[idx]
            del active[idx]
        if load[rank] >= quotas[rank]:
            continue
        if not order[rank]:
            continue
        task = order[rank].popleft()
        proposals += 1
        if task not in owner:
            owner[task] = rank
            load[rank] += 1
        else:
            holder = owner[task]
            if graph.edge_weight(holder, task) < graph.edge_weight(rank, task):
                owner[task] = rank
                load[rank] += 1
                load[holder] -= 1
                reassignments += 1
                if load[holder] < quotas[holder]:
                    active.append(holder)
        if load[rank] < quotas[rank] and order[rank]:
            active.append(rank)

    assignment = Assignment.empty(m)
    for task in range(n):
        assignment.assign(owner[task], task)
    assignment.validate(n, quotas=quotas)
    local = sum(graph.edge_weight(rank, t) for t, rank in owner.items())
    return assignment, local, reassignments, proposals


# -- remote-read balancing (pre-pruning convex arcs) ---------------------------


def plan_remote_reads_ref(chunk_ids, locations):
    """The seed balancer; returns ``(server_of, load, max_load, cost)``."""
    if not chunk_ids:
        return {}, {}, 0, 0
    nodes = sorted({n for cid in chunk_ids for n in locations[cid]})
    node_index = {n: i for i, n in enumerate(nodes)}
    n_chunks, n_nodes = len(chunk_ids), len(nodes)

    s = 0
    chunk_base = 1
    node_base = 1 + n_chunks
    t = node_base + n_nodes
    net = RefMinCostFlowNetwork(t + 1)

    handles: dict[tuple[int, int], ChunkId] = {}
    for i, cid in enumerate(chunk_ids):
        net.add_edge(s, chunk_base + i, 1, 0)
        for node in locations[cid]:
            handle = net.add_edge(chunk_base + i, node_base + node_index[node], 1, 0)
            handles[handle] = cid
    for j in range(n_nodes):
        for k in range(1, n_chunks + 1):
            net.add_edge(node_base + j, t, 1, k)

    flow, cost = net.min_cost_flow(s, t)
    if flow != n_chunks:
        raise RuntimeError("remote balancing failed to route every chunk")

    server_of: dict[ChunkId, int] = {}
    for (u, idx), cid in handles.items():
        if net.flow_on((u, idx)) > 0:
            node = nodes[net.adj[u][idx].to - node_base]
            server_of[cid] = node
    load: dict[int, int] = {}
    for node in server_of.values():
        load[node] = load.get(node, 0) + 1
    return server_of, load, max(load.values(), default=0), cost
