"""Tests for assignment/plan persistence."""

import json

import pytest

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    opass_dynamic_plan,
    optimize_single_data,
    plan_from_dict,
    plan_to_dict,
    tasks_from_dataset,
)
from repro.core.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    layout_fingerprint,
    load_assignment,
    save_assignment,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset


@pytest.fixture
def env():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=8)
    fs.put_dataset(uniform_dataset("d", 40))
    placement = ProcessPlacement.one_per_node(8)
    tasks = tasks_from_dataset(fs.dataset("d"))
    graph = graph_from_filesystem(fs, tasks, placement)
    return fs, placement, tasks, graph


class TestFingerprint:
    def test_deterministic(self, env):
        fs, *_ = env
        a = layout_fingerprint(fs.layout_snapshot())
        b = layout_fingerprint(fs.layout_snapshot())
        assert a == b
        assert len(a) == 16

    def test_changes_with_layout(self, env):
        fs, *_ = env
        before = layout_fingerprint(fs.layout_snapshot())
        fs.namenode.drop_node_replicas(0)
        after = layout_fingerprint(fs.layout_snapshot())
        assert before != after


class TestAssignmentRoundTrip:
    def test_dict_round_trip(self, env):
        _, _, _, graph = env
        a = optimize_single_data(graph, seed=0).assignment
        data = assignment_to_dict(a, num_tasks=40)
        back = assignment_from_dict(data)
        assert back.tasks_of == a.tasks_of

    def test_file_round_trip_with_fingerprint(self, env, tmp_path):
        fs, _, _, graph = env
        a = optimize_single_data(graph, seed=0).assignment
        path = save_assignment(
            a, tmp_path / "plan.json", num_tasks=40, locations=fs.layout_snapshot()
        )
        back = load_assignment(path, locations=fs.layout_snapshot())
        assert back.tasks_of == a.tasks_of

    def test_stale_fingerprint_refused(self, env, tmp_path):
        fs, _, _, graph = env
        a = optimize_single_data(graph, seed=0).assignment
        path = save_assignment(
            a, tmp_path / "plan.json", num_tasks=40, locations=fs.layout_snapshot()
        )
        fs.namenode.drop_node_replicas(0)  # layout changed
        with pytest.raises(ValueError, match="layout changed"):
            load_assignment(path, locations=fs.layout_snapshot())

    def test_load_without_check_still_works(self, env, tmp_path):
        fs, _, _, graph = env
        a = optimize_single_data(graph, seed=0).assignment
        path = save_assignment(a, tmp_path / "plan.json", num_tasks=40)
        assert load_assignment(path).tasks_of == a.tasks_of

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not an assignment"):
            assignment_from_dict({"format": 1, "kind": "dynamic_plan"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            assignment_from_dict({"format": 99, "kind": "assignment"})

    def test_invalid_assignment_rejected_at_save(self, env):
        from repro.core import Assignment

        bad = Assignment({0: [0], 1: [0]})  # duplicate task
        with pytest.raises(ValueError):
            assignment_to_dict(bad, num_tasks=2)


class TestPlanRoundTrip:
    def test_round_trip(self, env):
        fs, placement, _, graph = env
        plan, graph2, _ = opass_dynamic_plan(fs, "d", placement)
        data = plan_to_dict(plan)
        json.dumps(data)  # serialisable
        back = plan_from_dict(data, graph2)
        assert back.lists == plan.lists

    def test_mismatched_process_set_rejected(self, env):
        fs, placement, _, graph = env
        plan, graph2, _ = opass_dynamic_plan(fs, "d", placement)
        data = plan_to_dict(plan)
        del data["lists"]["7"]
        with pytest.raises(ValueError, match="process set"):
            plan_from_dict(data, graph2)

    def test_unknown_task_rejected(self, env):
        fs, placement, _, graph = env
        plan, graph2, _ = opass_dynamic_plan(fs, "d", placement)
        data = plan_to_dict(plan)
        data["lists"]["0"].append(999)
        with pytest.raises(ValueError, match="unknown task"):
            plan_from_dict(data, graph2)

    def test_rehydrated_plan_dispatches(self, env):
        fs, placement, _, _ = env
        plan, graph2, _ = opass_dynamic_plan(fs, "d", placement)
        back = plan_from_dict(plan_to_dict(plan), graph2)
        count = 0
        while back.next_task(count % 8) is not None:
            count += 1
        assert count == 40
