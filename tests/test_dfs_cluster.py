"""Unit tests for cluster and node specifications."""

import pytest

from repro.dfs.cluster import (
    DEFAULT_DISK_BW,
    DEFAULT_NIC_BW,
    Cluster,
    ClusterSpec,
    NodeSpec,
)


class TestNodeSpec:
    def test_defaults(self):
        n = NodeSpec(0)
        assert n.disk_bw == DEFAULT_DISK_BW
        assert n.nic_bw == DEFAULT_NIC_BW
        assert n.rack == 0

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            NodeSpec(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NodeSpec(0, disk_bw=0)
        with pytest.raises(ValueError):
            NodeSpec(0, nic_bw=-1)

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            NodeSpec(0, disk_concurrency_penalty=-0.1)


class TestClusterSpec:
    def test_homogeneous_basic(self):
        spec = ClusterSpec.homogeneous(4)
        assert spec.num_nodes == 4
        assert len(spec) == 4
        assert [n.node_id for n in spec] == [0, 1, 2, 3]

    def test_homogeneous_rejects_zero(self):
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(0)

    def test_racks(self):
        spec = ClusterSpec.homogeneous(8, nodes_per_rack=3)
        assert spec.num_racks == 3
        assert spec.rack_of(0) == 0
        assert spec.rack_of(3) == 1
        assert spec.rack_of(7) == 2
        assert spec.nodes_in_rack(0) == [0, 1, 2]

    def test_single_rack_by_default(self):
        assert ClusterSpec.homogeneous(5).num_racks == 1

    def test_node_lookup(self):
        spec = ClusterSpec.homogeneous(3)
        assert spec.node(2).node_id == 2
        with pytest.raises(KeyError):
            spec.node(3)
        with pytest.raises(KeyError):
            spec.node(-1)

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=(NodeSpec(0), NodeSpec(0)))

    def test_nonsequential_ids_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=(NodeSpec(0), NodeSpec(2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=())

    def test_invalid_remote_stream_bw(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=(NodeSpec(0),), remote_stream_bw=0)

    def test_custom_bandwidths_propagate(self):
        spec = ClusterSpec.homogeneous(2, disk_bw=10.0, nic_bw=20.0)
        assert all(n.disk_bw == 10.0 for n in spec)
        assert all(n.nic_bw == 20.0 for n in spec)


class TestCluster:
    def test_all_active_initially(self):
        c = Cluster(ClusterSpec.homogeneous(4))
        assert c.active_nodes == [0, 1, 2, 3]
        assert c.num_active == 4
        assert c.is_active(2)

    def test_decommission(self):
        c = Cluster(ClusterSpec.homogeneous(4))
        c.decommission(1)
        assert not c.is_active(1)
        assert c.active_nodes == [0, 2, 3]

    def test_double_decommission_rejected(self):
        c = Cluster(ClusterSpec.homogeneous(4))
        c.decommission(1)
        with pytest.raises(ValueError):
            c.decommission(1)

    def test_cannot_remove_last_node(self):
        c = Cluster(ClusterSpec.homogeneous(1))
        with pytest.raises(ValueError):
            c.decommission(0)

    def test_recommission(self):
        c = Cluster(ClusterSpec.homogeneous(3))
        c.decommission(2)
        c.recommission(2)
        assert c.is_active(2)

    def test_unknown_node_rejected(self):
        c = Cluster(ClusterSpec.homogeneous(2))
        with pytest.raises(KeyError):
            c.is_active(9)
