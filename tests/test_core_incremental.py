"""Tests for incremental re-matching (§V-C future work)."""

import pytest

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rematch_incremental,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset


def build(nodes=16, chunks=160, seed=5):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(nodes), seed=seed)
    fs.put_dataset(uniform_dataset("d", chunks))
    placement = ProcessPlacement.one_per_node(nodes)
    tasks = tasks_from_dataset(fs.dataset("d"))
    graph = graph_from_filesystem(fs, tasks, placement)
    return fs, placement, tasks, graph


class TestNoChange:
    def test_unchanged_graph_zero_churn(self):
        fs, placement, tasks, graph = build()
        base = optimize_single_data(graph, seed=0)
        result = rematch_incremental(graph, base.assignment, seed=0)
        assert result.churn == 0
        assert result.assignment.tasks_of == base.assignment.tasks_of


class TestNodeLoss:
    def test_disk_loss_with_full_quotas_is_churn_free(self):
        """Losing node 0's replicas while every other process stays at
        quota leaves nowhere better for the displaced tasks: they return
        to their owner (still remote either way) — zero gratuitous churn,
        same quality as a from-scratch rematch."""
        fs, placement, tasks, graph = build()
        base = optimize_single_data(graph, seed=0)
        fs.namenode.drop_node_replicas(0)
        new_graph = graph_from_filesystem(fs, tasks, placement)
        result = rematch_incremental(new_graph, base.assignment, seed=0)
        result.assignment.validate(160, quotas=equal_quotas(160, 16))
        assert result.churn == 0
        scratch = optimize_single_data(new_graph, seed=0)
        inc_loc = locality_fraction(result.assignment, new_graph)
        scr_loc = locality_fraction(scratch.assignment, new_graph)
        assert inc_loc >= scr_loc - 1e-9

    def test_process_loss_moves_only_its_tasks(self):
        """Node 0 dies entirely (replicas AND process): its quota drops to
        zero and exactly its tasks — plus bounded ripple — move."""
        fs, placement, tasks, graph = build()
        base = optimize_single_data(graph, seed=0)
        fs.namenode.drop_node_replicas(0)
        new_graph = graph_from_filesystem(fs, tasks, placement)
        quotas = [0] + [11] * 15  # 165 >= 160 capacity without rank 0
        result = rematch_incremental(new_graph, base.assignment, quotas=quotas, seed=0)
        result.assignment.validate(160, quotas=quotas)
        assert len(result.assignment.tasks_of[0]) == 0
        # Rank 0 owned 10 tasks; churn is those plus a small ripple.
        assert 10 <= result.churn <= 30
        inc_loc = locality_fraction(result.assignment, new_graph)
        scratch = optimize_single_data(new_graph, quotas=quotas, seed=0)
        scr_loc = locality_fraction(scratch.assignment, new_graph)
        assert inc_loc >= scr_loc - 0.08

    def test_kept_tasks_do_not_move(self):
        fs, placement, tasks, graph = build()
        base = optimize_single_data(graph, seed=0)
        old_owner = base.assignment.process_of()
        fs.namenode.drop_node_replicas(3)
        new_graph = graph_from_filesystem(fs, tasks, placement)
        result = rematch_incremental(new_graph, base.assignment, seed=0)
        new_owner = result.assignment.process_of()
        for t in result.kept_tasks:
            assert new_owner[t] == old_owner[t]
        for t in result.moved_tasks:
            assert new_owner[t] != old_owner[t]


class TestQuotaChange:
    def test_shrunk_quota_evicts_least_local(self):
        fs, placement, tasks, graph = build(nodes=4, chunks=16)
        base = optimize_single_data(graph, seed=0)
        # Rank 0 may now hold only 1 task; the others absorb the rest.
        quotas = [1, 6, 6, 6]
        result = rematch_incremental(graph, base.assignment, quotas=quotas, seed=0)
        result.assignment.validate(16, quotas=quotas)
        assert len(result.assignment.tasks_of[0]) <= 1

    def test_insufficient_quota_rejected(self):
        fs, placement, tasks, graph = build(nodes=4, chunks=16)
        base = optimize_single_data(graph, seed=0)
        with pytest.raises(ValueError, match="total quota"):
            rematch_incremental(graph, base.assignment, quotas=[1, 1, 1, 1])

    def test_wrong_coverage_rejected(self):
        fs, placement, tasks, graph = build(nodes=4, chunks=16)
        from repro.core import Assignment

        bad = Assignment({0: [0, 1], 1: [], 2: [], 3: []})
        with pytest.raises(ValueError, match="cover"):
            rematch_incremental(graph, bad)


class TestChurnBound:
    def test_churn_much_smaller_than_full_rematch_distance(self):
        """Losing one node moves far fewer tasks than recomputing from
        scratch with a different seed would."""
        fs, placement, tasks, graph = build(nodes=32, chunks=320, seed=9)
        base = optimize_single_data(graph, seed=0)
        fs.namenode.drop_node_replicas(5)
        new_graph = graph_from_filesystem(fs, tasks, placement)

        inc = rematch_incremental(new_graph, base.assignment, seed=0)
        scratch = optimize_single_data(new_graph, seed=1)
        old_owner = base.assignment.process_of()
        scratch_owner = scratch.assignment.process_of()
        scratch_churn = sum(
            1 for t in range(320) if scratch_owner[t] != old_owner[t]
        )
        assert inc.churn < scratch_churn
        assert inc.churn <= 40  # ~10 lost tasks + bounded ripple
