"""Public API surface tests: every exported name resolves and works."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.dfs",
    "repro.simulate",
    "repro.parallel",
    "repro.apps",
    "repro.analysis",
    "repro.experiments",
    "repro.workloads",
    "repro.metrics",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} has no __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_and_unique(self, package):
        mod = importlib.import_module(package)
        names = list(mod.__all__)
        assert len(set(names)) == len(names), f"{package}.__all__ has duplicates"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart_names_exported(self):
        # The names the README's quickstart imports must stay available.
        for name in (
            "ClusterSpec",
            "DistributedFileSystem",
            "ProcessPlacement",
            "uniform_dataset",
            "opass_single_data",
            "rank_interval_assignment",
            "locality_fraction",
            "ParallelReadRun",
            "StaticSource",
            "tasks_from_dataset",
        ):
            assert hasattr(repro, name)

    def test_docstrings_on_public_callables(self):
        """Every public function/class in the top packages is documented."""
        import inspect

        undocumented = []
        for package in PACKAGES:
            mod = importlib.import_module(package)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{package}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestQuickstartSnippet:
    def test_readme_quickstart_executes(self):
        """The README quickstart, verbatim (at small scale for speed)."""
        from repro import (
            ClusterSpec,
            DistributedFileSystem,
            ParallelReadRun,
            ProcessPlacement,
            StaticSource,
            locality_fraction,
            opass_single_data,
            rank_interval_assignment,
            tasks_from_dataset,
            uniform_dataset,
        )

        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=7)
        data = uniform_dataset("bench", 80)
        fs.put_dataset(data)
        procs = ProcessPlacement.one_per_node(8)
        tasks = tasks_from_dataset(data)
        baseline = rank_interval_assignment(len(tasks), 8)
        opass, graph, _ = opass_single_data(fs, data, procs)
        assert locality_fraction(baseline, graph) < 0.6
        assert locality_fraction(opass.assignment, graph) == 1.0
        result = ParallelReadRun(
            fs, procs, tasks, StaticSource(opass.assignment)
        ).run()
        stats = result.io_stats()
        assert stats["avg"] == pytest.approx(stats["max"], rel=1e-6)
