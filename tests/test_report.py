"""Tests for the reproduction report generator."""

import pytest

from repro.report import ReportConfig, generate_report


class TestConfig:
    def test_defaults(self):
        cfg = ReportConfig()
        assert cfg.num_nodes == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ReportConfig(num_nodes=2)
        with pytest.raises(ValueError):
            ReportConfig(paraview_seeds=())


class TestGenerate:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(ReportConfig(num_nodes=8, paraview_seeds=(0,)))

    def test_all_sections_present(self, report):
        for heading in (
            "# Opass reproduction report",
            "## Figure 3",
            "## Figures 7/8",
            "## Figures 9/10",
            "## Figure 11",
            "## Figure 12",
            "## §V-C overhead",
        ):
            assert heading in report

    def test_paper_anchors_present(self, report):
        assert "81.09%" in report
        assert "5.48 s" in report
        assert "< 1 %" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_deterministic_except_wallclock(self):
        """Everything but the §V-C wall-clock line is seed-determined."""
        def stable(text: str) -> str:
            return "\n".join(
                line for line in text.splitlines() if "wall-clock" not in line
            )

        cfg = ReportConfig(num_nodes=8, paraview_seeds=(0,))
        assert stable(generate_report(cfg)) == stable(generate_report(cfg))

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--nodes", "8", "-o", str(out)]) == 0
        assert out.exists()
        assert "# Opass reproduction report" in out.read_text()

    def test_cli_report_stdout(self, capsys):
        from repro.cli import main

        assert main(["report", "--nodes", "8"]) == 0
        assert "Figure 11" in capsys.readouterr().out


class TestExtensionsSection:
    def test_included_when_requested(self):
        cfg = ReportConfig(num_nodes=8, paraview_seeds=(0,), include_extensions=True)
        text = generate_report(cfg)
        assert "## Extensions (analytical)" in text
        assert "hottest node" in text
        assert "lower bound" in text

    def test_excluded_by_default(self):
        cfg = ReportConfig(num_nodes=8, paraview_seeds=(0,))
        assert "## Extensions" not in generate_report(cfg)

    def test_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["report", "--nodes", "8", "--extensions"]) == 0
        assert "Extensions (analytical)" in capsys.readouterr().out
