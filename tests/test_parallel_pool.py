"""ComponentSolvePool: shared-memory parallel solves, byte-identical.

Three layers of identity, strongest last:

* kernel level — ``solve_batch`` over lowered components returns exactly
  what the in-process ``solve_lowered`` dispatch returns (``==`` on the
  raw floats and iteration counts);
* allocator level — a ``ComponentAllocator`` with a forced pool
  (``min_flows=0``) tracks a pool-free one exactly through add/remove
  churn, and counts its dispatches;
* engine level — a full ``ParallelReadRun`` on a pool-backed simulation
  produces byte-identical read records and makespan to the serial run.

Plus lifecycle: calibration yields a sane threshold, below-threshold
batches fall back to in-process solves, and close() is idempotent.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ProcessPlacement,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.parallel.pool import ComponentSolvePool
from repro.simulate import ParallelReadRun, Simulation, StaticSource, cluster_resources
from repro.simulate.components import ComponentAllocator
from repro.simulate.flows import Flow
from repro.simulate.resources import Resource
from repro.simulate.vectorized import lower_component, res_entry, solve_lowered
from repro.workloads import single_data_workload


@pytest.fixture(scope="module")
def pool():
    p = ComponentSolvePool(workers=2, min_flows=0)
    yield p
    p.close()


def _random_batch(rng: random.Random, ncomps: int):
    resources = {
        f"r{i}": Resource(
            name=f"r{i}",
            capacity=rng.choice([1.0, 10.0, 80e6, 125e6]),
            concurrency_penalty=rng.choice([0.0, 0.05, 0.5]),
        )
        for i in range(12)
    }
    caps = {n: res_entry(r) for n, r in resources.items()}
    names = list(resources)
    batch = []
    for _ in range(ncomps):
        k = rng.randint(2, 50)
        flows = [
            Flow(
                size=1.0,
                path=tuple(rng.sample(names, rng.randint(1, 4))),
                rate_cap=rng.choice([None, 1.0, 60e6]),
            )
            for _ in range(k)
        ]
        batch.append(lower_component(flows, caps))
    return batch


@pytest.mark.parametrize("seed", range(5))
def test_solve_batch_matches_in_process(pool, seed):
    batch = _random_batch(random.Random(seed), ncomps=8)
    assert pool.solve_batch(batch) == [solve_lowered(low) for low in batch]


def test_solve_batch_empty(pool):
    assert pool.solve_batch([]) == []


def test_block_growth_preserves_identity(pool):
    rng = random.Random(99)
    small = _random_batch(rng, ncomps=2)
    big = _random_batch(rng, ncomps=20)
    assert pool.solve_batch(small) == [solve_lowered(low) for low in small]
    assert pool.solve_batch(big) == [solve_lowered(low) for low in big]


def test_calibrated_threshold_is_sane():
    p = ComponentSolvePool(workers=1)
    try:
        assert p.min_flows >= 1
        assert p.min_flows <= 65536
    finally:
        p.close()


def test_close_is_idempotent():
    p = ComponentSolvePool(workers=1, min_flows=0)
    p.close()
    p.close()
    with pytest.raises(RuntimeError):
        p.solve_batch([])


def _kill_worker(p: ComponentSolvePool, idx: int = 0) -> None:
    proc = p._procs[idx]
    proc.kill()
    proc.join(timeout=5.0)
    assert not proc.is_alive()


def test_worker_crash_surfaces_clean_error():
    # a dead worker must produce a RuntimeError naming the casualty,
    # not a hang on recv() or a bare EOFError
    p = ComponentSolvePool(workers=1, min_flows=0)
    batch = _random_batch(random.Random(7), ncomps=3)
    assert p.solve_batch(batch) == [solve_lowered(low) for low in batch]
    _kill_worker(p)
    with pytest.raises(RuntimeError, match="worker died mid-dispatch"):
        p.solve_batch(batch)


def test_shared_memory_unlinked_on_abnormal_exit():
    from multiprocessing import shared_memory

    p = ComponentSolvePool(workers=1, min_flows=0)
    batch = _random_batch(random.Random(8), ncomps=2)
    p.solve_batch(batch)
    name = p._shm_box[0].name
    _kill_worker(p)
    with pytest.raises(RuntimeError):
        p.solve_batch(batch)
    # the crash path tore the pool down and unlinked the segment
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_close_after_crash_is_idempotent():
    p = ComponentSolvePool(workers=2, min_flows=0)
    batch = _random_batch(random.Random(9), ncomps=4)
    p.solve_batch(batch)
    _kill_worker(p, idx=1)
    with pytest.raises(RuntimeError):
        p.solve_batch(batch)
    p.close()  # already closed by the crash path; must stay a no-op
    with pytest.raises(RuntimeError, match="closed"):
        p.solve_batch(batch)


# -- allocator level ---------------------------------------------------------


def _churn(alloc_a, alloc_b, seed: int) -> None:
    rng = random.Random(seed)
    resources = {
        f"r{i}": Resource(name=f"r{i}", capacity=rng.choice([1.0, 5.0, 125e6]),
                          concurrency_penalty=rng.choice([0.0, 0.05]))
        for i in range(10)
    }
    names = list(resources)
    for name, r in resources.items():
        alloc_a.register(name, r)
        alloc_b.register(name, r)
    live: list[Flow] = []
    for _ in range(150):
        if live and rng.random() < 0.35:
            f = live.pop(rng.randrange(len(live)))
            alloc_a.remove(f)
            alloc_b.remove(f)
        else:
            f = Flow(size=1.0, path=tuple(rng.sample(names, rng.randint(1, 3))),
                     rate_cap=rng.choice([None, None, 1.0]))
            live.append(f)
            alloc_a.add(f)
            alloc_b.add(f)
        if rng.random() < 0.5:
            got = alloc_a.solve()
            want = alloc_b.solve()
            assert got == want
            assert alloc_a.last_iterations == alloc_b.last_iterations


def test_allocator_pooled_vs_serial_churn(pool):
    pooled = ComponentAllocator(pool=pool)
    serial = ComponentAllocator()
    _churn(pooled, serial, seed=31)


def test_allocator_counts_pool_dispatches(pool):
    alloc = ComponentAllocator(pool=pool)
    alloc.register("shared", Resource(name="shared", capacity=100.0,
                                      concurrency_penalty=0.1))
    for _ in range(8):
        alloc.add(Flow(size=1.0, path=("shared",)))
    alloc.solve()
    assert alloc.last_parallel_solves == 1
    assert alloc.last_pool_wall > 0.0


def test_allocator_below_threshold_falls_back(pool):
    # A pool advertising an unreachable threshold must never be consulted.
    class NeverPool:
        min_flows = 10**9
        last_dispatch_wall = 0.0

        def solve_batch(self, lowered):  # pragma: no cover - must not run
            raise AssertionError("dispatched below threshold")

    alloc = ComponentAllocator(pool=NeverPool())
    serial = ComponentAllocator()
    _churn(alloc, serial, seed=77)
    assert alloc.last_parallel_solves == 0


# -- engine level ------------------------------------------------------------


def test_engine_rejects_pool_with_wrong_allocator(pool):
    with pytest.raises(ValueError):
        Simulation(allocator="incremental", parallel=pool)


def _run_workload(sim: Simulation | None, nodes: int = 12, seed: int = 3):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(nodes), seed=seed)
    data = single_data_workload(nodes, 4)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    if sim is not None:
        sim.add_resources(cluster_resources(fs.spec))
    run = ParallelReadRun(
        fs,
        ProcessPlacement.one_per_node(nodes),
        tasks,
        StaticSource(rank_interval_assignment(len(tasks), nodes)),
        seed=seed,
        sim=sim,
    )
    result = run.run()
    return result, run


def test_engine_pool_on_off_byte_identical(pool):
    serial_result, serial_run = _run_workload(None)
    pooled_sim = Simulation(allocator="component", parallel=pool)
    pooled_result, pooled_run = _run_workload(pooled_sim)

    assert pooled_result.makespan == serial_result.makespan
    assert pooled_run.sim.events_processed == serial_run.sim.events_processed
    got = [
        (r.seq, r.rank, r.task_id, r.chunk, r.server_node, r.reader_node,
         r.local, r.issue_time, r.end_time)
        for r in pooled_result.records
    ]
    want = [
        (r.seq, r.rank, r.task_id, r.chunk, r.server_node, r.reader_node,
         r.local, r.issue_time, r.end_time)
        for r in serial_result.records
    ]
    assert got == want
    # The pool really ran: dispatches were counted and timed.
    assert pooled_run.sim.perf.parallel_solves > 0
    assert pooled_run.sim.perf.pool_dispatch_wall > 0.0
