"""Tests for the SPMD driver."""

import pytest

from repro.core import ProcessPlacement, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.parallel.spmd import run_opass_single, run_rank_interval, run_static
from repro.core.baselines import random_assignment


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(spec, seed=19)
    ds = uniform_dataset("d", 40)
    fs.put_dataset(ds)
    return fs, ProcessPlacement.one_per_node(8), tasks_from_dataset(ds)


class TestRunners:
    def test_rank_interval_completes(self, env):
        fs, placement, tasks = env
        out = run_rank_interval(fs, placement, tasks, seed=1)
        assert out.result.tasks_completed == 40
        assert 0 <= out.planned_locality <= 1

    def test_opass_better_than_baseline(self, env):
        fs, placement, tasks = env
        base = run_rank_interval(fs, placement, tasks, seed=1)
        fs.reset_counters()
        opass = run_opass_single(fs, placement, tasks, seed=1)
        assert opass.planned_locality > base.planned_locality
        assert opass.achieved_locality > base.achieved_locality
        assert opass.result.io_stats()["avg"] < base.result.io_stats()["avg"]

    def test_achieved_matches_planned_for_static(self, env):
        """A static run reads exactly what the plan says: locality achieved
        equals locality planned (single-chunk tasks)."""
        fs, placement, tasks = env
        out = run_opass_single(fs, placement, tasks, seed=1)
        assert out.achieved_locality == pytest.approx(out.planned_locality)

    def test_run_static_custom_assignment(self, env):
        fs, placement, tasks = env
        a = random_assignment(40, 8, seed=3)
        out = run_static(fs, placement, tasks, a, seed=1)
        assert out.assignment is a
        assert out.result.tasks_completed == 40

    def test_barrier_passthrough(self, env):
        fs, placement, tasks = env
        out = run_rank_interval(fs, placement, tasks, barrier=True,
                                barrier_compute_time=0.5, seed=1)
        assert out.result.tasks_completed == 40
