"""Tests for the rack-aware (oversubscribed-fabric) network model."""

import pytest

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB, Chunk, ChunkId
from repro.dfs.filesystem import ReadPlan
from repro.simulate import ParallelReadRun, StaticSource, cluster_resources
from repro.simulate.iomodel import read_cost, uncontended_read_time
from repro.simulate.resources import disk, nic_rx, nic_tx, rack_down, rack_up, remote_read_path


def _plan(reader, server, size=1000):
    return ReadPlan(chunk=Chunk(ChunkId("f", 0), size), reader_node=reader, server_node=server)


class TestResources:
    def test_no_rack_resources_for_nonblocking_fabric(self):
        spec = ClusterSpec.homogeneous(4, nodes_per_rack=2)
        names = sorted(r.name for r in cluster_resources(spec))
        assert not any(n.startswith("rk") for n in names)

    def test_rack_resources_created_when_oversubscribed(self):
        spec = ClusterSpec.homogeneous(4, nodes_per_rack=2, rack_uplink_bw=50 * MB)
        by_name = {r.name: r for r in cluster_resources(spec)}
        assert by_name[rack_up(0)].capacity == 50 * MB
        assert by_name[rack_down(1)].capacity == 50 * MB

    def test_invalid_uplink(self):
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(2, rack_uplink_bw=0)


class TestPaths:
    def test_same_rack_path_unchanged(self):
        path = remote_read_path(0, 1, server_rack=0, reader_rack=0)
        assert path == [disk(0), nic_tx(0), nic_rx(1)]

    def test_cross_rack_path_adds_links(self):
        path = remote_read_path(0, 3, server_rack=0, reader_rack=1)
        assert path == [disk(0), nic_tx(0), rack_up(0), rack_down(1), nic_rx(3)]

    def test_read_cost_cross_rack(self):
        spec = ClusterSpec.homogeneous(4, nodes_per_rack=2, rack_uplink_bw=50 * MB)
        cost = read_cost(_plan(reader=0, server=3), spec)
        assert rack_up(1) in cost.path
        assert rack_down(0) in cost.path

    def test_read_cost_same_rack_no_links(self):
        spec = ClusterSpec.homogeneous(4, nodes_per_rack=2, rack_uplink_bw=50 * MB)
        cost = read_cost(_plan(reader=0, server=1), spec)
        assert not any(r.startswith("rk") for r in cost.path)

    def test_nonblocking_fabric_never_adds_links(self):
        spec = ClusterSpec.homogeneous(4, nodes_per_rack=2)
        cost = read_cost(_plan(reader=0, server=3), spec)
        assert not any(r.startswith("rk") for r in cost.path)


class TestUncontendedTimes:
    def test_slow_uplink_bottlenecks_cross_rack(self):
        spec = ClusterSpec.homogeneous(
            4, nodes_per_rack=2, rack_uplink_bw=10.0,
            disk_bw=100.0, nic_bw=100.0, remote_stream_bw=100.0,
            seek_latency=0.0, remote_latency=0.0,
        )
        t_cross = uncontended_read_time(_plan(0, 3), spec)
        t_same = uncontended_read_time(_plan(0, 1), spec)
        assert t_cross == pytest.approx(1000 / 10.0)
        assert t_same == pytest.approx(1000 / 100.0)


class TestEndToEnd:
    def _run(self, rack_uplink_bw):
        spec = ClusterSpec.homogeneous(
            8, nodes_per_rack=2, rack_uplink_bw=rack_uplink_bw
        )
        fs = DistributedFileSystem(spec, seed=9)
        fs.put_dataset(uniform_dataset("d", 40))
        placement = ProcessPlacement.one_per_node(8)
        tasks = tasks_from_dataset(fs.dataset("d"))
        return ParallelReadRun(
            fs, placement, tasks,
            StaticSource(rank_interval_assignment(40, 8)), seed=9,
        ).run()

    def test_oversubscription_slows_baseline(self):
        fast = self._run(None)
        slow = self._run(20 * MB)  # heavily oversubscribed uplinks
        assert slow.tasks_completed == fast.tasks_completed == 40
        assert slow.makespan > fast.makespan
        assert slow.io_stats()["avg"] > fast.io_stats()["avg"]
