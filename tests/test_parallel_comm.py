"""Tests for the simulated MPI communicator."""

import pytest

from repro.core import ProcessPlacement
from repro.parallel.comm import ANY_SOURCE, ANY_TAG, SimComm


@pytest.fixture
def comm():
    return SimComm(ProcessPlacement.one_per_node(4))


class TestBasics:
    def test_size_and_nodes(self, comm):
        assert comm.size == 4
        assert comm.node_of(2) == 2

    def test_send_recv(self, comm):
        comm.send({"x": 1}, dest=1, source=0, tag=7)
        assert comm.recv(rank=1, source=0, tag=7) == {"x": 1}

    def test_recv_any_source_any_tag(self, comm):
        comm.send("a", dest=2, source=3, tag=5)
        assert comm.recv(rank=2) == "a"

    def test_recv_filters_by_source(self, comm):
        comm.send("from0", dest=2, source=0)
        comm.send("from1", dest=2, source=1)
        assert comm.recv(rank=2, source=1) == "from1"
        assert comm.recv(rank=2, source=0) == "from0"

    def test_recv_filters_by_tag(self, comm):
        comm.send("t1", dest=1, source=0, tag=1)
        comm.send("t2", dest=1, source=0, tag=2)
        assert comm.recv(rank=1, tag=2) == "t2"

    def test_fifo_within_match(self, comm):
        comm.send("first", dest=1, source=0)
        comm.send("second", dest=1, source=0)
        assert comm.recv(rank=1) == "first"
        assert comm.recv(rank=1) == "second"

    def test_recv_empty_raises(self, comm):
        with pytest.raises(LookupError):
            comm.recv(rank=0)

    def test_probe_and_pending(self, comm):
        assert not comm.probe(rank=1)
        comm.send("x", dest=1, source=0, tag=3)
        assert comm.probe(rank=1)
        assert comm.probe(rank=1, tag=3)
        assert not comm.probe(rank=1, tag=4)
        assert comm.pending(1) == 1

    def test_invalid_ranks(self, comm):
        with pytest.raises(ValueError):
            comm.send("x", dest=9, source=0)
        with pytest.raises(ValueError):
            comm.recv(rank=9)


class TestCollectives:
    def test_bcast(self, comm):
        comm.bcast("hello", root=1)
        for rank in (0, 2, 3):
            assert comm.recv(rank=rank, source=1) == "hello"
        assert not comm.probe(rank=1)

    def test_barrier_counts(self, comm):
        assert not comm.barrier_arrive(0)
        assert not comm.barrier_arrive(1)
        assert not comm.barrier_arrive(2)
        assert comm.barrier_arrive(3)
        assert comm.barriers_completed == 1

    def test_barrier_reusable(self, comm):
        for _ in range(2):
            for r in range(3):
                assert not comm.barrier_arrive(r)
            assert comm.barrier_arrive(3)
        assert comm.barriers_completed == 2
