"""Tests for multi-pass scan workloads (multi-query mpiBLAST shape)."""

import pytest

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    multi_pass_scan_tasks,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.simulate import ParallelReadRun, StaticSource


@pytest.fixture
def env():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=59)
    db = uniform_dataset("db", 24, chunk_size=8 * MB)
    fs.put_dataset(db)
    return fs, ProcessPlacement.one_per_node(8), db


class TestConstruction:
    def test_task_count_and_ids(self, env):
        _, _, db = env
        tasks = multi_pass_scan_tasks(db, 3)
        assert len(tasks) == 72
        assert [t.task_id for t in tasks] == list(range(72))

    def test_pass_major_ordering(self, env):
        _, _, db = env
        tasks = multi_pass_scan_tasks(db, 2)
        # Task 24+f scans the same file as task f.
        for f in range(24):
            assert tasks[24 + f].inputs == tasks[f].inputs

    def test_single_pass_equals_plain(self, env):
        _, _, db = env
        assert [t.inputs for t in multi_pass_scan_tasks(db, 1)] == [
            t.inputs for t in tasks_from_dataset(db)
        ]

    def test_invalid_passes(self, env):
        _, _, db = env
        with pytest.raises(ValueError):
            multi_pass_scan_tasks(db, 0)


class TestMatching:
    def test_shared_chunks_still_fully_matchable(self, env):
        """With r replicas and quota headroom, even Q > r scans of a chunk
        can all be local: a holder takes several of them."""
        fs, placement, db = env
        tasks = multi_pass_scan_tasks(db, 4)  # 4 scans > r=3 replicas
        graph = graph_from_filesystem(fs, tasks, placement)
        result = optimize_single_data(graph, seed=1)
        assert result.full_matching
        assert locality_fraction(result.assignment, graph) == 1.0
        result.assignment.validate(96, quotas=equal_quotas(96, 8))

    def test_graph_edges_scale_with_passes(self, env):
        fs, placement, db = env
        g1 = graph_from_filesystem(fs, multi_pass_scan_tasks(db, 1), placement)
        g3 = graph_from_filesystem(fs, multi_pass_scan_tasks(db, 3), placement)
        assert g3.num_edges == 3 * g1.num_edges


class TestExecution:
    def test_multi_pass_run_reads_everything(self, env):
        fs, placement, db = env
        tasks = multi_pass_scan_tasks(db, 2)
        graph = graph_from_filesystem(fs, tasks, placement)
        result = optimize_single_data(graph, seed=1)
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(result.assignment), seed=1
        ).run()
        assert run.tasks_completed == 48
        assert run.local_bytes + run.remote_bytes == 48 * 8 * MB
        assert run.locality_fraction == 1.0
