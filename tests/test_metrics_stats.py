"""Tests for summary statistics."""

import numpy as np
import pytest

from repro.metrics.stats import (
    Summary,
    coefficient_of_variation,
    imbalance_factor,
    jains_fairness,
    percentile_summary,
    summarize,
    windowed_means,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.avg == 2.5
        assert s.max == 4
        assert s.min == 1
        assert s.n == 4

    def test_empty(self):
        s = summarize([])
        assert s.avg == 0 and s.n == 0

    def test_as_dict(self):
        d = summarize([2, 2]).as_dict()
        assert d == {"avg": 2.0, "max": 2.0, "min": 2.0, "std": 0.0}

    def test_accepts_generator(self):
        assert summarize(x for x in (1.0, 3.0)).avg == 2.0


class TestImbalance:
    def test_ratio(self):
        assert imbalance_factor([1, 2, 9]) == 9.0

    def test_zero_min_inf(self):
        assert imbalance_factor([0, 5]) == float("inf")

    def test_all_zero_is_one(self):
        assert imbalance_factor([0, 0]) == 1.0

    def test_summary_property(self):
        assert Summary(avg=2, max=8, min=2, std=0, n=3).imbalance == 4.0


class TestFairness:
    def test_perfectly_fair(self):
        assert jains_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jains_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty(self):
        assert jains_fairness([]) == 1.0

    def test_all_zero(self):
        assert jains_fairness([0, 0]) == 1.0

    def test_between_bounds(self, rng):
        vals = rng.random(50)
        f = jains_fairness(vals)
        assert 1 / 50 <= f <= 1.0


class TestCv:
    def test_zero_spread(self):
        assert coefficient_of_variation([3, 3, 3]) == 0.0

    def test_zero_mean(self):
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_known_value(self):
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)


class TestPercentiles:
    def test_keys(self):
        p = percentile_summary(range(100))
        assert set(p) == {"p50", "p90", "p99"}
        assert p["p50"] == pytest.approx(49.5)

    def test_empty(self):
        assert percentile_summary([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_custom(self):
        p = percentile_summary([1, 2, 3], percentiles=(100,))
        assert p == {"p100": 3.0}


class TestWindowedMeans:
    def test_trend_detection(self):
        trace = list(range(100))
        w = windowed_means(trace, 4)
        assert w.shape == (4,)
        assert (np.diff(w) > 0).all()

    def test_empty(self):
        assert windowed_means([], 3).tolist() == [0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            windowed_means([1], 0)

    def test_fewer_values_than_windows(self):
        w = windowed_means([5.0], 3)
        assert w[0] == 5.0
