"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.dfs.chunk import DEFAULT_CHUNK_SIZE, MB
from repro.workloads import (
    gene_database,
    motivating_dataset,
    multi_input_datasets,
    paraview_multiblock_series,
    single_data_workload,
)


class TestSingleDataWorkload:
    def test_shape(self):
        ds = single_data_workload(16, 10)
        assert ds.num_chunks == 160
        assert all(f.size == DEFAULT_CHUNK_SIZE for f in ds.files)

    def test_custom_chunk_size(self):
        ds = single_data_workload(4, 2, chunk_size=MB)
        assert ds.size == 8 * MB

    def test_invalid(self):
        with pytest.raises(ValueError):
            single_data_workload(0)
        with pytest.raises(ValueError):
            single_data_workload(4, 0)


class TestMultiInputDatasets:
    def test_paper_shape(self):
        dss = multi_input_datasets(64)
        assert len(dss) == 3
        assert [ds.files[0].size for ds in dss] == [30 * MB, 20 * MB, 10 * MB]
        assert all(len(ds.files) == 64 for ds in dss)

    def test_distinct_names(self):
        dss = multi_input_datasets(4)
        assert len({ds.name for ds in dss}) == 3

    def test_custom_sizes(self):
        dss = multi_input_datasets(4, input_sizes_mb=(5, 7))
        assert len(dss) == 2
        assert dss[1].files[0].size == 7 * MB

    def test_invalid(self):
        with pytest.raises(ValueError):
            multi_input_datasets(0)
        with pytest.raises(ValueError):
            multi_input_datasets(4, input_sizes_mb=())
        with pytest.raises(ValueError):
            multi_input_datasets(4, input_sizes_mb=(5, 0))


class TestGeneDatabase:
    def test_fragments(self):
        db = gene_database(32)
        assert db.num_chunks == 32
        assert all(f.num_chunks == 1 for f in db.files)


class TestParaviewSeries:
    def test_sizes_near_mean(self):
        ds = paraview_multiblock_series(100, mean_size_mb=56.0, jitter_mb=4.0)
        sizes_mb = np.array([f.size for f in ds.files]) / MB
        assert abs(sizes_mb.mean() - 56.0) < 2.0
        assert sizes_mb.min() >= 52.0 - 1e-6
        assert sizes_mb.max() <= 60.0 + 1e-6

    def test_single_chunk_files(self):
        ds = paraview_multiblock_series(10)
        assert all(f.num_chunks == 1 for f in ds.files)

    def test_seeded_rng(self):
        a = paraview_multiblock_series(10, rng=np.random.default_rng(5))
        b = paraview_multiblock_series(10, rng=np.random.default_rng(5))
        assert [f.size for f in a.files] == [f.size for f in b.files]

    def test_invalid(self):
        with pytest.raises(ValueError):
            paraview_multiblock_series(0)
        with pytest.raises(ValueError):
            paraview_multiblock_series(5, mean_size_mb=0)
        with pytest.raises(ValueError):
            paraview_multiblock_series(5, mean_size_mb=10, jitter_mb=10)


class TestMotivatingDataset:
    def test_figure1_shape(self):
        ds = motivating_dataset()
        assert ds.num_chunks == 128
        assert ds.files[0].size == DEFAULT_CHUNK_SIZE
