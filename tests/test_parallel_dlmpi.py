"""Tests for the DL-MPI-style locality query API."""

import pytest

from repro.core import ProcessPlacement
from repro.dfs.chunk import ChunkId
from repro.parallel.dlmpi import DataLocalityQuery


@pytest.fixture
def query(fs8, placement8):
    return DataLocalityQuery(fs8, placement8)


class TestQueries:
    def test_is_local_matches_layout(self, query, fs8):
        layout = fs8.layout_snapshot()
        for cid, nodes in layout.items():
            for node in range(8):
                assert query.is_local(node, cid) == (node in nodes)

    def test_local_chunks_complete(self, query, fs8):
        layout = fs8.layout_snapshot()
        for rank in range(8):
            expected = sorted(
                (cid for cid, nodes in layout.items() if rank in nodes), key=str
            )
            assert query.local_chunks(rank) == expected

    def test_local_bytes(self, query, fs8):
        for rank in range(8):
            assert query.local_bytes(rank) == fs8.datanodes[rank].stored_bytes

    def test_split_partitions(self, query, fs8):
        chunks = list(fs8.layout_snapshot())
        split = query.split(0, chunks)
        assert set(split.local) | set(split.remote) == set(chunks)
        assert not set(split.local) & set(split.remote)
        assert 0 <= split.locality_ratio <= 1

    def test_locality_map_covers_all_ranks(self, query, fs8):
        chunks = list(fs8.layout_snapshot())[:10]
        m = query.locality_map(chunks)
        assert set(m) == set(range(8))

    def test_best_rank_for(self, query, fs8):
        layout = fs8.layout_snapshot()
        cid = next(iter(layout))
        assert query.best_rank_for(cid) == sorted(layout[cid])

    def test_expected_locality_ratio(self, query, fs8):
        """With r=3 on 8 nodes, a rank sees ~3/8 of chunks locally."""
        chunks = list(fs8.layout_snapshot())
        ratios = [query.split(r, chunks).locality_ratio for r in range(8)]
        assert abs(sum(ratios) / 8 - 3 / 8) < 0.12

    def test_refresh_after_change(self, query, fs8):
        cid = ChunkId("data/part-00000", 0)
        nodes = fs8.layout_snapshot()[cid]
        outsider = next(n for n in range(8) if n not in nodes)
        fs8.datanodes[outsider].add_replica(cid, 16 * 10**6)
        assert not query.is_local(outsider, cid)  # stale view
        query.refresh()
        assert query.is_local(outsider, cid)

    def test_empty_split(self, query):
        split = query.split(0, [])
        assert split.locality_ratio == 1.0
