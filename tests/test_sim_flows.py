"""Tests for max-min fair rate allocation."""

import pytest

from repro.simulate.flows import Flow, allocate_rates, verify_allocation
from repro.simulate.resources import Resource


def caps(**kw):
    return {k: float(v) for k, v in kw.items()}


class TestSingleResource:
    def test_single_flow_gets_full_capacity(self):
        f = Flow(100, ("r",))
        rates = allocate_rates([f], caps(r=10))
        assert rates[f] == pytest.approx(10)

    def test_equal_split(self):
        flows = [Flow(100, ("r",)) for _ in range(4)]
        rates = allocate_rates(flows, caps(r=20))
        assert all(rates[f] == pytest.approx(5) for f in flows)

    def test_empty(self):
        assert allocate_rates([], caps(r=10)) == {}

    def test_unknown_resource_rejected(self):
        with pytest.raises(KeyError):
            allocate_rates([Flow(1, ("x",))], caps(r=10))


class TestMultiResource:
    def test_bottleneck_chain(self):
        """A flow through two resources is limited by the tighter one."""
        f = Flow(100, ("a", "b"))
        rates = allocate_rates([f], caps(a=10, b=4))
        assert rates[f] == pytest.approx(4)

    def test_classic_three_flow_maxmin(self):
        """Textbook case: links A(cap 10) and B(cap 4); f1 on A, f2 on B,
        f3 on both.  Max-min: f3 and f2 get 2 each on B; f1 gets 8 on A."""
        f1 = Flow(100, ("a",))
        f2 = Flow(100, ("b",))
        f3 = Flow(100, ("a", "b"))
        rates = allocate_rates([f1, f2, f3], caps(a=10, b=4))
        assert rates[f2] == pytest.approx(2)
        assert rates[f3] == pytest.approx(2)
        assert rates[f1] == pytest.approx(8)

    def test_verify_allocation_passes(self):
        f1 = Flow(100, ("a",))
        f2 = Flow(100, ("a", "b"))
        resources = caps(a=10, b=4)
        rates = allocate_rates([f1, f2], resources)
        verify_allocation([f1, f2], resources, rates)

    def test_verify_detects_overload(self):
        f = Flow(100, ("a",))
        with pytest.raises(AssertionError, match="over capacity"):
            verify_allocation([f], caps(a=1), {f: 5.0})

    def test_verify_detects_non_maxmin(self):
        f = Flow(100, ("a",))
        with pytest.raises(AssertionError, match="no saturated"):
            verify_allocation([f], caps(a=10), {f: 1.0})


class TestRateCaps:
    def test_cap_limits_single_flow(self):
        f = Flow(100, ("r",), rate_cap=3)
        rates = allocate_rates([f], caps(r=10))
        assert rates[f] == pytest.approx(3)

    def test_uncapped_flow_absorbs_released_capacity(self):
        capped = Flow(100, ("r",), rate_cap=2)
        free = Flow(100, ("r",))
        rates = allocate_rates([capped, free], caps(r=10))
        assert rates[capped] == pytest.approx(2)
        assert rates[free] == pytest.approx(8)

    def test_cap_above_fair_share_is_inactive(self):
        f1 = Flow(100, ("r",), rate_cap=50)
        f2 = Flow(100, ("r",))
        rates = allocate_rates([f1, f2], caps(r=10))
        assert rates[f1] == pytest.approx(5)
        assert rates[f2] == pytest.approx(5)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            Flow(1, ("r",), rate_cap=0)

    def test_verify_accepts_capped_flow(self):
        f = Flow(100, ("r",), rate_cap=2)
        resources = caps(r=10)
        rates = allocate_rates([f], resources)
        verify_allocation([f], resources, rates)


class TestConcurrencyPenalty:
    def test_single_flow_no_penalty(self):
        r = {"d": Resource("d", 10, concurrency_penalty=0.5)}
        f = Flow(100, ("d",))
        assert allocate_rates([f], r)[f] == pytest.approx(10)

    def test_two_flows_degraded(self):
        r = {"d": Resource("d", 12, concurrency_penalty=0.5)}
        flows = [Flow(100, ("d",)) for _ in range(2)]
        rates = allocate_rates(flows, r)
        # Effective capacity 12/1.5 = 8, shared equally: 4 each.
        assert all(rates[f] == pytest.approx(4) for f in flows)

    def test_effective_capacity_formula(self):
        r = Resource("d", 100, concurrency_penalty=0.25)
        assert r.effective_capacity(1) == 100
        assert r.effective_capacity(2) == pytest.approx(80)
        assert r.effective_capacity(5) == pytest.approx(50)

    def test_zero_penalty_resource(self):
        r = Resource("n", 100)
        assert r.effective_capacity(10) == 100


class TestFlowValidation:
    def test_nonpositive_size(self):
        with pytest.raises(ValueError):
            Flow(0, ("r",))

    def test_empty_path(self):
        with pytest.raises(ValueError):
            Flow(1, ())

    def test_duplicate_path(self):
        with pytest.raises(ValueError):
            Flow(1, ("r", "r"))

    def test_remaining_initialised(self):
        f = Flow(42, ("r",))
        assert f.remaining == 42.0

    def test_flows_hashable_and_distinct(self):
        f1 = Flow(1, ("r",))
        f2 = Flow(1, ("r",))
        assert f1 != f2
        assert len({f1, f2}) == 2
