"""PR 9 regression contract: throughput must not collapse with scale.

Before event coalescing and the pessimistic retire-time sweep, the
engine's per-event cost grew with the active flow count — a hidden
O(n)-per-event scan — so 2048/4096-node runs collapsed to ~0.55x of the
512-node events/s.  This test pins the fix with the bench's own min-of-3
protocol: the simulation is deterministic, so the fastest of three
repeats strips scheduler/frequency noise, and measuring both scales in
one session puts that noise on both sides of the ratio.

The ratio gate (not an absolute events/s gate) is what makes this
runnable on shared CI hardware: a slow machine slows both scales alike.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from bench_sim_performance import COLLAPSE_FLOORS, run_scaling  # noqa: E402


def test_2048_node_throughput_holds_against_512() -> None:
    # The measured frontier sits just above the floor, so a single
    # unlucky scheduling burst mid-session can push one side under it.
    # A real O(n)-per-event regression fails *every* session by a wide
    # margin; re-measuring a bounded number of times rejects timing
    # flakes without loosening the contract.
    floor = COLLAPSE_FLOORS[2048]
    ratios = []
    for _ in range(3):
        rows = run_scaling(seed=0, repeats=3, scales=(512, 2048))
        by_nodes = {r["nodes"]: r for r in rows}
        ratio = (
            by_nodes[2048]["events_per_second"]
            / by_nodes[512]["events_per_second"]
        )
        if ratio >= floor:
            return
        ratios.append(ratio)
    assert False, (
        f"2048-node throughput collapsed below {floor:.2f}x of the "
        f"512-node rate in 3 independent sessions: ratios "
        f"{', '.join(f'{r:.3f}' for r in ratios)} (last session: "
        f"{by_nodes[2048]['events_per_second']:.0f} vs "
        f"{by_nodes[512]['events_per_second']:.0f} events/s)"
    )
