"""Differential pinning of the PR-5 scheduler kernels.

Two layers keep the CSR/array rewrites honest:

* randomized differential tests against :mod:`tests.reference_matching`
  (a frozen snapshot of the pre-PR dict/dataclass kernels) — every
  output must match bit-for-bit, including on the warm paths (cached
  graph, reused network, replayed solve) that the reference never had;
* golden-pin tests that re-derive the committed
  ``tests/data/golden_matching_*.json`` fixtures through the production
  entry points (the pytest twin of ``make_golden_matching.py --check``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    FlowNetwork,
    ProcessPlacement,
    SchedPerf,
    build_locality_graph,
    clear_graph_cache,
    graph_from_filesystem,
    optimize_multi_data,
    optimize_single_data,
    plan_remote_reads,
    tasks_from_dataset,
)
from repro.core.tasks import Task
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.dfs.chunk import MB, ChunkId
from repro.metrics import sched_perf_summary
from repro.simulate import ParallelReadRun, StaticSource
from repro.workloads import single_data_workload

from .reference_matching import (
    RefFlowNetwork,
    build_locality_graph_ref,
    optimize_multi_data_ref,
    optimize_single_data_ref,
    plan_remote_reads_ref,
)

DATA = Path(__file__).parent / "data"


def _random_layout(num_nodes: int, num_tasks: int, seed: int):
    """Random multi-chunk tasks over a random replicated layout."""
    rng = np.random.default_rng(seed)
    tasks, locations, sizes = [], {}, {}
    for t in range(num_tasks):
        inputs = []
        for j in range(int(rng.integers(1, 4))):
            cid = ChunkId(f"t{t}", j)
            repl = int(rng.integers(1, 4))
            locations[cid] = tuple(
                int(x) for x in rng.choice(num_nodes, size=repl, replace=False)
            )
            sizes[cid] = int(rng.integers(1, 64)) * MB
            inputs.append(cid)
        tasks.append(Task(t, tuple(inputs)))
    return tasks, locations, sizes


class TestGraphBuildDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_csr_build_matches_reference(self, seed):
        tasks, locations, sizes = _random_layout(9, 40, seed)
        placement = ProcessPlacement.one_per_node(9)
        new = build_locality_graph(tasks, locations, sizes, placement)
        ref = build_locality_graph_ref(tasks, locations, sizes, placement)
        assert new.num_edges == ref.num_edges
        for rank in range(placement.num_processes):
            assert new.edges_of_process(rank) == ref.edges_of_process(rank)
        for tid in range(len(tasks)):
            assert new.ranks_of_task(tid) == ref.ranks_of_task(tid)
            assert new.task_bytes(tid) == ref.task_bytes(tid)
        assert new.total_bytes() == ref.total_bytes()

    def test_k_per_node_placement_matches_reference(self):
        tasks, locations, sizes = _random_layout(5, 30, 11)
        placement = ProcessPlacement.k_per_node(5, 3)
        new = build_locality_graph(tasks, locations, sizes, placement)
        ref = build_locality_graph_ref(tasks, locations, sizes, placement)
        for rank in range(placement.num_processes):
            assert new.edges_of_process(rank) == ref.edges_of_process(rank)


def _assignments_equal(a, b):
    return {r: list(ts) for r, ts in a.tasks_of.items()} == {
        r: list(ts) for r, ts in b.tasks_of.items()
    }


class TestSingleDataDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    @pytest.mark.parametrize("mode", ["unit", "bytes"])
    @pytest.mark.parametrize("algorithm", ["dinic", "edmonds_karp"])
    def test_matches_reference_cold_warm_and_replayed(
        self, seed, mode, algorithm
    ):
        tasks, locations, sizes = _random_layout(8, 32, seed + 100)
        placement = ProcessPlacement.one_per_node(8)
        graph = build_locality_graph(tasks, locations, sizes, placement)
        ref_graph = build_locality_graph_ref(tasks, locations, sizes, placement)
        ref_asn, ref_flow, ref_matched, ref_pending = optimize_single_data_ref(
            ref_graph, capacity_mode=mode, algorithm=algorithm, seed=seed
        )
        # Three rounds on one graph: cold build, scratch-network reuse,
        # memoised solve replay.  All must equal the reference exactly.
        for attempt in ("cold", "warm", "replayed"):
            r = optimize_single_data(
                graph, capacity_mode=mode, algorithm=algorithm, seed=seed
            )
            assert r.max_flow == ref_flow, attempt
            assert _assignments_equal(r.assignment, ref_asn), attempt
            assert r.matched_tasks == ref_matched, attempt
            assert r.fallback_tasks == ref_pending, attempt

    @pytest.mark.parametrize("fallback", ["random", "least_loaded"])
    def test_fallback_policies_match_reference(self, fallback):
        tasks, locations, sizes = _random_layout(10, 50, 21)
        placement = ProcessPlacement.one_per_node(10)
        graph = build_locality_graph(tasks, locations, sizes, placement)
        ref_graph = build_locality_graph_ref(tasks, locations, sizes, placement)
        ref_asn, *_ = optimize_single_data_ref(ref_graph, fallback=fallback, seed=3)
        r = optimize_single_data(graph, fallback=fallback, seed=3)
        assert _assignments_equal(r.assignment, ref_asn)


class TestMultiDataDifferential:
    @pytest.mark.parametrize("seed", [0, 2, 9])
    @pytest.mark.parametrize("order", ["round_robin", "stack", "random"])
    def test_matches_reference(self, seed, order):
        tasks, locations, sizes = _random_layout(7, 35, seed + 50)
        placement = ProcessPlacement.one_per_node(7)
        graph = build_locality_graph(tasks, locations, sizes, placement)
        ref_graph = build_locality_graph_ref(tasks, locations, sizes, placement)
        ref_asn, ref_local, ref_re, ref_prop = optimize_multi_data_ref(
            ref_graph, order=order, seed=seed
        )
        r = optimize_multi_data(graph, order=order, seed=seed)
        assert _assignments_equal(r.assignment, ref_asn)
        assert r.local_bytes == ref_local
        assert r.reassignments == ref_re
        assert r.proposals == ref_prop


class TestFlowNetworkDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("algorithm", ["dinic", "edmonds_karp"])
    def test_random_networks_same_flows_even_after_reset(self, seed, algorithm):
        rng = np.random.default_rng(seed)
        n = 14
        new, ref = FlowNetwork(n), RefFlowNetwork(n)
        handles = []
        for _ in range(45):
            u, v = rng.choice(n, size=2, replace=False)
            cap = int(rng.integers(1, 20))
            h_new = new.add_edge(int(u), int(v), cap)
            h_ref = ref.add_edge(int(u), int(v), cap)
            assert h_new == h_ref
            handles.append(h_new)
        ref_flow = ref.max_flow(0, n - 1, algorithm=algorithm)
        ref_flows = [ref.flow_on(h) for h in handles]
        # Solve, reset, re-solve (replay path): flows identical each time.
        for _ in range(3):
            assert new.max_flow(0, n - 1, algorithm=algorithm) == ref_flow
            assert new.flows_on(handles) == ref_flows
            assert [new.flow_on(h) for h in handles] == ref_flows
            new.reset()

    def test_add_edges_is_equivalent_to_add_edge_loop(self):
        rng = np.random.default_rng(3)
        edges = []
        for _ in range(30):
            u, v = rng.choice(10, size=2, replace=False)
            edges.append((int(u), int(v), int(rng.integers(1, 9))))
        one = FlowNetwork(10)
        loop_handles = [one.add_edge(*e) for e in edges]
        bulk = FlowNetwork(10)
        bulk_handles = bulk.add_edges(edges)
        assert bulk_handles == loop_handles
        assert bulk.max_flow(0, 9) == one.max_flow(0, 9)
        assert bulk.flows_on(bulk_handles) == one.flows_on(loop_handles)


class TestRemotePlanDifferential:
    @pytest.mark.parametrize("seed", [0, 4, 8])
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        chunk_ids = [ChunkId(f"r{i}", 0) for i in range(24)]
        locations = {
            cid: tuple(int(x) for x in rng.choice(9, size=3, replace=False))
            for cid in chunk_ids
        }
        ref_server, ref_load, ref_max, ref_cost = plan_remote_reads_ref(
            chunk_ids, locations
        )
        r = plan_remote_reads(chunk_ids, locations)
        assert r.server_of == ref_server
        assert r.load_per_node == ref_load
        assert r.max_load == ref_max
        assert r.cost == ref_cost


class TestGoldenPins:
    """The committed fixtures must be reproduced byte-for-byte."""

    @pytest.mark.parametrize(
        "filename, builder",
        [
            ("golden_matching_single.json", "build_single"),
            ("golden_matching_multi.json", "build_multi"),
            ("golden_matching_remote.json", "build_remote"),
        ],
    )
    def test_fixture_reproduced(self, filename, builder):
        from .data import make_golden_matching as gen

        produced = gen.dumps(getattr(gen, builder)())
        committed = (DATA / filename).read_text()
        assert produced == committed, (
            f"{filename} no longer reproduced byte-for-byte; if the change "
            "is intentional, regenerate with make_golden_matching.py"
        )


class TestSchedPerfCounters:
    def test_full_round_populates_every_stage(self):
        clear_graph_cache()
        perf = SchedPerf()
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=0)
        data = single_data_workload(8, 6)
        fs.put_dataset(data)
        tasks = tasks_from_dataset(data)
        placement = ProcessPlacement.one_per_node(8)
        for _ in range(3):
            g = graph_from_filesystem(fs, tasks, placement, perf=perf)
            optimize_single_data(g, seed=0, perf=perf)
        assert perf.graph_builds == 1
        assert perf.cache_misses == 1 and perf.cache_hits == 2
        assert perf.graph_edges == g.num_edges
        assert perf.solves == 3
        # First solve runs Dinic; the other two replay the memoised state.
        assert perf.augmentations > 0 and perf.bfs_phases > 0
        assert perf.solve_replays == 2
        assert perf.graph_build_wall > 0 and perf.solve_wall > 0
        clear_graph_cache()

    def test_snapshot_and_reset(self):
        perf = SchedPerf()
        perf.solves = 4
        perf.cache_hits = 3
        snap = perf.snapshot()
        assert snap["solves"] == 4 and snap["cache_hits"] == 3
        assert "solve_replays" in snap
        perf.reset()
        assert perf.solves == 0 and perf.snapshot()["cache_hits"] == 0

    def test_summary_rates(self):
        perf = SchedPerf()
        perf.cache_hits = 3
        perf.cache_misses = 1
        perf.solves = 2
        perf.augmentations = 10
        s = sched_perf_summary(perf)
        assert s["cache_hit_rate"] == pytest.approx(0.75)
        assert s["augmentations_per_solve"] == pytest.approx(5.0)
        # Zero-division guards.
        empty = sched_perf_summary(SchedPerf())
        assert empty["cache_hit_rate"] == 0.0
        assert empty["augmentations_per_solve"] == 0.0


class TestRunResultSchedPerf:
    def test_run_result_carries_and_summarises_sched_perf(self, fs8, placement8):
        from repro.metrics import run_summary

        perf = SchedPerf()
        tasks = tasks_from_dataset(
            single_data_workload(8, 4)
        )
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=3)
        fs.put_dataset(single_data_workload(8, 4))
        g = graph_from_filesystem(fs, tasks, ProcessPlacement.one_per_node(8),
                                  perf=perf, cache=False)
        r = optimize_single_data(g, seed=3, perf=perf)
        run = ParallelReadRun(
            fs, ProcessPlacement.one_per_node(8), tasks,
            StaticSource(r.assignment), seed=3, sched_perf=perf,
        ).run()
        assert run.sched_perf is not None
        assert run.sched_perf["solves"] == 1
        summary = run_summary(run)
        assert summary["sched_perf"]["solves"] == 1
        assert "cache_hit_rate" in summary["sched_perf"]

    def test_sched_perf_defaults_to_none(self, fs8, placement8):
        from repro.metrics import run_summary

        tasks = tasks_from_dataset(single_data_workload(8, 2))
        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=1)
        fs.put_dataset(single_data_workload(8, 2))
        g = graph_from_filesystem(fs, tasks, ProcessPlacement.one_per_node(8),
                                  cache=False)
        r = optimize_single_data(g, seed=1)
        run = ParallelReadRun(
            fs, ProcessPlacement.one_per_node(8), tasks,
            StaticSource(r.assignment), seed=1,
        ).run()
        assert run.sched_perf is None
        assert "sched_perf" not in run_summary(run)
