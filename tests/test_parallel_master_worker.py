"""Tests for the master/worker driver and the irregular compute model."""

import numpy as np
import pytest

from repro.core import DefaultDynamicPolicy, ProcessPlacement, tasks_from_dataset
from repro.core.opass import opass_dynamic_plan
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.parallel.master_worker import irregular_compute_model, run_master_worker


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(spec, seed=23)
    ds = uniform_dataset("d", 40)
    fs.put_dataset(ds)
    return fs, ProcessPlacement.one_per_node(8), tasks_from_dataset(ds)


class TestIrregularComputeModel:
    def test_mean_approximately_right(self):
        model = irregular_compute_model(2.0, cv=0.5, seed=1)
        rng = np.random.default_rng(0)
        samples = [model(0, i, rng) for i in range(4000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_cv_controls_spread(self):
        rng = np.random.default_rng(0)
        tight_model = irregular_compute_model(1.0, cv=0.1, seed=2)
        wide_model = irregular_compute_model(1.0, cv=1.5, seed=2)
        tight = [tight_model(0, i, rng) for i in range(2000)]
        wide = [wide_model(0, i, rng) for i in range(2000)]
        assert np.std(wide) > np.std(tight)

    def test_zero_mean_is_zero(self):
        model = irregular_compute_model(0.0, seed=0)
        rng = np.random.default_rng(0)
        assert model(0, 0, rng) == 0.0

    def test_always_nonnegative(self):
        model = irregular_compute_model(0.5, cv=2.0, seed=3)
        rng = np.random.default_rng(0)
        assert all(model(0, i, rng) >= 0 for i in range(200))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            irregular_compute_model(-1.0)
        with pytest.raises(ValueError):
            irregular_compute_model(1.0, cv=-0.5)

    def test_seeded_reproducible(self):
        rng = np.random.default_rng(0)
        a = [irregular_compute_model(1.0, seed=7)(0, i, rng) for i in range(10)]
        rng = np.random.default_rng(0)
        b = [irregular_compute_model(1.0, seed=7)(0, i, rng) for i in range(10)]
        assert a == b


class TestMasterWorker:
    def test_default_policy_completes_all(self, env):
        fs, placement, tasks = env
        out = run_master_worker(
            fs, placement, tasks, DefaultDynamicPolicy(40, seed=1), seed=0
        )
        assert out.result.tasks_completed == 40
        assert out.dispatched == 40
        assert out.steals == 0

    def test_opass_plan_mostly_local(self, env):
        fs, placement, tasks = env
        plan, _, _ = opass_dynamic_plan(fs, "d", placement)
        out = run_master_worker(fs, placement, tasks, plan, seed=0)
        assert out.result.tasks_completed == 40
        assert out.result.locality_fraction > 0.8
        assert out.dispatched == 40

    def test_irregular_compute_causes_steals(self, env):
        """Heterogeneous task times make fast workers drain their lists and
        steal from slow ones."""
        fs, placement, tasks = env
        plan, _, _ = opass_dynamic_plan(fs, "d", placement)
        compute = irregular_compute_model(1.0, cv=1.5, seed=5)
        out = run_master_worker(fs, placement, tasks, plan,
                                compute_time=compute, seed=0)
        assert out.result.tasks_completed == 40
        assert out.steals > 0

    def test_opass_faster_than_default(self, env):
        fs, placement, tasks = env
        out_default = run_master_worker(
            fs, placement, tasks, DefaultDynamicPolicy(40, seed=1), seed=0
        )
        fs.reset_counters()
        plan, _, _ = opass_dynamic_plan(fs, "d", placement)
        out_opass = run_master_worker(fs, placement, tasks, plan, seed=0)
        assert (
            out_opass.result.io_stats()["avg"] < out_default.result.io_stats()["avg"]
        )
