"""Monte-Carlo validation: simulation agrees with the closed forms."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_local_chunks,
    cdf_served_chunks,
    empirical_cdf,
    empirical_local_chunks,
    empirical_nodes_serving,
    expected_nodes_serving_at_most,
    sample_placement,
    simulate_serve_counts,
)


class TestSamplePlacement:
    def test_shape_and_distinctness(self, rng):
        p = sample_placement(100, 3, 16, rng)
        assert p.shape == (100, 3)
        for row in p:
            assert len(set(row.tolist())) == 3
        assert p.min() >= 0 and p.max() < 16

    def test_insufficient_nodes(self, rng):
        with pytest.raises(ValueError):
            sample_placement(10, 5, 3, rng)


class TestLocalityAgreement:
    def test_empirical_matches_binomial_cdf(self, rng):
        samples = empirical_local_chunks(512, 3, 128, trials=4000, rng=rng)
        for k in (6, 10, 14):
            emp = empirical_cdf(samples, k)
            model = float(cdf_local_chunks(k, 512, 3, 128))
            assert emp == pytest.approx(model, abs=0.03)

    def test_empirical_cdf_vector(self, rng):
        samples = np.array([1, 2, 3, 4])
        cdf = empirical_cdf(samples, np.array([0, 2, 4]))
        assert np.allclose(cdf, [0.0, 0.5, 1.0])


class TestServeAgreement:
    def test_served_counts_sum_to_n(self, rng):
        sample = simulate_serve_counts(512, 3, 128, rng)
        assert sample.served.sum() == 512
        assert sample.stored.sum() == 512 * 3

    def test_empirical_matches_thinned_binomial(self, rng):
        trials = 300
        counts = np.zeros(0)
        at_most_1 = 0.0
        for _ in range(trials):
            s = simulate_serve_counts(512, 3, 128, rng)
            at_most_1 += float(np.sum(s.served <= 1))
        model = expected_nodes_serving_at_most(1, 512, 3, 128)
        assert at_most_1 / trials == pytest.approx(model, rel=0.15)

    def test_empirical_nodes_serving_summary(self, rng):
        out = empirical_nodes_serving(512, 3, 128, trials=100, rng=rng)
        assert set(out) == {"nodes_at_most_1", "nodes_more_than_8", "mean_max_served"}
        # Imbalance: the hottest node serves far above the mean of 4.
        assert out["mean_max_served"] > 8.0
