"""Tests for the flow-based single-data optimizer (§IV-B)."""

import numpy as np
import pytest

from repro.core.assignment import equal_quotas, locality_fraction
from repro.core.bipartite import ProcessPlacement, build_locality_graph, graph_from_filesystem
from repro.core.baselines import rank_interval_assignment
from repro.core.single_data import optimize_single_data
from repro.core.tasks import Task, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, SkewedPlacement, uniform_dataset
from repro.dfs.chunk import MB, ChunkId


def _graph(locations, sizes, num_nodes):
    n = len(locations)
    tasks = [Task(i, (cid,)) for i, cid in enumerate(sorted(locations, key=str))]
    return build_locality_graph(
        tasks, locations, sizes, ProcessPlacement.one_per_node(num_nodes)
    )


class TestSmallCases:
    def test_perfect_matching_found(self):
        """Figure 2(left): naive reads pile on node 0; matching avoids it."""
        locations = {
            ChunkId("a", 0): (0, 1),
            ChunkId("b", 0): (0,),
            ChunkId("c", 0): (0, 1),
        }
        sizes = {cid: MB for cid in locations}
        # 2 processes, 3 tasks -> quotas [2, 1]
        graph = _graph(locations, sizes, 2)
        result = optimize_single_data(graph)
        assert result.full_matching
        assert locality_fraction(result.assignment, graph) == 1.0
        result.assignment.validate(3, quotas=equal_quotas(3, 2))

    def test_unmatchable_task_falls_back(self):
        """A task with no replica on any process node can't be local."""
        locations = {ChunkId("a", 0): (1,)}
        sizes = {ChunkId("a", 0): MB}
        tasks = [Task(0, (ChunkId("a", 0),))]
        graph = build_locality_graph(
            tasks, locations, sizes, ProcessPlacement((0,))
        )
        result = optimize_single_data(graph)
        assert not result.full_matching
        assert result.fallback_tasks == frozenset({0})
        result.assignment.validate(1)

    def test_quota_respected_when_one_node_has_everything(self):
        locations = {ChunkId(f"c{i}", 0): (0,) for i in range(4)}
        sizes = {cid: MB for cid in locations}
        graph = _graph(locations, sizes, 2)
        result = optimize_single_data(graph)
        loads = [len(result.assignment.tasks_of[r]) for r in range(2)]
        assert loads == [2, 2]
        # Only two tasks can be matched locally (node 0 quota).
        assert result.max_flow == 2

    def test_custom_quotas(self):
        locations = {ChunkId(f"c{i}", 0): (0, 1) for i in range(4)}
        sizes = {cid: MB for cid in locations}
        graph = _graph(locations, sizes, 2)
        result = optimize_single_data(graph, quotas=[3, 1])
        assert len(result.assignment.tasks_of[0]) <= 3
        assert result.assignment.num_tasks == 4

    def test_insufficient_quota_rejected(self):
        locations = {ChunkId("a", 0): (0,), ChunkId("b", 0): (0,)}
        sizes = {cid: MB for cid in locations}
        graph = _graph(locations, sizes, 1)
        with pytest.raises(ValueError, match="total quota"):
            optimize_single_data(graph, quotas=[1])

    def test_invalid_args(self):
        locations = {ChunkId("a", 0): (0,)}
        graph = _graph(locations, {ChunkId("a", 0): MB}, 1)
        with pytest.raises(ValueError):
            optimize_single_data(graph, quotas=[1, 1])
        with pytest.raises(ValueError):
            optimize_single_data(graph, quotas=[-1])
        with pytest.raises(ValueError):
            optimize_single_data(graph, capacity_mode="nope")
        with pytest.raises(ValueError):
            optimize_single_data(graph, fallback="nope")


class TestOnFilesystem:
    @pytest.fixture
    def setup(self):
        spec = ClusterSpec.homogeneous(16)
        fs = DistributedFileSystem(spec, seed=5)
        ds = uniform_dataset("d", 160)
        fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(16)
        tasks = tasks_from_dataset(ds)
        graph = graph_from_filesystem(fs, tasks, placement)
        return graph

    def test_beats_rank_interval_baseline(self, setup):
        graph = setup
        result = optimize_single_data(graph)
        base = rank_interval_assignment(160, 16)
        assert locality_fraction(result.assignment, graph) > locality_fraction(
            base, graph
        )

    def test_usually_full_matching_with_r3(self, setup):
        # 10 chunks/process with r=3 virtually always admits a full matching.
        result = optimize_single_data(setup)
        assert result.full_matching
        assert locality_fraction(result.assignment, graph=setup) == 1.0

    def test_equal_loads(self, setup):
        result = optimize_single_data(setup)
        loads = [len(ts) for ts in result.assignment.tasks_of.values()]
        assert all(l == 10 for l in loads)

    def test_algorithms_agree_on_flow_value(self, setup):
        r1 = optimize_single_data(setup, algorithm="dinic")
        r2 = optimize_single_data(setup, algorithm="edmonds_karp")
        assert r1.max_flow == r2.max_flow

    def test_bytes_mode_equivalent_on_uniform_files(self, setup):
        r_unit = optimize_single_data(setup, capacity_mode="unit")
        r_bytes = optimize_single_data(setup, capacity_mode="bytes")
        assert locality_fraction(r_unit.assignment, setup) == pytest.approx(
            locality_fraction(r_bytes.assignment, setup)
        )
        r_bytes.assignment.validate(160, quotas=equal_quotas(160, 16))

    def test_fallback_policies_both_complete(self, setup):
        for policy in ("random", "least_loaded"):
            result = optimize_single_data(setup, fallback=policy)
            result.assignment.validate(160, quotas=equal_quotas(160, 16))

    def test_deterministic_given_seed(self, setup):
        a = optimize_single_data(setup, seed=3).assignment.tasks_of
        b = optimize_single_data(setup, seed=3).assignment.tasks_of
        assert a == b


class TestSkewedLayouts:
    def test_skew_forces_fallback_but_stays_valid(self):
        """§IV-B: node addition makes full matching impossible; the random
        fallback still fills every quota."""
        spec = ClusterSpec.homogeneous(16)
        fs = DistributedFileSystem(
            spec, seed=5, placement=SkewedPlacement(excluded_fraction=0.5)
        )
        ds = uniform_dataset("d", 160)
        fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(16)
        graph = graph_from_filesystem(fs, tasks_from_dataset(ds), placement)
        result = optimize_single_data(graph)
        assert not result.full_matching
        assert len(result.fallback_tasks) > 0
        result.assignment.validate(160, quotas=equal_quotas(160, 16))
        # Excluded nodes have no local data at all.
        assert graph.local_bytes_of_process(15) == 0

    def test_max_flow_is_optimal_vs_networkx(self):
        import networkx as nx

        spec = ClusterSpec.homogeneous(8)
        fs = DistributedFileSystem(spec, seed=9)
        ds = uniform_dataset("d", 40)
        fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(8)
        graph = graph_from_filesystem(fs, tasks_from_dataset(ds), placement)
        result = optimize_single_data(graph)

        g = nx.DiGraph()
        quotas = equal_quotas(40, 8)
        for r in range(8):
            g.add_edge("s", f"p{r}", capacity=quotas[r])
            for t in graph.edges_of_process(r):
                g.add_edge(f"p{r}", f"f{t}", capacity=1)
        for t in range(40):
            g.add_edge(f"f{t}", "t", capacity=1)
        assert result.max_flow == nx.maximum_flow_value(g, "s", "t")
