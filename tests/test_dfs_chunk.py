"""Unit tests for chunk/file/dataset value types."""

import pytest

from repro.dfs.chunk import (
    DEFAULT_CHUNK_SIZE,
    MB,
    Chunk,
    ChunkId,
    Dataset,
    dataset_from_sizes,
    make_file,
    uniform_dataset,
)


class TestChunk:
    def test_chunk_id_identity(self):
        a = ChunkId("f", 0)
        b = ChunkId("f", 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_chunk_id_distinct_by_index(self):
        assert ChunkId("f", 0) != ChunkId("f", 1)

    def test_chunk_requires_positive_size(self):
        with pytest.raises(ValueError):
            Chunk(ChunkId("f", 0), 0)
        with pytest.raises(ValueError):
            Chunk(ChunkId("f", 0), -5)

    def test_chunk_str(self):
        assert str(ChunkId("f", 3)) == "f#3"


class TestMakeFile:
    def test_exact_multiple_splits_evenly(self):
        meta = make_file("f", 4 * DEFAULT_CHUNK_SIZE)
        assert meta.num_chunks == 4
        assert all(c.size == DEFAULT_CHUNK_SIZE for c in meta.chunks)

    def test_tail_chunk_smaller(self):
        meta = make_file("f", DEFAULT_CHUNK_SIZE + 1)
        assert meta.num_chunks == 2
        assert meta.chunks[0].size == DEFAULT_CHUNK_SIZE
        assert meta.chunks[1].size == 1

    def test_small_file_single_chunk(self):
        meta = make_file("f", 10)
        assert meta.num_chunks == 1
        assert meta.chunks[0].size == 10

    def test_total_size_preserved(self):
        size = 3 * DEFAULT_CHUNK_SIZE + 12345
        assert make_file("f", size).size == size

    def test_chunk_indices_sequential(self):
        meta = make_file("f", 5 * DEFAULT_CHUNK_SIZE)
        assert [c.id.index for c in meta.chunks] == [0, 1, 2, 3, 4]
        assert all(c.id.file == "f" for c in meta.chunks)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            make_file("f", 0)

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            make_file("f", 100, chunk_size=0)

    def test_custom_chunk_size(self):
        meta = make_file("f", 100, chunk_size=30)
        assert [c.size for c in meta.chunks] == [30, 30, 30, 10]


class TestDataset:
    def test_add_file_and_totals(self):
        ds = Dataset("d")
        ds.add_file(make_file("d/a", 2 * MB, chunk_size=MB))
        ds.add_file(make_file("d/b", 3 * MB, chunk_size=MB))
        assert ds.size == 5 * MB
        assert ds.num_chunks == 5

    def test_duplicate_file_rejected(self):
        ds = Dataset("d")
        ds.add_file(make_file("d/a", MB))
        with pytest.raises(ValueError, match="duplicate"):
            ds.add_file(make_file("d/a", MB))

    def test_iter_chunks_order(self):
        ds = Dataset("d")
        ds.add_file(make_file("d/a", 2 * MB, chunk_size=MB))
        ds.add_file(make_file("d/b", MB, chunk_size=MB))
        ids = [c.id for c in ds.iter_chunks()]
        assert ids == [ChunkId("d/a", 0), ChunkId("d/a", 1), ChunkId("d/b", 0)]

    def test_chunk_ids_matches_iter(self):
        ds = uniform_dataset("d", 4, chunk_size=MB)
        assert ds.chunk_ids() == [c.id for c in ds.iter_chunks()]


class TestUniformDataset:
    def test_shape(self):
        ds = uniform_dataset("u", 10, chunk_size=MB)
        assert len(ds.files) == 10
        assert ds.num_chunks == 10
        assert all(f.num_chunks == 1 for f in ds.files)
        assert ds.size == 10 * MB

    def test_file_names_unique_and_ordered(self):
        ds = uniform_dataset("u", 3)
        names = [f.name for f in ds.files]
        assert names == sorted(names)
        assert len(set(names)) == 3

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            uniform_dataset("u", 0)


class TestDatasetFromSizes:
    def test_sizes_respected(self):
        ds = dataset_from_sizes("d", [MB, 2 * MB, 3 * MB])
        assert [f.size for f in ds.files] == [MB, 2 * MB, 3 * MB]

    def test_large_file_multi_chunk(self):
        ds = dataset_from_sizes("d", [DEFAULT_CHUNK_SIZE * 2 + 1])
        assert ds.files[0].num_chunks == 3
