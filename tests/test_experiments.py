"""Tests for the typed experiments API (small scale)."""

import pytest

from repro.experiments import (
    matching_scalability_sweep,
    measure_matching_overhead,
    run_dynamic_comparison,
    run_motivating_experiment,
    run_multi_data_comparison,
    run_paraview_comparison,
    run_single_data_comparison,
    run_sweep,
)


class TestSingleData:
    def test_comparison_shape(self):
        cmp = run_single_data_comparison(8, chunks_per_process=4, seed=0)
        assert cmp.num_nodes == 8
        assert cmp.base.tasks_completed == 32
        assert cmp.opass.tasks_completed == 32
        assert cmp.base_served_mb.shape == (8,)
        assert cmp.opass.locality_fraction > cmp.base.locality_fraction

    def test_same_seed_same_outcome(self):
        a = run_single_data_comparison(8, chunks_per_process=4, seed=3)
        b = run_single_data_comparison(8, chunks_per_process=4, seed=3)
        assert a.base.makespan == b.base.makespan
        assert (a.opass_served_mb == b.opass_served_mb).all()

    def test_sweep_structure(self):
        out = run_sweep(sizes=(4, 8), chunks_per_process=2, seeds=(0, 1))
        assert set(out) == {4, 8}
        assert all(len(v) == 2 for v in out.values())

    def test_motivation(self):
        out = run_motivating_experiment(num_nodes=8, num_chunks=16, seed=0)
        assert out.run.tasks_completed == 16
        assert out.chunks_served.sum() == 16


class TestMultiData:
    def test_comparison(self):
        cmp = run_multi_data_comparison(num_nodes=8, num_tasks=24, seed=0)
        assert cmp.base.result.tasks_completed == 24
        assert cmp.io_improvement > 1.0
        assert cmp.base_served_mb.sum() == pytest.approx(
            cmp.opass_served_mb.sum()
        )

    def test_custom_input_sizes(self):
        cmp = run_multi_data_comparison(
            num_nodes=4, num_tasks=8, input_sizes_mb=(5, 5), seed=0
        )
        assert len(cmp.base.result.records) == 16  # 2 inputs per task


class TestDynamic:
    def test_comparison(self):
        cmp = run_dynamic_comparison(
            num_nodes=8, num_fragments=24, compute_mean=0.1, seed=0
        )
        assert cmp.base.result.tasks_completed == 24
        assert cmp.opass.result.tasks_completed == 24
        assert cmp.io_improvement > 1.0


class TestParaView:
    def test_comparison(self):
        cmp = run_paraview_comparison(num_nodes=8, num_datasets=16, seed=0)
        assert cmp.stock.run.tasks_completed == 16
        assert cmp.opass.avg_call_time <= cmp.stock.avg_call_time
        assert cmp.time_saved >= 0


class TestOverhead:
    def test_overhead_fraction(self):
        out = measure_matching_overhead(8, chunks_per_process=4, seed=0)
        assert out.matching_seconds > 0
        assert out.access_seconds > 0
        assert out.overhead_fraction < 0.05  # generous at toy scale

    def test_scalability_rows(self):
        rows = matching_scalability_sweep(sizes=(4, 8), chunks_per_process=2)
        assert [r.num_nodes for r in rows] == [4, 8]
        assert all(r.matching_ms >= 0 for r in rows)
        assert rows[1].num_edges > rows[0].num_edges


class TestRepetition:
    def test_repeat_aggregates(self):
        from repro.experiments import repeat

        out = repeat(
            lambda seed: seed * 2,
            {"double": lambda v: v, "half": lambda v: v / 4},
            seeds=(1, 2, 3),
        )
        assert out.metrics["double"].mean == pytest.approx(4.0)
        assert out.metrics["double"].min == 2.0
        assert out.metrics["double"].max == 6.0
        assert out.metrics["double"].n == 3
        assert out.metrics["half"].mean == pytest.approx(1.0)
        assert out.outcomes == [2, 4, 6]

    def test_repeat_validation(self):
        from repro.experiments import repeat

        with pytest.raises(ValueError):
            repeat(lambda s: s, {"x": float}, seeds=())
        with pytest.raises(ValueError):
            repeat(lambda s: s, {}, seeds=(1,))

    def test_paraview_repeated_small(self):
        from repro.experiments import run_paraview_repeated

        out = run_paraview_repeated(num_nodes=8, num_datasets=16, seeds=(0, 1))
        m = out.metrics
        assert m["stock_total"].n == 2
        # Opass totals below stock totals in every replication.
        assert m["opass_total"].max <= m["stock_total"].min
        assert m["opass_avg_call"].mean < m["stock_avg_call"].mean
