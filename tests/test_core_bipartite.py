"""Tests for the locality graph (§IV-A, Figure 4)."""

import pytest

from repro.core.bipartite import (
    LocalityGraph,
    ProcessPlacement,
    build_locality_graph,
    graph_from_filesystem,
)
from repro.core.tasks import Task, tasks_from_dataset
from repro.dfs.chunk import MB, ChunkId


class TestProcessPlacement:
    def test_one_per_node(self):
        p = ProcessPlacement.one_per_node(4)
        assert p.num_processes == 4
        assert [p.node_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_k_per_node(self):
        p = ProcessPlacement.k_per_node(3, 2)
        assert p.num_processes == 6
        assert p.nodes == (0, 0, 1, 1, 2, 2)
        assert p.ranks_on_node() == {0: [0, 1], 1: [2, 3], 2: [4, 5]}

    def test_invalid(self):
        with pytest.raises(ValueError):
            ProcessPlacement(())
        with pytest.raises(ValueError):
            ProcessPlacement((0, -1))
        with pytest.raises(ValueError):
            ProcessPlacement.one_per_node(0)
        with pytest.raises(ValueError):
            ProcessPlacement.k_per_node(2, 0)

    def test_node_of_range(self):
        p = ProcessPlacement.one_per_node(2)
        with pytest.raises(KeyError):
            p.node_of(5)


def _tiny_graph():
    """The Figure-2(left)-style scenario: 2 nodes, 3 chunks."""
    tasks = [
        Task(0, (ChunkId("a", 0),)),
        Task(1, (ChunkId("b", 0),)),
        Task(2, (ChunkId("c", 0),)),
    ]
    locations = {
        ChunkId("a", 0): (0,),
        ChunkId("b", 0): (0, 1),
        ChunkId("c", 0): (1,),
    }
    sizes = {cid: MB for cid in locations}
    placement = ProcessPlacement.one_per_node(2)
    return build_locality_graph(tasks, locations, sizes, placement), tasks


class TestBuildGraph:
    def test_edges_follow_colocations(self):
        graph, _ = _tiny_graph()
        assert graph.edge_weight(0, 0) == MB  # a on node 0
        assert graph.edge_weight(0, 1) == MB  # b replica on node 0
        assert graph.edge_weight(0, 2) == 0  # c not on node 0
        assert graph.edge_weight(1, 2) == MB

    def test_ranks_of_task(self):
        graph, _ = _tiny_graph()
        assert graph.ranks_of_task(1) == [0, 1]
        assert graph.ranks_of_task(0) == [0]

    def test_counts(self):
        graph, _ = _tiny_graph()
        assert graph.num_processes == 2
        assert graph.num_tasks == 3
        assert graph.num_edges == 4

    def test_task_bytes_and_total(self):
        graph, _ = _tiny_graph()
        assert graph.task_bytes(0) == MB
        assert graph.total_bytes() == 3 * MB

    def test_local_bytes_of_process(self):
        graph, _ = _tiny_graph()
        assert graph.local_bytes_of_process(0) == 2 * MB
        assert graph.local_bytes_of_process(1) == 2 * MB

    def test_multi_input_weights_accumulate(self):
        tasks = [Task(0, (ChunkId("a", 0), ChunkId("b", 0)))]
        locations = {ChunkId("a", 0): (0,), ChunkId("b", 0): (0, 1)}
        sizes = {ChunkId("a", 0): 3 * MB, ChunkId("b", 0): 2 * MB}
        graph = build_locality_graph(
            tasks, locations, sizes, ProcessPlacement.one_per_node(2)
        )
        assert graph.edge_weight(0, 0) == 5 * MB
        assert graph.edge_weight(1, 0) == 2 * MB

    def test_multiple_ranks_per_node_share_edges(self):
        tasks = [Task(0, (ChunkId("a", 0),))]
        locations = {ChunkId("a", 0): (0,)}
        sizes = {ChunkId("a", 0): MB}
        graph = build_locality_graph(
            tasks, locations, sizes, ProcessPlacement.k_per_node(1, 2)
        )
        assert graph.edge_weight(0, 0) == MB
        assert graph.edge_weight(1, 0) == MB

    def test_missing_layout_rejected(self):
        tasks = [Task(0, (ChunkId("a", 0),))]
        with pytest.raises(KeyError):
            build_locality_graph(tasks, {}, {ChunkId("a", 0): MB},
                                 ProcessPlacement.one_per_node(1))

    def test_missing_size_rejected(self):
        tasks = [Task(0, (ChunkId("a", 0),))]
        with pytest.raises(KeyError):
            build_locality_graph(tasks, {ChunkId("a", 0): (0,)}, {},
                                 ProcessPlacement.one_per_node(1))

    def test_nonsequential_task_ids_rejected(self):
        tasks = [Task(1, (ChunkId("a", 0),))]
        with pytest.raises(ValueError):
            build_locality_graph(tasks, {ChunkId("a", 0): (0,)},
                                 {ChunkId("a", 0): MB},
                                 ProcessPlacement.one_per_node(1))


class TestGraphFromFilesystem:
    def test_consistent_with_namenode(self, fs8, placement8):
        tasks = tasks_from_dataset(fs8.dataset("data"))
        graph = graph_from_filesystem(fs8, tasks, placement8)
        layout = fs8.layout_snapshot()
        for t in tasks:
            cid = t.inputs[0]
            for node in layout[cid]:
                assert graph.edge_weight(node, t.task_id) == fs8.chunk(cid).size

    def test_every_task_has_r_edges(self, fs8, placement8):
        """With one process per node, each single-chunk task has exactly r edges."""
        tasks = tasks_from_dataset(fs8.dataset("data"))
        graph = graph_from_filesystem(fs8, tasks, placement8)
        for t in tasks:
            assert len(graph.ranks_of_task(t.task_id)) == fs8.replication
