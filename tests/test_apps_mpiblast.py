"""Tests for the mpiBLAST dynamic application model."""

import pytest

from repro.apps.mpiblast import MpiBlastConfig, MpiBlastRun
from repro.core import DefaultDynamicPolicy, DynamicPlan, ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.workloads import gene_database


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(spec, seed=37)
    db = gene_database(40)
    fs.put_dataset(db)
    return fs, ProcessPlacement.one_per_node(8), db


class TestConfig:
    def test_defaults(self):
        c = MpiBlastConfig()
        assert c.dispatch_mode == "random"

    def test_invalid(self):
        with pytest.raises(ValueError):
            MpiBlastConfig(compute_mean=-1)
        with pytest.raises(ValueError):
            MpiBlastConfig(dispatch_mode="lifo")


class TestPolicyConstruction:
    def test_default_policy_type(self, env):
        fs, placement, db = env
        run = MpiBlastRun(fs, placement, db, use_opass=False)
        assert isinstance(run.build_policy(), DefaultDynamicPolicy)

    def test_opass_policy_type(self, env):
        fs, placement, db = env
        run = MpiBlastRun(fs, placement, db, use_opass=True)
        plan = run.build_policy()
        assert isinstance(plan, DynamicPlan)
        assert plan.remaining == 40


class TestExecution:
    def test_completes_all_fragments(self, env):
        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        assert out.result.tasks_completed == 40

    def test_opass_improves_io(self, env):
        fs, placement, db = env
        base = MpiBlastRun(fs, placement, db, use_opass=False).execute(seed=1)
        fs.reset_counters()
        opass = MpiBlastRun(fs, placement, db, use_opass=True).execute(seed=1)
        assert opass.result.io_stats()["avg"] < base.result.io_stats()["avg"]
        assert opass.result.locality_fraction > base.result.locality_fraction

    def test_compute_times_identical_across_policies(self, env):
        """Same seed -> same compute-time stream regardless of policy, so
        makespan differences are attributable to I/O."""
        fs, placement, db = env
        cfg = MpiBlastConfig(compute_mean=0.0)
        a = MpiBlastRun(fs, placement, db, config=cfg).execute(seed=1)
        fs.reset_counters()
        b = MpiBlastRun(fs, placement, db, config=cfg, use_opass=True).execute(seed=1)
        assert a.result.tasks_completed == b.result.tasks_completed

    def test_fifo_dispatch_mode(self, env):
        fs, placement, db = env
        cfg = MpiBlastConfig(dispatch_mode="fifo")
        out = MpiBlastRun(fs, placement, db, config=cfg).execute(seed=1)
        assert out.result.tasks_completed == 40


class TestProtocol:
    def test_replay_covers_every_fragment(self, env):
        from repro.apps.mpiblast import replay_protocol

        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        report = replay_protocol(out, placement, seed=1)
        assert report.fragments_scanned == 40
        assert sorted(r.task_id for r in report.results) == list(range(40))
        assert report.total_hits == sum(r.hits for r in report.results)

    def test_message_count(self, env):
        from repro.apps.mpiblast import replay_protocol

        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        report = replay_protocol(out, placement, seed=1)
        # broadcast (m-1) + assign (n) + result (n) + shutdown (m-1)
        m, n = placement.num_processes, 40
        assert report.messages_sent == 2 * (m - 1) + 2 * n

    def test_hits_scale_with_rate(self, env):
        from repro.apps.mpiblast import replay_protocol

        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        low = replay_protocol(out, placement, hits_per_mb=0.1, seed=2)
        high = replay_protocol(out, placement, hits_per_mb=5.0, seed=2)
        assert high.total_hits > low.total_hits * 10

    def test_results_carry_scan_times(self, env):
        from repro.apps.mpiblast import replay_protocol

        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        report = replay_protocol(out, placement, seed=1)
        durations = sorted(r.duration for r in out.result.records)
        assert sorted(r.scan_time for r in report.results) == durations

    def test_master_rank_validated(self, env):
        from repro.apps.mpiblast import MpiBlastProtocol
        from repro.parallel import SimComm

        _, placement, _ = env
        with pytest.raises(ValueError):
            MpiBlastProtocol(SimComm(placement), master_rank=99)

    def test_mailboxes_drained(self, env):
        """After a full replay no message is left undelivered."""
        from repro.apps.mpiblast import replay_protocol
        from repro.parallel import SimComm

        fs, placement, db = env
        out = MpiBlastRun(fs, placement, db).execute(seed=1)
        replay_protocol(out, placement, seed=1)
        # replay_protocol uses its own comm internally; re-run the replay
        # steps on a fresh comm and verify emptiness via a fresh instance.
        comm = SimComm(placement)
        assert all(comm.pending(r) == 0 for r in range(comm.size))
