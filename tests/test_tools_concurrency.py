"""Tests for the OPS200 concurrency/float-identity pass (`opass-verify`).

Fixture snippets live in ``tests/data/lint/`` as violating/clean pairs,
same convention as OPS101–OPS103.  The OPS201/OPS202/OPS204 bad fixtures
put the defect two call levels below the site that flags, so only the
interprocedural reachability walk can catch them.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.tools.api import ALL_RULES
from repro.tools.cache import AnalysisCache, CacheStats
from repro.tools.concurrency import CONCURRENCY_RULES, worker_reachable
from repro.tools.config import (
    DEFAULT_WALLCLOCK_ALLOW,
    LintConfig,
    config_from_table,
    load_config,
)
from repro.tools.model import parse_reassoc_pragmas
from repro.tools.sarif import to_sarif
from repro.tools.summaries import LocalSummary, summarize_module
from repro.tools.verify import (
    EXIT_OK,
    EXIT_VIOLATIONS,
    _changed_files,
    main,
    verify_paths,
    verify_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint"

CONCURRENCY_RULE_IDS = ("OPS201", "OPS202", "OPS203", "OPS204")


def verify_fixture(name: str):
    path = FIXTURES / f"{name}.py"
    return verify_source(path.read_text(encoding="utf-8"), path=str(path))


def rules_in(report):
    return {v.rule for v in report.violations}


# -- fixture pairs -----------------------------------------------------------


class TestFixturePairs:
    @pytest.mark.parametrize(
        "name, rule",
        [
            ("ops201_bad", "OPS201"),
            ("ops201_rng_bad", "OPS201"),
            ("ops202_bad", "OPS202"),
            ("ops202_overlap_bad", "OPS202"),
            ("ops203_bad", "OPS203"),
            ("ops204_bad", "OPS204"),
        ],
    )
    def test_bad_fixture_trips_exactly_its_rule(self, name, rule):
        report = verify_fixture(name)
        assert rules_in(report) == {rule}, report.render()

    @pytest.mark.parametrize("rule", CONCURRENCY_RULE_IDS)
    def test_clean_fixture_is_clean(self, rule):
        report = verify_fixture(f"{rule.lower()}_ok")
        assert report.ok, report.render()

    def test_rule_table_registered(self):
        assert set(CONCURRENCY_RULE_IDS) == set(CONCURRENCY_RULES)
        assert set(CONCURRENCY_RULES) <= set(ALL_RULES)


# -- interprocedural depth ---------------------------------------------------


class TestInterproceduralDepth:
    """The defect sits ≥2 call levels from the flagged site."""

    def test_ops201_names_the_capture_chain(self):
        report = verify_fixture("ops201_bad")
        # flagged at the entrypoint's def line, naming the chain through
        # _handle down to _audit
        assert {v.line for v in report.violations} == {12}, report.render()
        msgs = [v.message for v in report.violations]
        assert any("_handle" in m and "_audit" in m for m in msgs), msgs
        assert any("opens a file handle" in m for m in msgs), msgs
        assert any("rebinds module global(s) _JOBS" in m for m in msgs), msgs

    def test_ops201_rng_machinery_two_levels_down(self):
        report = verify_fixture("ops201_rng_bad")
        msgs = [v.message for v in report.violations]
        assert any("live RNG machinery" in m and "_draw" in m for m in msgs), msgs

    def test_ops202_write_sites_two_levels_below_entrypoint(self):
        report = verify_fixture("ops202_bad")
        by_line = {v.line: v.message for v in report.violations}
        assert 27 in by_line and "parameter 'job'" in by_line[27], by_line
        assert 28 in by_line and "parameter 'shm'" in by_line[28], by_line
        assert all("worker-reachable via" in m for m in by_line.values())

    def test_ops202_overlapping_views_flag_the_written_one(self):
        report = verify_fixture("ops202_overlap_bad")
        assert len(report.violations) == 1, report.render()
        assert "overlaps another declared view" in report.violations[0].message

    def test_ops204_chain_through_sync_callees(self):
        report = verify_fixture("ops204_bad")
        msgs = {v.line: v.message for v in report.violations}
        # the call site in the async body flags, naming the sync chain
        assert any(
            "_commit" in m and "_flush" in m and "time.sleep" in m
            for m in msgs.values()
        ), msgs
        # direct blocking I/O in an async body flags at its own line
        assert any("blocks the event loop" in m for m in msgs.values()), msgs


# -- rule specifics ----------------------------------------------------------


class TestOPS203:
    def test_dtype_int_division_and_reduction_all_flag(self):
        report = verify_fixture("ops203_bad")
        msgs = [v.message for v in report.violations]
        assert any("dtype 'float32'" in m for m in msgs), msgs
        assert any("reassociating reduction" in m for m in msgs), msgs
        assert any("int/int true division" in m for m in msgs), msgs

    def test_rules_only_fire_in_registered_kernel_modules(self):
        source = (FIXTURES / "ops203_bad.py").read_text(encoding="utf-8")
        relocated = source.replace(
            "module=repro.simulate.vectorized", "module=repro.simulate.other"
        )
        report = verify_source(relocated, path="<relocated>")
        assert report.ok, report.render()

    def test_reassoc_pragma_without_reason_is_ops000(self):
        source = (
            "# opass-lint: module=repro.simulate.vectorized\n"
            "import numpy as np\n"
            "def f(xs):\n"
            "    return np.sum(xs)  # opass: reassoc-ok\n"
        )
        report = verify_source(source, path="<s>")
        # the malformed pragma is reported AND does not waive the reduction
        assert rules_in(report) == {"OPS000", "OPS203"}, report.render()
        msgs = [v.message for v in report.violations]
        assert any("missing reason" in m for m in msgs), msgs

    def test_parse_reassoc_pragmas_roundtrip(self):
        lines, errors = parse_reassoc_pragmas(
            "x = 1\ny = s.sum()  # opass: reassoc-ok -- exact\nz = 2\n", "<s>"
        )
        assert lines == {2} and errors == []


class TestOPS202:
    def test_constructor_self_writes_are_exempt(self):
        source = (
            "# opass-lint: module=repro.parallel.pool\n"
            "class Box:\n"
            "    def __init__(self, v):\n"
            "        self.v = v\n"
            "def _worker_main(conn):\n"
            "    return Box(conn.recv())\n"
        )
        report = verify_source(source, path="<s>")
        assert report.ok, report.render()

    def test_local_scratch_writes_are_allowed(self):
        report = verify_fixture("ops202_ok")
        assert report.ok, report.render()


class TestOPS204:
    def test_zero_arg_join_flags_but_str_join_does_not(self):
        source = (
            "# opass-lint: module=repro.simulate.svc\n"
            "async def a(pool, parts):\n"
            "    pool.join()\n"
            "    return ','.join(parts)\n"
        )
        report = verify_source(source, path="<s>")
        assert len(report.violations) == 1, report.render()
        assert "'.join()' may block" in report.violations[0].message


class TestReachability:
    def test_worker_reachable_follows_confident_edges_only(self):
        source = (
            "# opass-lint: module=repro.parallel.pool\n"
            "def _worker_main(conn):\n"
            "    helper(conn.recv())\n"
            "def helper(x):\n"
            "    return x\n"
            "def unrelated():\n"
            "    return 1\n"
        )
        from repro.tools.callgraph import Project, parse_module
        from repro.tools.summaries import resolve_summaries

        decl = parse_module(source, path="<s>")
        project = Project()
        project.add_module(decl)
        local = {
            f"{decl.module}.{n}": s
            for n, s in summarize_module(decl).items()
        }
        summaries = resolve_summaries(project, local)
        reach = worker_reachable(summaries, LintConfig())
        assert "repro.parallel.pool._worker_main" in reach
        assert "repro.parallel.pool.helper" in reach
        assert "repro.parallel.pool.unrelated" not in reach
        # chains start at the entrypoint
        assert reach["repro.parallel.pool.helper"][0].endswith("_worker_main")

    def test_global_writes_summary_roundtrips(self):
        from repro.tools.callgraph import parse_module

        decl = parse_module(
            "_N = 0\ndef f():\n    global _N\n    _N = _N + 1\n", path="<s>"
        )
        summary = summarize_module(decl)["f"]
        assert summary.global_writes == ["_N"]
        assert LocalSummary.from_dict(summary.to_dict()).global_writes == ["_N"]


# -- real tree ---------------------------------------------------------------


class TestRealTree:
    def test_src_is_clean_under_the_concurrency_pass(self):
        report = verify_paths([REPO_ROOT / "src"])
        assert report.ok, report.render()

    def test_pool_slice_reuse_suppression_is_pinned(self):
        # the one OPS202 suppression in the tree: _solve_descs writes
        # rates over the dead caps slot.  If the suppression (or its
        # reason) disappears, this test localizes the decision.
        report = verify_paths([REPO_ROOT / "src" / "repro" / "parallel" / "pool.py"])
        assert report.ok, report.render()
        ops202 = [v for v in report.suppressed if v.rule == "OPS202"]
        assert len(ops202) == 1, [v.render() for v in report.suppressed]
        assert "dead caps slot" in (ops202[0].reason or "")

    def test_kernel_reassoc_waivers_present(self):
        for rel in (
            ("src", "repro", "simulate", "vectorized.py"),
            ("src", "repro", "core", "flownetwork.py"),
        ):
            source = Path(REPO_ROOT, *rel).read_text(encoding="utf-8")
            lines, errors = parse_reassoc_pragmas(source, str(Path(*rel)))
            assert lines, f"expected reassoc-ok waivers in {rel}"
            assert errors == []


# -- config ------------------------------------------------------------------


class TestConfig:
    def test_wallclock_allow_has_a_single_source_of_truth(self):
        import tomllib

        pyproject = REPO_ROOT / "pyproject.toml"
        table = tomllib.loads(pyproject.read_text(encoding="utf-8"))["tool"][
            "opass-lint"
        ]
        # not mirrored in pyproject: code default is the only source
        assert "wallclock-allow" not in table
        assert load_config(pyproject).wallclock_allow == DEFAULT_WALLCLOCK_ALLOW
        assert LintConfig().wallclock_allow == DEFAULT_WALLCLOCK_ALLOW

    def test_concurrency_registries_configurable(self):
        cfg = config_from_table(
            {
                "worker-entrypoints": ["repro.apps.workers.run"],
                "kernel-modules": ["repro.core.kernels"],
                "shared-view-factories": ["numpy.frombuffer", "repro.shm.view"],
            }
        )
        assert cfg.worker_entrypoints == ("repro.apps.workers.run",)
        assert cfg.kernel_modules == ("repro.core.kernels",)
        assert "repro.shm.view" in cfg.shared_view_factories

    def test_registry_changes_alter_the_fingerprint(self):
        base = LintConfig()
        other = config_from_table({"kernel-modules": ["repro.other"]})
        assert base.fingerprint() != other.fingerprint()

    def test_scoping_can_disable_a_concurrency_rule(self):
        source = (FIXTURES / "ops201_bad.py").read_text(encoding="utf-8")
        cfg = config_from_table({"scopes": {"OPS201": ["nonexistent"]}})
        report = verify_source(source, path="<s>", config=cfg)
        assert report.ok, report.render()


# -- outputs and cache -------------------------------------------------------


class TestOutputsAndCache:
    def test_sarif_rule_table_covers_the_ops200_series(self):
        report = verify_fixture("ops202_bad")
        sarif = to_sarif(report)
        rules = {
            r["id"]: r
            for r in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        for rule in CONCURRENCY_RULE_IDS:
            assert rule in rules
        results = sarif["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"OPS202"}

    def test_list_rules_includes_concurrency(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule in CONCURRENCY_RULE_IDS:
            assert rule in out

    def test_concurrency_findings_cached_and_replayed(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        for name in ("ops201_bad", "ops202_bad"):
            (tree / f"{name}.py").write_text(
                (FIXTURES / f"{name}.py").read_text(encoding="utf-8"),
                encoding="utf-8",
            )
        # distinct module names so the two files don't collide
        text = (tree / "ops202_bad.py").read_text(encoding="utf-8")
        (tree / "ops202_bad.py").write_text(
            text.replace("module=repro.parallel.pool", "module=repro.parallel.alt"),
            encoding="utf-8",
        )

        cold_stats = CacheStats()
        cold = verify_paths(
            [tree], cache=AnalysisCache(tmp_path / "cache", cold_stats)
        )
        warm_stats = CacheStats()
        warm = verify_paths(
            [tree], cache=AnalysisCache(tmp_path / "cache", warm_stats)
        )
        assert cold_stats.check_misses == 2 and warm_stats.check_misses == 0
        assert warm_stats.summary_misses == 0
        assert [v.render() for v in warm.violations] == [
            v.render() for v in cold.violations
        ]
        assert "OPS201" in rules_in(warm)

    def test_cli_exit_codes_cover_concurrency_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            (FIXTURES / "ops201_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert main([str(bad), "--no-cache", "--format", "json"]) == EXIT_VIOLATIONS
        data = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in data["violations"]} == {"OPS201"}


# -- --changed robustness ----------------------------------------------------


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestChangedRobustness:
    def test_unborn_head_counts_tracked_and_untracked_files(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        _git(repo, "init", "-q")
        (repo / "tracked.py").write_text("x = 1\n", encoding="utf-8")
        _git(repo, "add", "tracked.py")
        (repo / "untracked.py").write_text("y = 2\n", encoding="utf-8")
        changed = _changed_files(repo)
        assert changed is not None
        names = {p.name for p in changed}
        assert {"tracked.py", "untracked.py"} <= names

    def test_detached_head_still_diffs(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        _git(repo, "init", "-q")
        (repo / "a.py").write_text("a = 1\n", encoding="utf-8")
        _git(repo, "add", "a.py")
        _git(repo, "commit", "-q", "-m", "c1")
        _git(repo, "checkout", "-q", "--detach", "HEAD")
        (repo / "a.py").write_text("a = 2\n", encoding="utf-8")
        changed = _changed_files(repo)
        assert changed is not None
        assert {p.name for p in changed} == {"a.py"}

    def test_changed_flag_works_without_any_commit(self, tmp_path, capsys):
        repo = tmp_path / "repo"
        repo.mkdir()
        _git(repo, "init", "-q")
        clean = repo / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        _git(repo, "add", "clean.py")
        assert main([str(clean), "--no-cache", "--changed"]) == EXIT_OK
