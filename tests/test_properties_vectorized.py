"""Differential fuzz: flat/vectorized water-filling kernels vs the reference.

The kernels in ``repro.simulate.vectorized`` claim *bit-for-bit* equality
with ``allocate_rates`` run on the same component — not approximate
equality.  Every test here asserts ``==`` on the raw floats (and equality
of iteration counts), across the regimes where float rounding could
plausibly diverge: rate-capped flows frozen in the 1e-12 cap window,
components engineered to produce float ties, singleton components (the
closed-form path), resources at the concurrency threshold, and sizes
straddling the scalar/numpy dispatch cutoff.

A second group pins the allocator- and engine-level contracts: a
``ComponentAllocator(kernel="auto")`` tracks ``kernel="reference"``
exactly through add/remove churn, and a pool-backed engine run is
byte-identical to a pool-free one on the golden seeds.
"""

from __future__ import annotations

import random

import pytest

from repro.simulate.components import ComponentAllocator
from repro.simulate.flows import Flow, allocate_rates
from repro.simulate.resources import Resource
from repro.simulate.vectorized import (
    VECTOR_MIN_FLOWS,
    lower_component,
    res_entry,
    solve_component,
    solve_lowered,
    solve_single,
)


def _res_caps(resources):
    return {name: res_entry(r) for name, r in resources.items()}


def _kernel_rates(flows, resources):
    """Rates + iterations via the same dispatch ComponentAllocator uses."""
    return solve_component(flows, _res_caps(resources))


def _reference_rates(flows, resources):
    stats: dict[str, int] = {}
    rates = allocate_rates(flows, resources, stats=stats)
    return [rates[f] for f in flows], stats["iterations"]


def _assert_identical(flows, resources):
    got, got_iters = _kernel_rates(flows, resources)
    want, want_iters = _reference_rates(flows, resources)
    assert got == want
    assert got_iters == want_iters
    if len(flows) > 1:
        # The generic flat kernels (scalar below the cutoff, numpy at and
        # above it) must agree wherever the size-specialised dispatch runs.
        low_rates, low_iters = solve_lowered(lower_component(flows, _res_caps(resources)))
        assert low_rates == want
        assert low_iters == want_iters


def _random_component(rng: random.Random, nflows: int):
    """A connected random flow set over shared resources."""
    nres = rng.randint(1, max(1, nflows))
    resources = {}
    for i in range(nres):
        if rng.random() < 0.3:
            resources[f"r{i}"] = rng.choice([1.0, 10.0, 100e6, 1e9])
        else:
            resources[f"r{i}"] = Resource(
                name=f"r{i}",
                capacity=rng.choice([1.0, 3.0, 10.0, 125e6, 1e9]),
                concurrency_penalty=rng.choice([0.0, 0.02, 0.1, 1.0]),
            )
    names = list(resources)
    flows = []
    for _ in range(nflows):
        path = tuple(rng.sample(names, rng.randint(1, min(4, nres))))
        cap = None
        if rng.random() < 0.4:
            cap = rng.choice([0.5, 1.0, 2.0, 100e6, 1e9, 5e9])
        flows.append(Flow(size=1.0, path=path, rate_cap=cap))
    return flows, resources


@pytest.mark.parametrize("seed", range(40))
def test_fuzz_matches_reference_bitwise(seed):
    rng = random.Random(seed)
    nflows = rng.randint(1, 3 * VECTOR_MIN_FLOWS)
    flows, resources = _random_component(rng, nflows)
    _assert_identical(flows, resources)


@pytest.mark.parametrize("nflows", [1, 2, VECTOR_MIN_FLOWS - 1, VECTOR_MIN_FLOWS, 2 * VECTOR_MIN_FLOWS])
def test_dispatch_cutoff_straddle(nflows):
    """Both sides of the scalar/numpy cutoff agree with the reference."""
    rng = random.Random(nflows)
    flows, resources = _random_component(rng, nflows)
    _assert_identical(flows, resources)


@pytest.mark.parametrize("seed", range(25))
def test_pair_kernel_fuzz(seed):
    """Two-flow components: shared, disjoint, capped, tied, degenerate."""
    rng = random.Random(9000 + seed)
    flows, resources = _random_component(rng, 2)
    _assert_identical(flows, resources)


def test_single_flow_closed_form():
    resources = {
        "d": Resource(name="d", capacity=80e6, concurrency_penalty=0.05),
        "t": 125e6,
    }
    f_uncapped = Flow(size=1.0, path=("d", "t"))
    f_capped = Flow(size=1.0, path=("d", "t"), rate_cap=10e6)
    f_cap_at_min = Flow(size=1.0, path=("d", "t"), rate_cap=80e6)
    for f in (f_uncapped, f_capped, f_cap_at_min):
        _assert_identical([f], resources)
    assert solve_single(f_uncapped, _res_caps(resources)) == 80e6
    assert solve_single(f_capped, _res_caps(resources)) == 10e6
    assert solve_single(f_cap_at_min, _res_caps(resources)) == 80e6


def test_rate_caps_in_freeze_window():
    """Caps exactly at, just inside, and just outside the 1e-12 window."""
    resources = {"d": 10.0}
    base = 10.0 / 4  # fair share of four flows on one resource
    for cap in (base, base - 1e-13, base - 1e-11, base + 1e-11, 1.0, 9.0):
        flows = [Flow(size=1.0, path=("d",), rate_cap=cap)] + [
            Flow(size=1.0, path=("d",)) for _ in range(3)
        ]
        _assert_identical(flows, resources)


def test_float_tie_components():
    """Equal fair shares on parallel resources freeze identically."""
    # Two disks with identical capacity, shared uplink: every flow's
    # bottleneck computes to the same float level.
    resources = {
        "d0": Resource(name="d0", capacity=7.0, concurrency_penalty=0.1),
        "d1": Resource(name="d1", capacity=7.0, concurrency_penalty=0.1),
        "up": 100.0,
    }
    flows = [Flow(size=1.0, path=(d, "up")) for d in ("d0", "d1") for _ in range(5)]
    _assert_identical(flows, resources)
    # Identical rate caps: the stable sort order must match.
    flows = [Flow(size=1.0, path=("up",), rate_cap=3.0) for _ in range(6)]
    _assert_identical(flows, resources)


def test_resources_at_concurrency_threshold():
    """k == 1 vs k == 2 straddles the effective-capacity branch."""
    resources = {
        "d": Resource(name="d", capacity=50.0, concurrency_penalty=0.25),
        "e": Resource(name="e", capacity=50.0, concurrency_penalty=0.25),
    }
    _assert_identical([Flow(size=1.0, path=("d",))], resources)
    _assert_identical(
        [Flow(size=1.0, path=("d",)), Flow(size=1.0, path=("d", "e"))], resources
    )


def test_large_vectorized_component():
    """A big dense component exercises repeated numpy iterations."""
    rng = random.Random(1234)
    nres = 20
    resources = {
        f"r{i}": Resource(
            name=f"r{i}",
            capacity=rng.choice([10.0, 20.0, 40.0]),
            concurrency_penalty=0.05,
        )
        for i in range(nres)
    }
    names = list(resources)
    flows = [
        Flow(
            size=1.0,
            path=tuple(rng.sample(names, 3)),
            rate_cap=rng.choice([None, 0.3, 1.0, 4.0]),
        )
        for _ in range(200)
    ]
    _assert_identical(flows, resources)


def test_underflow_fallback_freezes_all():
    """Degenerate capacities hit the no-freeze guard identically."""
    tiny = 5e-324  # smallest subnormal: delta underflows to 0 after a freeze
    resources = {"a": tiny, "b": 1.0}
    flows = [
        Flow(size=1.0, path=("a", "b")),
        Flow(size=1.0, path=("b",), rate_cap=1e-320),
        Flow(size=1.0, path=("b",)),
    ]
    _assert_identical(flows, resources)


# -- allocator-level differential -------------------------------------------


def _random_resources(rng: random.Random, n: int):
    out = {}
    for i in range(n):
        out[f"r{i}"] = Resource(
            name=f"r{i}",
            capacity=rng.choice([1.0, 5.0, 80e6, 125e6]),
            concurrency_penalty=rng.choice([0.0, 0.05, 0.5]),
        )
    return out


@pytest.mark.parametrize("seed", range(10))
def test_allocator_auto_vs_reference_kernel_churn(seed):
    """Auto-kernel allocator == reference-kernel allocator through churn."""
    rng = random.Random(1000 + seed)
    resources = _random_resources(rng, 12)
    names = list(resources)
    auto = ComponentAllocator()
    ref = ComponentAllocator(kernel="reference")
    for name, r in resources.items():
        auto.register(name, r)
        ref.register(name, r)
    live: list[Flow] = []
    for step in range(120):
        if live and rng.random() < 0.35:
            f = live.pop(rng.randrange(len(live)))
            auto.remove(f)
            ref.remove(f)
        else:
            path = tuple(rng.sample(names, rng.randint(1, 3)))
            cap = rng.choice([None, None, 1.0, 60e6])
            f = Flow(size=1.0, path=path, rate_cap=cap)
            live.append(f)
            auto.add(f)
            ref.add(f)
        if rng.random() < 0.5:
            got = auto.solve()
            want = ref.solve()
            assert got == want
            assert auto.last_iterations == ref.last_iterations
            assert auto.last_component_solves == ref.last_component_solves
    assert auto.solve() == ref.solve()


def test_allocator_counts_vectorized_solves():
    alloc = ComponentAllocator()
    alloc.register("shared", Resource(name="shared", capacity=100.0,
                                      concurrency_penalty=0.1))
    for _ in range(VECTOR_MIN_FLOWS):
        alloc.add(Flow(size=1.0, path=("shared",)))
    alloc.solve()
    assert alloc.last_vectorized_solves == 1
    assert alloc.last_parallel_solves == 0


def test_allocator_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        ComponentAllocator(kernel="simd")
