"""Tests for Algorithm 1 — multi-data matching (§IV-C)."""

import pytest

from repro.core.assignment import equal_quotas, locality_fraction
from repro.core.bipartite import ProcessPlacement, build_locality_graph, graph_from_filesystem
from repro.core.baselines import rank_interval_assignment
from repro.core.multi_data import optimize_multi_data
from repro.core.tasks import Task, tasks_from_datasets
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.dfs.chunk import MB, ChunkId
from repro.workloads import multi_input_datasets


def _graph_from_weights(weights, num_tasks, num_nodes):
    """Build a graph with prescribed (rank, task) co-located byte weights.

    Each positive weight becomes a dedicated single-replica chunk on the
    rank's node, so edge weights equal the prescription exactly.
    """
    tasks_inputs: dict[int, list[ChunkId]] = {t: [] for t in range(num_tasks)}
    locations = {}
    sizes = {}
    for (rank, task), w in weights.items():
        cid = ChunkId(f"w-{rank}-{task}", 0)
        tasks_inputs[task].append(cid)
        locations[cid] = (rank,)
        sizes[cid] = w
    # Tasks with no data anywhere still need an input chunk; park it on a
    # node outside the process set if possible, else make it tiny on node 0.
    tasks = []
    for t in range(num_tasks):
        if not tasks_inputs[t]:
            cid = ChunkId(f"pad-{t}", 0)
            locations[cid] = (num_nodes - 1,)
            sizes[cid] = 1
            tasks_inputs[t].append(cid)
        tasks.append(Task(t, tuple(tasks_inputs[t])))
    return build_locality_graph(
        tasks, locations, sizes, ProcessPlacement.one_per_node(num_nodes)
    )


class TestPaperExample:
    def test_figure6_reassignment(self):
        """Figure 6(b): t5 initially matched to p2 is stolen by p3.

        Weights (MB) follow Figure 6(a)'s table for t4/t5 and p0..p3.
        """
        weights = {
            (0, 4): 40 * MB,
            (1, 4): 10 * MB,
            (2, 5): 10 * MB,
            (3, 5): 30 * MB,
            (2, 4): 20 * MB,
            (0, 5): 10 * MB,
        }
        graph = _graph_from_weights(weights, num_tasks=6, num_nodes=4)
        result = optimize_multi_data(graph)
        owner = result.assignment.process_of()
        assert owner[4] == 0  # highest matching value 40 MB
        assert owner[5] == 3  # stolen by p3 (30 MB > p2's 10 MB)
        assert result.assignment.num_tasks == 6


class TestInvariants:
    def test_all_tasks_assigned_exact_quota(self):
        weights = {(r, t): (r + t + 1) * MB for r in range(3) for t in range(6)}
        graph = _graph_from_weights(weights, 6, 3)
        result = optimize_multi_data(graph)
        result.assignment.validate(6, quotas=equal_quotas(6, 3), exact_quota=True)

    def test_local_bytes_reported_correctly(self):
        weights = {(0, 0): 5 * MB, (1, 1): 7 * MB}
        graph = _graph_from_weights(weights, 2, 2)
        result = optimize_multi_data(graph)
        owner = result.assignment.process_of()
        expected = sum(graph.edge_weight(owner[t], t) for t in range(2))
        assert result.local_bytes == expected
        assert result.local_bytes == 12 * MB

    def test_no_edges_still_assigns_everything(self):
        graph = _graph_from_weights({}, num_tasks=4, num_nodes=3)
        # All pad chunks live on node 2, so ranks 0/1 have no locality.
        result = optimize_multi_data(graph)
        result.assignment.validate(4, quotas=equal_quotas(4, 3))

    def test_quota_sum_must_cover_tasks(self):
        graph = _graph_from_weights({(0, 0): MB}, 2, 2)
        with pytest.raises(ValueError, match="total quota"):
            optimize_multi_data(graph, quotas=[1, 0])

    def test_uneven_quotas(self):
        weights = {(r, t): MB for r in range(2) for t in range(4)}
        graph = _graph_from_weights(weights, 4, 2)
        result = optimize_multi_data(graph, quotas=[3, 1])
        assert len(result.assignment.tasks_of[0]) == 3
        assert len(result.assignment.tasks_of[1]) == 1

    def test_reassignment_counter(self):
        weights = {
            (0, 4): 40 * MB,
            (2, 5): 10 * MB,
            (3, 5): 30 * MB,
        }
        graph = _graph_from_weights(weights, 6, 4)
        result = optimize_multi_data(graph)
        assert result.reassignments >= 0
        assert result.proposals >= 6  # at least one proposal per task

    def test_deterministic(self):
        weights = {(r, t): ((r * 7 + t * 3) % 5 + 1) * MB
                   for r in range(4) for t in range(8)}
        graph = _graph_from_weights(weights, 8, 4)
        a = optimize_multi_data(graph).assignment.tasks_of
        b = optimize_multi_data(graph).assignment.tasks_of
        assert a == b


class TestQuality:
    @pytest.fixture
    def genome_graph(self):
        spec = ClusterSpec.homogeneous(16)
        fs = DistributedFileSystem(spec, seed=13)
        datasets = multi_input_datasets(64)
        for ds in datasets:
            fs.put_dataset(ds)
        placement = ProcessPlacement.one_per_node(16)
        tasks = tasks_from_datasets(datasets)
        return graph_from_filesystem(fs, tasks, placement)

    def test_beats_rank_interval(self, genome_graph):
        result = optimize_multi_data(genome_graph)
        base = rank_interval_assignment(64, 16)
        assert locality_fraction(result.assignment, genome_graph) > locality_fraction(
            base, genome_graph
        )

    def test_beats_random_assignments(self, genome_graph):
        """Algorithm 1 should dominate locality-oblivious random deals."""
        from repro.core.baselines import random_assignment

        result = optimize_multi_data(genome_graph)
        opass_local = locality_fraction(result.assignment, genome_graph)
        for seed in range(5):
            rand = random_assignment(64, 16, seed=seed)
            assert opass_local > locality_fraction(rand, genome_graph)

    def test_steal_only_improves(self, genome_graph):
        """Every reassignment strictly increased the stolen task's local
        bytes, so total local bytes is at least the no-steal greedy's."""
        full = optimize_multi_data(genome_graph)
        assert full.local_bytes > 0
        # Running with quotas so large no process is ever deficient after
        # round one effectively disables stealing pressure differences;
        # the constrained run must not be better than the relaxed one by
        # definition of the objective... both must remain valid anyway.
        relaxed = optimize_multi_data(genome_graph, quotas=[64] * 16)
        assert relaxed.assignment.num_tasks == 64


class TestSelectionOrder:
    def test_all_orders_valid(self, genome_graph=None):
        from repro.core import graph_from_filesystem, tasks_from_datasets
        from repro.dfs import ClusterSpec, DistributedFileSystem
        from repro.workloads import multi_input_datasets

        fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=83)
        datasets = multi_input_datasets(24)
        for ds in datasets:
            fs.put_dataset(ds)
        graph = graph_from_filesystem(
            fs, tasks_from_datasets(datasets), ProcessPlacement.one_per_node(8)
        )
        results = {}
        for order in ("round_robin", "stack", "random"):
            r = optimize_multi_data(graph, order=order, seed=3)
            r.assignment.validate(24, quotas=equal_quotas(24, 8), exact_quota=True)
            results[order] = locality_fraction(r.assignment, graph)
        # Quality is order-insensitive within a small tolerance.
        assert max(results.values()) - min(results.values()) < 0.1

    def test_unknown_order_rejected(self):
        graph = _graph_from_weights({(0, 0): MB}, 1, 1)
        with pytest.raises(ValueError, match="selection order"):
            optimize_multi_data(graph, order="zigzag")

    def test_random_order_deterministic_by_seed(self):
        weights = {(r, t): ((r * 5 + t * 3) % 7 + 1) * MB
                   for r in range(4) for t in range(12)}
        graph = _graph_from_weights(weights, 12, 4)
        a = optimize_multi_data(graph, order="random", seed=5).assignment.tasks_of
        b = optimize_multi_data(graph, order="random", seed=5).assignment.tasks_of
        assert a == b
