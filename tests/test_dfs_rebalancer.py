"""Tests for the HDFS balancer model."""

import numpy as np
import pytest

from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    Rebalancer,
    SkewedPlacement,
    uniform_dataset,
)
from repro.dfs.chunk import MB


def skewed_fs(excluded=0.5, nodes=8, chunks=48, seed=3):
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(nodes),
        placement=SkewedPlacement(excluded_fraction=excluded),
        seed=seed,
    )
    fs.put_dataset(uniform_dataset("d", chunks, chunk_size=4 * MB))
    return fs


class TestIntrospection:
    def test_spread_detects_skew(self):
        fs = skewed_fs()
        r = Rebalancer(fs)
        assert r.utilisation_spread() > 0.5
        assert not r.is_balanced()

    def test_balanced_layout_recognised(self):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=0)
        fs.put_dataset(uniform_dataset("d", 400, chunk_size=MB))
        r = Rebalancer(fs, threshold=0.3)
        # Random placement over many chunks is near-even.
        assert r.is_balanced()

    def test_threshold_validation(self):
        fs = skewed_fs()
        with pytest.raises(ValueError):
            Rebalancer(fs, threshold=0.0)
        with pytest.raises(ValueError):
            Rebalancer(fs, threshold=1.5)


class TestMigration:
    def test_run_flattens_storage(self):
        fs = skewed_fs()
        r = Rebalancer(fs, threshold=0.15)
        before = r.utilisation_spread()
        report = r.run()
        after = r.utilisation_spread()
        assert report.num_moves > 0
        assert report.bytes_moved == report.num_moves * 4 * MB
        assert after < before
        assert report.converged

    def test_invariants_preserved(self):
        fs = skewed_fs()
        layout_before = fs.layout_snapshot()
        Rebalancer(fs, threshold=0.15).run()
        layout_after = fs.layout_snapshot()
        # Same chunks, same replica counts, all replicas distinct nodes.
        assert set(layout_after) == set(layout_before)
        for cid, nodes in layout_after.items():
            assert len(nodes) == len(layout_before[cid])
            assert len(set(nodes)) == len(nodes)
        # DataNode inventories agree with the NameNode.
        for cid, nodes in layout_after.items():
            for n in nodes:
                assert fs.datanodes[n].holds(cid)

    def test_no_moves_when_already_balanced(self):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=0)
        fs.put_dataset(uniform_dataset("d", 400, chunk_size=MB))
        report = Rebalancer(fs, threshold=0.3).run()
        assert report.num_moves == 0
        assert report.converged

    def test_max_passes_validation(self):
        fs = skewed_fs()
        with pytest.raises(ValueError):
            Rebalancer(fs).run(max_passes=0)

    def test_rebalanced_layout_restores_matching(self):
        """After rebalancing a skewed layout, the Opass matching recovers
        locality that the skew had destroyed — but the data had to move."""
        from repro.core import (
            ProcessPlacement,
            graph_from_filesystem,
            locality_fraction,
            optimize_single_data,
            tasks_from_dataset,
        )

        fs = skewed_fs(excluded=0.5, nodes=8, chunks=80)
        placement = ProcessPlacement.one_per_node(8)
        tasks = tasks_from_dataset(fs.dataset("d"))
        graph = graph_from_filesystem(fs, tasks, placement)
        before = locality_fraction(optimize_single_data(graph).assignment, graph)

        Rebalancer(fs, threshold=0.15).run()
        graph2 = graph_from_filesystem(fs, tasks, placement)
        after = locality_fraction(optimize_single_data(graph2).assignment, graph2)
        assert after > before
