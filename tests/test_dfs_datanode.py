"""Unit tests for DataNode inventory and serve accounting."""

import pytest

from repro.dfs.chunk import ChunkId
from repro.dfs.datanode import DataNode


@pytest.fixture
def node():
    dn = DataNode(3)
    dn.add_replica(ChunkId("f", 0), 100)
    dn.add_replica(ChunkId("f", 1), 200)
    return dn


class TestInventory:
    def test_holds(self, node):
        assert node.holds(ChunkId("f", 0))
        assert not node.holds(ChunkId("f", 9))

    def test_stored_bytes(self, node):
        assert node.stored_bytes == 300
        assert node.num_replicas == 2

    def test_duplicate_replica_rejected(self, node):
        with pytest.raises(ValueError):
            node.add_replica(ChunkId("f", 0), 100)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            DataNode(0).add_replica(ChunkId("f", 0), 0)

    def test_drop_replica(self, node):
        node.drop_replica(ChunkId("f", 0))
        assert not node.holds(ChunkId("f", 0))
        assert node.stored_bytes == 200

    def test_drop_missing_rejected(self, node):
        with pytest.raises(KeyError):
            node.drop_replica(ChunkId("g", 0))

    def test_replica_size(self, node):
        assert node.replica_size(ChunkId("f", 1)) == 200


class TestServeAccounting:
    def test_local_serve(self, node):
        node.record_serve(ChunkId("f", 0), local=True)
        assert node.bytes_served == 100
        assert node.local_bytes_served == 100
        assert node.remote_bytes_served == 0
        assert node.requests_served == 1

    def test_remote_serve(self, node):
        node.record_serve(ChunkId("f", 1), local=False)
        assert node.remote_bytes_served == 200
        assert node.local_bytes_served == 0

    def test_accumulates(self, node):
        node.record_serve(ChunkId("f", 0), local=True)
        node.record_serve(ChunkId("f", 1), local=False)
        node.record_serve(ChunkId("f", 0), local=False)
        assert node.bytes_served == 400
        assert node.requests_served == 3

    def test_cannot_serve_missing_chunk(self, node):
        with pytest.raises(KeyError):
            node.record_serve(ChunkId("nope", 0), local=True)

    def test_reset(self, node):
        node.record_serve(ChunkId("f", 0), local=True)
        node.reset_counters()
        assert node.bytes_served == 0
        assert node.requests_served == 0
        assert node.local_bytes_served == 0
        assert node.remote_bytes_served == 0
        # Inventory untouched by reset.
        assert node.num_replicas == 2
