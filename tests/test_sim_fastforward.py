"""Differential tests for the engine's cascade fast-forward loop.

The fused loop (:meth:`repro.simulate.engine.Simulation._run_fast`) and
the canonical solve memo (:mod:`repro.simulate.cascade`) carry a
bit-for-bit identity contract: every emitted event — time, flow id,
order, the 1e-9 tie-snap to the lowest flow id — must be byte-identical
to the general per-event dispatcher.  These tests pin that contract
three ways:

* a scripted fuzz interleaving the hazards that could break it —
  fast-forwarded completion cascades, same-timestamp timer waves,
  flow starts/cancels *during* the fast-forwarded window, and FlowTable
  slot recycling inside a cascade;
* the golden experiment fixtures replayed with the fast-forward loop
  disabled (``DEFAULT_FASTFORWARD = False``), asserting against the
  same pinned digests the fast-forward engine reproduces;
* the memo's canonical keys (pair/general agreement, cap sensitivity)
  and the cascade telemetry counters.
"""

from __future__ import annotations

import random

import pytest

import repro.simulate.engine as engine_mod
from repro.simulate import Simulation
from repro.simulate.cascade import SolveMemo, component_key, pair_key
from repro.simulate.flows import Flow
from repro.simulate.resources import Resource


def _grid_sim(ff: bool, n: int = 6) -> Simulation:
    sim = Simulation(fastforward=ff)
    for i in range(n):
        sim.add_resource(Resource(f"r{i}", 10.0))
    return sim


def _fuzz_script(seed: int, waves: int = 120):
    """A deterministic action script (built once, replayed per engine).

    Timer times are drawn from a coarse grid so several waves land on
    the *exact same* float timestamp (coalescing + tie-snap pressure);
    sizes repeat so completions tie; paths overlap so components merge
    and split while cascades run.
    """
    rng = random.Random(seed)
    script = []
    for _ in range(waves):
        t = rng.choice((0.5, 1.0, 1.0, 1.5, 2.0, 2.0, 2.0, 3.0, 4.5)) * (
            1 + rng.randrange(6)
        )
        kind = rng.random()
        if kind < 0.55:
            size = rng.choice((10.0, 20.0, 20.0, 40.0, 80.0))
            k = rng.choice((1, 1, 2, 2, 3))
            first = rng.randrange(6)
            path = tuple(f"r{(first + j) % 6}" for j in range(k))
            script.append(("start", t, size, path))
        elif kind < 0.8:
            script.append(("cancel", t, rng.randrange(1 << 30)))
        else:
            # chain: when the flow completing at this point finishes,
            # its callback immediately starts a follow-up flow — the
            # start lands *inside* a fast-forwarded cascade window and
            # recycles the just-freed slot.
            size = rng.choice((10.0, 20.0))
            first = rng.randrange(6)
            path = (f"r{first}", f"r{(first + 1) % 6}")
            script.append(("chain", t, size, path))
    return script


def _run_script(seed: int, ff: bool):
    """Replay one script; returns the completion/cancel event log."""
    sim = _grid_sim(ff)
    log: list[tuple] = []
    active: list[Flow] = []
    chain_next: list[tuple] = []
    # flow_id is a process-global counter; log per-run ordinals so the
    # two runs compare structurally.
    ordinal: dict[int, int] = {}

    def track(f: Flow) -> Flow:
        ordinal[f.flow_id] = len(ordinal)
        active.append(f)
        return f

    def finish(flow: Flow) -> None:
        log.append(("done", repr(sim.now), ordinal[flow.flow_id]))
        if flow in active:
            active.remove(flow)
        if chain_next:
            size, path = chain_next.pop()
            f2 = track(sim.start_flow(size, path, finish))
            log.append(("chained", repr(sim.now), ordinal[f2.flow_id]))

    def apply(action) -> None:
        if action[0] == "start":
            _, _, size, path = action
            track(sim.start_flow(size, path, finish))
        elif action[0] == "cancel":
            if active:
                victim = active.pop(action[2] % len(active))
                sim.cancel_flow(victim)
                log.append(("cancel", repr(sim.now), ordinal[victim.flow_id]))
        else:
            _, _, size, path = action
            chain_next.append((size, path))

    for action in _fuzz_script(seed):
        sim.schedule(action[1], lambda a=action: apply(a))
    sim.run()
    return log, sim.perf


class TestFuzzIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_trace_identity(self, seed):
        """start/cancel/chain × same-timestamp waves × slot recycling:
        the fast-forward trace equals the general dispatcher's, with
        event times compared by repr (bit-for-bit)."""
        log_ff, perf_ff = _run_script(seed, True)
        log_gen, perf_gen = _run_script(seed, False)
        assert log_ff == log_gen
        # Same events, same per-kind counts either way.
        assert perf_ff.flow_events == perf_gen.flow_events
        assert perf_ff.timer_events == perf_gen.timer_events
        assert perf_ff.flows_cancelled == perf_gen.flows_cancelled
        # The general loop never counts cascades.
        assert perf_gen.fastforward_cascades == 0
        assert perf_gen.cascade_events == 0

    def test_fuzz_exercises_the_hazards(self):
        """The scripts actually cover what they claim to cover."""
        cascades = cancels = chained = coalesced = 0
        for seed in range(8):
            log, perf = _run_script(seed, True)
            cascades += perf.fastforward_cascades
            coalesced += perf.coalesced_events
            cancels += sum(1 for e in log if e[0] == "cancel")
            chained += sum(1 for e in log if e[0] == "chained")
        assert cascades > 0
        assert coalesced > 0
        assert cancels > 0
        assert chained > 0


class TestGoldenFastforwardOff:
    """The pinned component-engine fixtures, replayed without the
    fast-forward loop.  The regular golden suite runs them with it (the
    default); equality against the same digests on both sides is the
    on/off identity contract on every golden workload."""

    @pytest.fixture(autouse=True)
    def _general_dispatcher(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "DEFAULT_FASTFORWARD", False)

    def test_fig7_bitwise_without_fastforward(self):
        from tests.test_sim_golden import GOLDEN_COMPONENT, assert_exact

        from repro.experiments.single_data import run_single_data_comparison

        c = run_single_data_comparison(16, seed=9)
        assert_exact(c.base, GOLDEN_COMPONENT["fig7_m16_s9_base"])
        assert_exact(c.opass, GOLDEN_COMPONENT["fig7_m16_s9_opass"])

    def test_faults_bitwise_without_fastforward(self):
        from tests.test_sim_golden import GOLDEN_COMPONENT, _faults_run, assert_exact

        assert_exact(_faults_run(), GOLDEN_COMPONENT["faults_8"])


class TestCascadeCounters:
    def test_cascade_run_on_staggered_completions(self):
        """Distinct-size flows on one resource complete back-to-back with
        no timers in between: one cascade run spanning all of them."""
        sim = Simulation()
        sim.add_resource(Resource("r", 30.0))
        for size in (30.0, 60.0, 90.0):
            sim.start_flow(size, ("r",), lambda f: None)
        sim.run()
        assert sim.perf.flows_finished == 3
        assert sim.perf.fastforward_cascades == 1
        # cascade_events counts events beyond the first of each run.
        assert sim.perf.cascade_events == sim.perf.flow_events - 1

    def test_general_loop_counts_nothing(self):
        sim = Simulation(fastforward=False)
        sim.add_resource(Resource("r", 30.0))
        for size in (30.0, 60.0, 90.0):
            sim.start_flow(size, ("r",), lambda f: None)
        sim.run()
        assert sim.perf.flows_finished == 3
        assert sim.perf.fastforward_cascades == 0
        assert sim.perf.cascade_events == 0

    def test_bounded_run_uses_general_loop(self):
        """run(until=...) must not enter the fused loop (it has no
        horizon handling) — and still completes correctly."""
        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        done = []
        sim.start_flow(50.0, ("r",), done.append)
        sim.run(until=1.0)
        assert not done and sim.now == 1.0
        sim.run()
        assert len(done) == 1
        assert sim.perf.fastforward_cascades == 0


class TestSolveMemo:
    CAPS = {"a": (10.0, 0.0), "b": (5.0, 0.0), "c": (7.0, 0.0)}

    def test_pair_and_general_keys_never_collide(self):
        fa = Flow(10, ("a", "b"))
        fb = Flow(10, ("b", "c"))
        kp = pair_key(fa, fb, self.CAPS)
        kg = component_key([fa, fb], self.CAPS)
        # Different key spaces for the same structure: the allocator
        # always routes k==2 through pair_key, so the spaces must
        # simply be disjoint (no false sharing).
        assert kp != kg

    def test_name_independence(self):
        caps = {"x": (10.0, 0.0), "y": (5.0, 0.0), "z": (7.0, 0.0)}
        k1 = pair_key(Flow(10, ("a", "b")), Flow(10, ("b", "c")), self.CAPS)
        k2 = pair_key(Flow(10, ("x", "y")), Flow(10, ("y", "z")), caps)
        assert k1 == k2

    def test_capacity_sensitivity_is_exact(self):
        caps2 = dict(self.CAPS)
        caps2["b"] = (5.0 + 1e-12, 0.0)
        k1 = pair_key(Flow(10, ("a", "b")), Flow(10, ("b", "c")), self.CAPS)
        k2 = pair_key(Flow(10, ("a", "b")), Flow(10, ("b", "c")), caps2)
        assert k1 != k2

    def test_rate_cap_in_key(self):
        k1 = pair_key(Flow(10, ("a", "b")), Flow(10, ("b", "c")), self.CAPS)
        k2 = pair_key(
            Flow(10, ("a", "b")), Flow(10, ("b", "c"), rate_cap=3.0), self.CAPS
        )
        assert k1 != k2

    def test_lookup_store_roundtrip_and_bound(self):
        memo = SolveMemo(max_entries=2)
        memo.store("k1", [1.0], 3)
        assert memo.lookup("k1") == ([1.0], 3)
        assert memo.lookup("nope") is None
        memo.store("k2", [2.0], 1)
        assert len(memo) == 2
        # Full: the next store clears, then inserts.
        memo.store("k3", [3.0], 1)
        assert len(memo) == 1
        assert memo.lookup("k1") is None
        assert memo.lookup("k3") == ([3.0], 1)

    def test_memo_hits_counted_in_perf(self):
        """Structurally identical remote-pair components hit the memo."""
        sim = Simulation()
        for i in range(8):
            sim.add_resource(Resource(f"d{i}", 10.0))
            sim.add_resource(Resource(f"n{i}", 20.0))
        for i in range(0, 8, 2):
            sim.start_flow(40.0, (f"d{i}", f"n{i}"), lambda f: None)
            sim.start_flow(40.0, (f"d{i}", f"n{i + 1}"), lambda f: None)
        sim.run()
        assert sim.perf.memo_hits > 0
