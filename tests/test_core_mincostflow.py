"""Tests for the min-cost max-flow solver, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.core.mincostflow import MinCostFlowNetwork


class TestBasics:
    def test_single_edge(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 5, 3)
        assert net.min_cost_flow(0, 1) == (5, 15)

    def test_prefers_cheap_path(self):
        net = MinCostFlowNetwork(4)
        net.add_edge(0, 1, 1, 10)
        net.add_edge(1, 3, 1, 10)
        net.add_edge(0, 2, 1, 1)
        net.add_edge(2, 3, 1, 1)
        flow, cost = net.min_cost_flow(0, 3, max_flow=1)
        assert flow == 1
        assert cost == 2  # the cheap path

    def test_full_flow_uses_both_paths(self):
        net = MinCostFlowNetwork(4)
        net.add_edge(0, 1, 1, 10)
        net.add_edge(1, 3, 1, 10)
        net.add_edge(0, 2, 1, 1)
        net.add_edge(2, 3, 1, 1)
        assert net.min_cost_flow(0, 3) == (2, 22)

    def test_flow_limit(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 10, 1)
        assert net.min_cost_flow(0, 1, max_flow=4) == (4, 4)

    def test_zero_limit(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 10, 1)
        assert net.min_cost_flow(0, 1, max_flow=0) == (0, 0)

    def test_disconnected(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 5, 1)
        assert net.min_cost_flow(0, 2) == (0, 0)

    def test_negative_costs_ok(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 2, -5)
        net.add_edge(1, 2, 2, 1)
        assert net.min_cost_flow(0, 2) == (2, -8)

    def test_negative_cycle_detected(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 1, -5)
        net.add_edge(1, 0, 1, -5)
        net.add_edge(0, 2, 1, 1)
        with pytest.raises(ValueError, match="negative-cost cycle"):
            net.min_cost_flow(0, 2)

    def test_flow_on_and_reset(self):
        net = MinCostFlowNetwork(2)
        h = net.add_edge(0, 1, 5, 2)
        net.min_cost_flow(0, 1)
        assert net.flow_on(h) == 5
        net.reset()
        assert net.flow_on(h) == 0
        assert net.min_cost_flow(0, 1) == (5, 10)


class TestValidation:
    def test_bad_vertices(self):
        with pytest.raises(ValueError):
            MinCostFlowNetwork(0)
        net = MinCostFlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 0, 1, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1)
        with pytest.raises(TypeError):
            net.add_edge(0, 1, 1, 1.5)

    def test_same_source_sink(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 1, 1)
        with pytest.raises(ValueError):
            net.min_cost_flow(0, 0)
        with pytest.raises(ValueError):
            net.min_cost_flow(0, 1, max_flow=-1)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        net = MinCostFlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.3:
                    cap = int(rng.integers(1, 10))
                    cost = int(rng.integers(0, 8))
                    net.add_edge(u, v, cap, cost)
                    if g.has_edge(u, v):
                        # networkx max_flow_min_cost can't model parallel
                        # edges in a DiGraph; skip the duplicate in both.
                        continue
                    g.add_edge(u, v, capacity=cap, weight=cost)
        # Rebuild net without the skipped duplicates for a fair comparison.
        net2 = MinCostFlowNetwork(n)
        for u, v, data in g.edges(data=True):
            net2.add_edge(u, v, data["capacity"], data["weight"])
        flow_dict = nx.max_flow_min_cost(g, 0, n - 1)
        expected_flow = sum(flow_dict[0].values()) - sum(
            flow_dict[v].get(0, 0) for v in g.predecessors(0)
        )
        expected_cost = nx.cost_of_flow(g, flow_dict)
        flow, cost = net2.min_cost_flow(0, n - 1)
        assert flow == expected_flow
        assert cost == expected_cost

    def test_transportation_problem(self):
        """2 warehouses x 3 customers, classic balanced transportation."""
        # vertices: 0=s, 1-2 warehouses, 3-5 customers, 6=t
        supply = [4, 5]
        demand = [3, 3, 3]
        costs = [[2, 4, 5], [3, 1, 7]]
        net = MinCostFlowNetwork(7)
        for w, s_ in enumerate(supply):
            net.add_edge(0, 1 + w, s_, 0)
        for c, d in enumerate(demand):
            net.add_edge(3 + c, 6, d, 0)
        for w in range(2):
            for c in range(3):
                net.add_edge(1 + w, 3 + c, 10, costs[w][c])
        flow, cost = net.min_cost_flow(0, 6)
        assert flow == 9
        # Optimal: w0->c0 (1x2), w0->c2 (3x5), w1->c0 (2x3), w1->c1 (3x1).
        assert cost == 2 + 15 + 6 + 3
        # Cross-check with networkx's min-cost flow.
        g = nx.DiGraph()
        for w, s_ in enumerate(supply):
            g.add_edge("s", f"w{w}", capacity=s_, weight=0)
        for c, d in enumerate(demand):
            g.add_edge(f"c{c}", "t", capacity=d, weight=0)
        for w in range(2):
            for c in range(3):
                g.add_edge(f"w{w}", f"c{c}", capacity=10, weight=costs[w][c])
        assert cost == nx.cost_of_flow(g, nx.max_flow_min_cost(g, "s", "t"))
