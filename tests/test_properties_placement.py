"""Property-based tests for placement and end-to-end run conservation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ProcessPlacement,
    random_assignment,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.simulate import ParallelReadRun, StaticSource


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_placement_always_r_distinct_live_nodes(m, r, n, seed):
    r = min(r, m)
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), replication=r, seed=seed)
    fs.put_dataset(uniform_dataset("d", n, chunk_size=MB))
    for cid, nodes in fs.layout_snapshot().items():
        assert len(nodes) == r
        assert len(set(nodes)) == r
        assert all(0 <= x < m for x in nodes)


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=18),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_run_conserves_bytes_and_records(m, n, seed):
    """Any static run reads exactly the dataset: per-record, per-node and
    local/remote accounting all agree."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    fs.put_dataset(uniform_dataset("d", n, chunk_size=4 * MB))
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(fs.dataset("d"))
    assignment = random_assignment(n, m, seed=seed)
    result = ParallelReadRun(
        fs, placement, tasks, StaticSource(assignment), seed=seed
    ).run()
    assert result.tasks_completed == n
    assert len(result.records) == n
    total = n * 4 * MB
    assert result.local_bytes + result.remote_bytes == total
    assert sum(result.bytes_served.values()) == total
    # Each record's locality flag is consistent.
    for rec in result.records:
        assert rec.local == (rec.server_node == rec.reader_node)
    # Chunk set read == chunk set stored.
    assert {rec.chunk for rec in result.records} == set(fs.layout_snapshot())


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=20, deadline=None)
def test_fully_local_assignment_has_flat_read_times(m, n, seed):
    """If every task is assigned to a co-located process, every read takes
    latency + size/disk_bw exactly — the Opass steady state."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    fs.put_dataset(uniform_dataset("d", n, chunk_size=4 * MB))
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(fs.dataset("d"))
    layout = fs.layout_snapshot()
    from repro.core.assignment import Assignment

    a = Assignment.empty(m)
    for t in tasks:
        a.assign(layout[t.inputs[0]][0], t.task_id)
    result = ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=seed).run()
    assert result.locality_fraction == 1.0
    expected = fs.spec.seek_latency + 4 * MB / fs.spec.node(0).disk_bw
    d = result.durations()
    assert np.allclose(d, expected, rtol=1e-6)


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_same_seed_same_run(seed):
    def run():
        fs = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=seed)
        fs.put_dataset(uniform_dataset("d", 8, chunk_size=4 * MB))
        placement = ProcessPlacement.one_per_node(4)
        tasks = tasks_from_dataset(fs.dataset("d"))
        a = rank_interval_assignment(8, 4)
        return ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=seed).run()

    r1, r2 = run(), run()
    assert r1.makespan == r2.makespan
    assert [rec.duration for rec in r1.records] == [rec.duration for rec in r2.records]
    assert r1.bytes_served == r2.bytes_served
