"""Tests for the model-vs-simulation validation sweep."""

import pytest

from repro.analysis import ValidationRow, validate_configuration, validation_grid


class TestValidateConfiguration:
    def test_locality_agrees_with_model(self):
        row = validate_configuration(8, 3, 10, trials=4, seed=1)
        assert row.model_locality == pytest.approx(3 / 8)
        assert row.locality_error < 0.08

    def test_served_spread_same_order(self):
        row = validate_configuration(8, 3, 10, trials=4, seed=1)
        assert 0.5 < row.served_std_ratio < 1.6

    def test_replication_one(self):
        row = validate_configuration(8, 1, 5, trials=2, seed=2)
        assert row.model_locality == pytest.approx(1 / 8)
        assert row.locality_error < 0.1


class TestGrid:
    def test_grid_shape_and_skip(self):
        rows = validation_grid(
            cluster_sizes=(2, 8), replications=(2, 3), trials=1, seed=0
        )
        # (2,3) skipped: r > m.
        assert len(rows) == 3
        assert all(isinstance(r, ValidationRow) for r in rows)

    def test_locality_decays_with_m_in_both_worlds(self):
        rows = validation_grid(
            cluster_sizes=(8, 16, 32), replications=(3,), trials=2, seed=3
        )
        model = [r.model_locality for r in rows]
        sim = [r.simulated_locality for r in rows]
        assert model == sorted(model, reverse=True)
        assert sim == sorted(sim, reverse=True)

    def test_all_configurations_close(self):
        rows = validation_grid(
            cluster_sizes=(8, 16), replications=(2, 3), trials=3, seed=4
        )
        for r in rows:
            assert r.locality_error < 0.1, r
            assert 0.4 < r.served_std_ratio < 1.8, r
