"""Tests for the top-level Opass API."""

import pytest

from repro.core import (
    ProcessPlacement,
    locality_fraction,
    opass_dynamic_plan,
    opass_multi_data,
    opass_single_data,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.workloads import multi_input_datasets


@pytest.fixture
def fs():
    f = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=17)
    f.put_dataset(uniform_dataset("single", 40))
    for ds in multi_input_datasets(40, name_prefix="multi"):
        f.put_dataset(ds)
    return f


@pytest.fixture
def placement():
    return ProcessPlacement.one_per_node(8)


class TestSingleData:
    def test_by_name(self, fs, placement):
        result, graph, tasks = opass_single_data(fs, "single", placement)
        assert len(tasks) == 40
        assert locality_fraction(result.assignment, graph) > 0.9

    def test_by_object(self, fs, placement):
        ds = fs.dataset("single")
        result, graph, tasks = opass_single_data(fs, ds, placement)
        result.assignment.validate(40)

    def test_unknown_dataset(self, fs, placement):
        with pytest.raises(KeyError):
            opass_single_data(fs, "nope", placement)


class TestMultiData:
    def test_three_datasets(self, fs, placement):
        names = ["multi-0", "multi-1", "multi-2"]
        result, graph, tasks = opass_multi_data(fs, names, placement)
        assert len(tasks) == 40
        assert all(len(t.inputs) == 3 for t in tasks)
        result.assignment.validate(40)
        assert result.local_bytes > 0


class TestDynamicPlan:
    def test_plan_lists_cover_tasks(self, fs, placement):
        plan, graph, tasks = opass_dynamic_plan(fs, "single", placement)
        all_tasks = sorted(t for lst in plan.lists.values() for t in lst)
        assert all_tasks == [t.task_id for t in tasks]

    def test_plan_dispatchable(self, fs, placement):
        plan, _, _ = opass_dynamic_plan(fs, "single", placement)
        count = 0
        while plan.next_task(count % 8) is not None:
            count += 1
        assert count == 40
