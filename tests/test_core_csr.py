"""CSR locality-graph storage and the snapshot→graph cache (PR 5)."""

from __future__ import annotations

import pytest

from repro.core import (
    FlowNetwork,
    LocalityCSR,
    LocalityGraph,
    ProcessPlacement,
    build_csr,
    build_locality_graph,
    clear_graph_cache,
    csr_from_rows,
    graph_cache_stats,
    graph_from_filesystem,
    tasks_from_dataset,
)
from repro.core.bipartite import GRAPH_CACHE_CAPACITY
from repro.core.perf import SchedPerf
from repro.core.tasks import Task
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB, ChunkId


def _workload(num_nodes: int = 8, chunks: int = 24, seed: int = 7):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    fs.put_dataset(uniform_dataset("d", chunks, chunk_size=16 * MB))
    tasks = tasks_from_dataset(uniform_dataset("d", chunks, chunk_size=16 * MB))
    placement = ProcessPlacement.one_per_node(num_nodes)
    return fs, tasks, placement


def _graph_inputs(fs, tasks):
    locations = fs.layout_snapshot()
    sizes = {cid: fs.chunk(cid).size for t in tasks for cid in t.inputs}
    return locations, sizes


class TestBuildCsr:
    def test_ptr_arrays_are_monotonic_and_bound_edges(self):
        fs, tasks, placement = _workload()
        locations, sizes = _graph_inputs(fs, tasks)
        csr = build_csr(tasks, locations, sizes, placement)
        assert csr.proc_ptr[0] == 0 and csr.task_ptr[0] == 0
        assert csr.proc_ptr[-1] == csr.num_edges == csr.task_ptr[-1]
        assert csr.proc_ptr == sorted(csr.proc_ptr)
        assert csr.task_ptr == sorted(csr.task_ptr)
        assert len(csr.proc_task) == len(csr.proc_weight) == csr.num_edges
        assert len(csr.task_rank) == len(csr.task_weight) == csr.num_edges

    def test_process_rows_ascend_by_task_id_task_rows_by_rank(self):
        fs, tasks, placement = _workload()
        locations, sizes = _graph_inputs(fs, tasks)
        csr = build_csr(tasks, locations, sizes, placement)
        for rank in range(csr.num_processes):
            row, _ = csr.proc_row(rank)
            assert row == sorted(row)
        for tid in range(csr.num_tasks):
            row, _ = csr.task_row(tid)
            assert row == sorted(row)

    def test_both_sides_hold_the_same_edge_set(self):
        fs, tasks, placement = _workload()
        locations, sizes = _graph_inputs(fs, tasks)
        csr = build_csr(tasks, locations, sizes, placement)
        proc_side = {
            (rank, t): w
            for rank in range(csr.num_processes)
            for t, w in zip(*csr.proc_row(rank))
        }
        task_side = {
            (r, tid): w
            for tid in range(csr.num_tasks)
            for r, w in zip(*csr.task_row(tid))
        }
        assert proc_side == task_side
        assert len(proc_side) == csr.num_edges

    def test_rejects_non_contiguous_task_ids(self):
        fs, tasks, placement = _workload()
        locations, sizes = _graph_inputs(fs, tasks)
        shuffled = list(reversed(tasks))
        with pytest.raises(ValueError, match="task ids"):
            build_csr(shuffled, locations, sizes, placement)

    def test_rejects_missing_layout_and_size(self):
        placement = ProcessPlacement.one_per_node(2)
        cid = ChunkId("x", 0)
        tasks = [Task(0, (cid,))]
        with pytest.raises(KeyError, match="layout"):
            build_csr(tasks, {}, {cid: MB}, placement)
        with pytest.raises(KeyError, match="size"):
            build_csr(tasks, {cid: (0,)}, {}, placement)


class TestCsrFromRows:
    def test_preserves_row_insertion_order(self):
        colocated = {0: {3: 10, 1: 20}, 1: {2: 5}}
        task_ranks = {1: [0], 2: [1], 3: [0]}
        csr = csr_from_rows(2, 4, colocated, task_ranks)
        # Process row 0 keeps the dict's 3-then-1 insertion order.
        assert csr.proc_row(0) == ([3, 1], [10, 20])
        assert csr.proc_row(1) == ([2], [5])
        assert csr.task_row(3) == ([0], [10])

    def test_dict_constructed_graph_round_trips_through_csr(self):
        colocated = {0: {0: 7, 2: 9}, 1: {1: 4}}
        task_ranks = {0: [0], 1: [1], 2: [0]}
        sizes = {ChunkId("a", i): 16 * MB for i in range(3)}
        tasks = [Task(i, (ChunkId("a", i),)) for i in range(3)]
        graph = LocalityGraph(
            placement=ProcessPlacement.one_per_node(2),
            tasks=tasks,
            sizes=sizes,
            colocated=colocated,
            task_ranks=task_ranks,
        )
        assert graph.csr.num_edges == 3
        assert graph.edges_of_process(0) == {0: 7, 2: 9}
        assert graph.ranks_of_task(2) == [0]
        assert graph.edge_weight(1, 1) == 4
        assert graph.edge_weight(1, 0) == 0


class TestGraphViewsAgree:
    def test_dict_views_mirror_the_csr(self):
        fs, tasks, placement = _workload()
        graph = graph_from_filesystem(fs, tasks, placement, cache=False)
        csr = graph.csr
        for rank in range(csr.num_processes):
            row_t, row_w = csr.proc_row(rank)
            assert graph.edges_of_process(rank) == dict(zip(row_t, row_w))
            assert graph.colocated[rank] == dict(zip(row_t, row_w))
        for tid in range(csr.num_tasks):
            row_r, _ = csr.task_row(tid)
            assert graph.ranks_of_task(tid) == row_r
            assert graph.task_ranks[tid] == row_r


class TestGraphCache:
    def setup_method(self):
        clear_graph_cache()

    def teardown_method(self):
        clear_graph_cache()

    def test_repeat_lookup_hits_and_returns_the_same_graph(self):
        fs, tasks, placement = _workload()
        perf = SchedPerf()
        g1 = graph_from_filesystem(fs, tasks, placement, perf=perf)
        g2 = graph_from_filesystem(fs, tasks, placement, perf=perf)
        assert g2 is g1
        stats = graph_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert perf.cache_hits == 1 and perf.cache_misses == 1
        assert perf.graph_builds == 1

    def test_layout_change_misses(self):
        fs, tasks, placement = _workload()
        g1 = graph_from_filesystem(fs, tasks, placement)
        fs.put_dataset(uniform_dataset("extra", 4, chunk_size=16 * MB))
        g2 = graph_from_filesystem(fs, tasks, placement)
        assert g2 is not g1
        assert graph_cache_stats()["misses"] == 2

    def test_different_task_objects_verify_by_equality(self):
        # Same layout/placement/count but different task content must not
        # be served the cached graph (the key omits the task list; lookup
        # re-verifies it by equality).
        fs, tasks, placement = _workload()
        g1 = graph_from_filesystem(fs, tasks, placement)
        # Equal-content copies of the original tasks hit.
        copies = [Task(t.task_id, t.inputs) for t in tasks]
        assert graph_from_filesystem(fs, copies, placement) is g1
        # Different content misses (and displaces the entry for this key).
        swapped = list(tasks)
        swapped[0] = Task(0, tasks[1].inputs)
        swapped[1] = Task(1, tasks[0].inputs)
        g2 = graph_from_filesystem(fs, swapped, placement)
        assert g2 is not g1

    def test_cache_false_bypasses(self):
        fs, tasks, placement = _workload()
        g1 = graph_from_filesystem(fs, tasks, placement)
        g2 = graph_from_filesystem(fs, tasks, placement, cache=False)
        assert g2 is not g1
        assert graph_cache_stats()["hits"] == 0

    def test_lru_evicts_oldest_entry(self):
        placement = ProcessPlacement.one_per_node(4)
        systems = []
        for seed in range(GRAPH_CACHE_CAPACITY + 1):
            fs = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=seed)
            fs.put_dataset(uniform_dataset(f"d{seed}", 8, chunk_size=16 * MB))
            tasks = tasks_from_dataset(
                uniform_dataset(f"d{seed}", 8, chunk_size=16 * MB)
            )
            systems.append((fs, tasks))
            graph_from_filesystem(fs, tasks, placement)
        assert graph_cache_stats()["entries"] == GRAPH_CACHE_CAPACITY
        # The first (oldest) entry was evicted: looking it up re-builds.
        fs0, tasks0 = systems[0]
        graph_from_filesystem(fs0, tasks0, placement)
        assert graph_cache_stats()["misses"] == GRAPH_CACHE_CAPACITY + 2

    def test_scratch_is_per_graph_and_lazy(self):
        fs, tasks, placement = _workload()
        g1 = graph_from_filesystem(fs, tasks, placement)
        assert g1._scratch is None
        g1.scratch["k"] = 1
        assert graph_from_filesystem(fs, tasks, placement).scratch["k"] == 1
        g2 = graph_from_filesystem(fs, tasks, placement, cache=False)
        assert "k" not in g2.scratch


class TestSlots:
    """The hot-path containers must stay __dict__-free (satellite a)."""

    @pytest.mark.parametrize(
        "obj",
        [
            LocalityCSR(1, 1, [0, 0], [], [], [0, 0], [], []),
            LocalityGraph(
                ProcessPlacement.one_per_node(1), [], {}, {}, {}
            ),
            FlowNetwork(2),
        ],
        ids=["LocalityCSR", "LocalityGraph", "FlowNetwork"],
    )
    def test_no_instance_dict(self, obj):
        assert not hasattr(obj, "__dict__")
        with pytest.raises(AttributeError):
            obj.arbitrary_new_attribute = 1
