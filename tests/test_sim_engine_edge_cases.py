"""Edge-case tests for the simulation engine's numerics and ordering."""

import pytest

from repro.simulate import Resource, Simulation


@pytest.fixture
def sim():
    s = Simulation()
    s.add_resource(Resource("r", 10.0))
    return s


class TestSimultaneity:
    def test_equal_flows_finish_together(self, sim):
        ends = []
        for _ in range(3):
            sim.start_flow(30, ["r"], lambda f: ends.append(sim.now))
        sim.run()
        assert len(ends) == 3
        assert max(ends) - min(ends) < 1e-6

    def test_timer_and_completion_at_same_instant(self, sim):
        order = []
        sim.start_flow(10, ["r"], lambda f: order.append("flow"))
        sim.schedule(1.0, lambda: order.append("timer"))
        sim.run()
        # Flow completes exactly at t=1.0 too; both fire, flow first
        # (completions are processed before an equal-time timer).
        assert set(order) == {"flow", "timer"}
        assert sim.now == pytest.approx(1.0)

    def test_many_staggered_flows_conserve_time(self, sim):
        """Flows arriving every 0.5 s; total service = total work / rate."""
        ends = []
        for i in range(5):
            sim.schedule(
                0.5 * i,
                lambda: sim.start_flow(10, ["r"], lambda f: ends.append(sim.now)),
            )
        sim.run()
        assert len(ends) == 5
        # Work conservation: the server is busy from 0 to completion of all
        # 50 units => last completion at >= 50/10 = 5.0 s.
        assert max(ends) == pytest.approx(5.0, abs=1e-6)


class TestTinyFlows:
    def test_very_small_flow_completes(self, sim):
        ends = []
        sim.start_flow(1e-9, ["r"], lambda f: ends.append(sim.now))
        sim.run()
        assert len(ends) == 1
        assert ends[0] < 1e-6

    def test_huge_and_tiny_flows_coexist(self, sim):
        ends = {}
        sim.start_flow(1e9, ["r"], lambda f: ends.__setitem__("huge", sim.now))
        sim.start_flow(1.0, ["r"], lambda f: ends.__setitem__("tiny", sim.now))
        sim.run()
        assert ends["tiny"] < 1.0
        assert ends["huge"] == pytest.approx((1e9 + 1) / 10.0, rel=1e-6)


class TestCallbackEffects:
    def test_callback_starting_flow_on_same_resource(self, sim):
        ends = []

        def chain(_f):
            if len(ends) < 3:
                ends.append(sim.now)
                sim.start_flow(10, ["r"], chain)

        sim.start_flow(10, ["r"], chain)
        sim.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_callback_scheduling_timer(self, sim):
        events = []
        sim.start_flow(
            10, ["r"],
            lambda f: sim.schedule(2.0, lambda: events.append(sim.now)),
        )
        sim.run()
        assert events == [pytest.approx(3.0)]

    def test_exception_in_callback_propagates(self, sim):
        def boom(_f):
            raise RuntimeError("callback exploded")

        sim.start_flow(1, ["r"], boom)
        with pytest.raises(RuntimeError, match="exploded"):
            sim.run()


class TestRateDynamics:
    def test_rate_changes_tracked_piecewise(self, sim):
        """One flow alone (10/s), joined by another (5/s each), then alone
        again — exact piecewise-linear accounting."""
        ends = {}
        sim.start_flow(15, ["r"], lambda f: ends.__setitem__("a", sim.now))
        sim.schedule(
            1.0, lambda: sim.start_flow(5, ["r"], lambda f: ends.__setitem__("b", sim.now))
        )
        sim.run()
        # a: 10 units by t=1, then 5/s. b: 5/s from t=1, needs 1 s -> both
        # race; b finishes 5 units at t=2; a has 15-10-5=0 at t=2 as well.
        assert ends["b"] == pytest.approx(2.0)
        assert ends["a"] == pytest.approx(2.0)

    def test_capped_flow_releases_headroom_over_time(self, sim):
        ends = {}
        sim.start_flow(4, ["r"], lambda f: ends.__setitem__("capped", sim.now),
                       rate_cap=2.0)
        sim.start_flow(16, ["r"], lambda f: ends.__setitem__("free", sim.now))
        sim.run()
        # capped: 2/s -> done at 2.0.  free: 8/s for 2 s (16 moved) -> also 2.0.
        assert ends["capped"] == pytest.approx(2.0)
        assert ends["free"] == pytest.approx(2.0)
