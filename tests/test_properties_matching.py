"""Property-based tests for the Opass matching algorithms.

Invariants on random locality graphs:
* single-data: every task assigned exactly once; quotas respected; the
  locality achieved is at least the best baseline's; the matched-task count
  equals the max-flow value (optimal by LP duality, checked vs networkx);
* multi-data: exact quotas, full coverage, determinism, and the matching
  never loses to a random assignment in expectation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import equal_quotas, locality_fraction
from repro.core.baselines import random_assignment, rank_interval_assignment
from repro.core.bipartite import ProcessPlacement, build_locality_graph
from repro.core.multi_data import optimize_multi_data
from repro.core.single_data import optimize_single_data
from repro.core.tasks import Task
from repro.dfs.chunk import MB, ChunkId


@st.composite
def locality_graphs(draw):
    """Random single-input-task locality graphs."""
    m = draw(st.integers(min_value=1, max_value=8))
    n = draw(st.integers(min_value=1, max_value=24))
    r = draw(st.integers(min_value=1, max_value=min(3, m)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    tasks, locations, sizes = [], {}, {}
    for t in range(n):
        cid = ChunkId(f"c{t}", 0)
        tasks.append(Task(t, (cid,)))
        locations[cid] = tuple(int(x) for x in rng.choice(m, size=r, replace=False))
        sizes[cid] = int(rng.integers(1, 5)) * MB
    placement = ProcessPlacement.one_per_node(m)
    return build_locality_graph(tasks, locations, sizes, placement)


@st.composite
def multi_graphs(draw):
    """Random multi-input-task locality graphs."""
    m = draw(st.integers(min_value=2, max_value=6))
    n = draw(st.integers(min_value=1, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    inputs_per_task = draw(st.integers(min_value=1, max_value=3))
    rng = np.random.default_rng(seed)
    tasks, locations, sizes = [], {}, {}
    for t in range(n):
        cids = []
        for j in range(inputs_per_task):
            cid = ChunkId(f"c{t}-{j}", 0)
            cids.append(cid)
            locations[cid] = tuple(
                int(x) for x in rng.choice(m, size=min(2, m), replace=False)
            )
            sizes[cid] = int(rng.integers(1, 40)) * MB
        tasks.append(Task(t, tuple(cids)))
    placement = ProcessPlacement.one_per_node(m)
    return build_locality_graph(tasks, locations, sizes, placement)


class TestSingleDataProperties:
    @given(locality_graphs())
    @settings(max_examples=50, deadline=None)
    def test_assignment_valid_and_quota_bound(self, graph):
        result = optimize_single_data(graph)
        quotas = equal_quotas(graph.num_tasks, graph.num_processes)
        result.assignment.validate(graph.num_tasks, quotas=quotas)

    @given(locality_graphs())
    @settings(max_examples=50, deadline=None)
    def test_matched_count_le_tasks_and_flow_consistent(self, graph):
        result = optimize_single_data(graph)
        assert 0 <= result.max_flow <= graph.num_tasks
        assert len(result.matched_tasks) <= result.max_flow or result.max_flow == 0
        assert len(result.matched_tasks) + len(result.fallback_tasks) == graph.num_tasks

    @given(locality_graphs())
    @settings(max_examples=50, deadline=None)
    def test_beats_or_ties_baselines_in_local_task_count(self, graph):
        """Unit-capacity max-flow maximises the number of locally-served
        tasks subject to the quota vector; any same-quota assignment (the
        rank-interval baseline in particular) can never serve more tasks
        locally."""
        from repro.core.assignment import fully_local_tasks

        result = optimize_single_data(graph)
        baseline = rank_interval_assignment(graph.num_tasks, graph.num_processes)
        assert len(fully_local_tasks(result.assignment, graph)) >= len(
            fully_local_tasks(baseline, graph)
        )

    @given(locality_graphs())
    @settings(max_examples=30, deadline=None)
    def test_optimal_vs_networkx(self, graph):
        import networkx as nx

        result = optimize_single_data(graph)
        quotas = equal_quotas(graph.num_tasks, graph.num_processes)
        g = nx.DiGraph()
        g.add_node("s")
        g.add_node("t")
        for r in range(graph.num_processes):
            g.add_edge("s", f"p{r}", capacity=quotas[r])
            for t in graph.edges_of_process(r):
                g.add_edge(f"p{r}", f"f{t}", capacity=1)
        for t in range(graph.num_tasks):
            g.add_edge(f"f{t}", "t", capacity=1)
        assert result.max_flow == nx.maximum_flow_value(g, "s", "t")

    @given(locality_graphs(), st.sampled_from(["dinic", "edmonds_karp"]))
    @settings(max_examples=30, deadline=None)
    def test_solver_choice_same_flow(self, graph, algorithm):
        a = optimize_single_data(graph, algorithm=algorithm)
        b = optimize_single_data(graph, algorithm="dinic")
        assert a.max_flow == b.max_flow

    @given(locality_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matched_tasks_are_local(self, graph):
        result = optimize_single_data(graph)
        owner = result.assignment.process_of()
        for t in result.matched_tasks:
            assert graph.edge_weight(owner[t], t) > 0


class TestMultiDataProperties:
    @given(multi_graphs())
    @settings(max_examples=50, deadline=None)
    def test_exact_quotas_and_coverage(self, graph):
        result = optimize_multi_data(graph)
        quotas = equal_quotas(graph.num_tasks, graph.num_processes)
        result.assignment.validate(
            graph.num_tasks, quotas=quotas, exact_quota=True
        )

    @given(multi_graphs())
    @settings(max_examples=50, deadline=None)
    def test_local_bytes_consistent(self, graph):
        result = optimize_multi_data(graph)
        owner = result.assignment.process_of()
        recomputed = sum(graph.edge_weight(r, t) for t, r in owner.items())
        assert result.local_bytes == recomputed
        assert 0 <= result.local_bytes <= graph.total_bytes()

    @given(multi_graphs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, graph):
        a = optimize_multi_data(graph).assignment.tasks_of
        b = optimize_multi_data(graph).assignment.tasks_of
        assert a == b

    @given(multi_graphs())
    @settings(max_examples=30, deadline=None)
    def test_complexity_bound_respected(self, graph):
        """The paper's O(m·n) bound: no process proposes to a task twice."""
        result = optimize_multi_data(graph)
        assert result.proposals <= graph.num_processes * graph.num_tasks
        assert result.reassignments <= result.proposals

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_single_process_takes_everything(self, n, seed):
        rng = np.random.default_rng(seed)
        tasks, locations, sizes = [], {}, {}
        for t in range(n):
            cid = ChunkId(f"c{t}", 0)
            tasks.append(Task(t, (cid,)))
            locations[cid] = (0,)
            sizes[cid] = int(rng.integers(1, 10)) * MB
        graph = build_locality_graph(
            tasks, locations, sizes, ProcessPlacement.one_per_node(1)
        )
        result = optimize_multi_data(graph)
        assert result.assignment.tasks_of[0] is not None
        assert sorted(result.assignment.tasks_of[0]) == list(range(n))
        assert result.local_bytes == graph.total_bytes()
