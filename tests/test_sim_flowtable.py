"""FlowTable slot recycling under generation stamps.

Extends the PR 4 stale-slot regression (``current_rate`` after cancel)
to the structure-of-arrays table itself: slots are recycled through a
free list, and the per-slot 64-bit generation stamp is what lets any
holder of a ``(fid, generation)`` pair detect that its slot has been
re-tenanted instead of silently reading the younger flow's state.

The fuzz test drives a live :class:`Simulation` through random
start/cancel/finish interleavings and checks, after every step, that
``current_rate`` answers from the querying flow's own tenancy — never
from a recycled slot — and that every release bumps the stamp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulate import Simulation
from repro.simulate.flows import Flow
from repro.simulate.flowtable import FlowTable
from repro.simulate.resources import Resource


def make_flow(size=100.0, path=("r0",)):
    return Flow(size=size, path=tuple(path))


class TestSlotLifecycle:
    def test_acquire_stashes_fid_and_release_clears_it(self):
        table = FlowTable()
        f = make_flow()
        fid = table.acquire(f, now=0.0)
        assert f.fid == fid
        assert table.flow_at[fid] is f
        assert table.rem[fid] == f.remaining
        assert table.rate[fid] == 0.0
        table.release(f)
        assert f.fid == -1
        assert table.flow_at[fid] is None

    def test_release_restores_sentinels(self):
        table = FlowTable()
        f = make_flow(size=42.0)
        fid = table.acquire(f, now=1.0)
        table.rate[fid] = 7.0
        table.release(f)
        # A hole must predict completion at +inf and never drain.
        assert table.rem[fid] == np.inf
        assert table.rate[fid] == 1.0

    def test_generation_bumps_on_every_release(self):
        table = FlowTable()
        f = make_flow()
        fid = table.acquire(f, now=0.0)
        gen0 = table.gen_of(fid)
        table.release(f)
        assert table.gen_of(fid) == gen0 + 1
        g = make_flow()
        assert table.acquire(g, now=0.0) == fid  # LIFO recycle
        assert table.gen_of(fid) == gen0 + 1  # acquire does not bump
        table.release(g)
        assert table.gen_of(fid) == gen0 + 2

    def test_stale_pair_detects_recycle(self):
        table = FlowTable()
        f = make_flow()
        fid = table.acquire(f, now=0.0)
        pair = (fid, table.gen_of(fid))
        table.release(f)
        g = make_flow()
        assert table.acquire(g, now=0.0) == fid
        # The old tenancy's pair no longer matches: a reader holding it
        # must not interpret the slot's arrays as f's state.
        assert table.gen_of(pair[0]) != pair[1]

    def test_views_track_growth(self):
        table = FlowTable()
        flows = [make_flow() for _ in range(3)]
        for f in flows:
            table.acquire(f, now=0.0)
        rem, rate, scratch = table.views()
        assert len(rem) == len(rate) == len(scratch) == 3
        assert rem.base is table.rem

    def test_settle_spares_free_slots(self):
        table = FlowTable()
        f, g = make_flow(size=10.0), make_flow(size=10.0)
        table.acquire(f, now=0.0)
        fid_g = table.acquire(g, now=0.0)
        table.rate[:2] = 2.0
        table.release(g)
        table.settle(1.0)
        assert table.rem[f.fid] == pytest.approx(8.0)
        assert table.rem[fid_g] == np.inf  # hole undisturbed


class TestRecyclingFuzz:
    """Random start/cancel/finish interleavings on a live engine."""

    RESOURCES = 4
    STEPS = 300

    def _make_sim(self):
        sim = Simulation(allocator="component")
        for i in range(self.RESOURCES):
            sim.add_resource(Resource(f"r{i}", 10.0))
        return sim

    def test_current_rate_never_reads_a_recycled_slot(self):
        rng = np.random.default_rng(20260809)
        sim = self._make_sim()
        table = sim._table
        live: list = []
        dead: list[tuple] = []  # (flow, fid, generation) at death
        gen_floor: dict[int, int] = {}

        def on_finish(flow):
            live.remove(flow)
            dead.append((flow, death_fid[flow.flow_id], death_gen[flow.flow_id]))

        # fid/gen must be captured *before* the engine releases the slot;
        # the finish callback runs after, so stash them at start/step time.
        death_fid: dict[int, int] = {}
        death_gen: dict[int, int] = {}

        for _ in range(self.STEPS):
            for f in live:
                death_fid[f.flow_id] = f.fid
                death_gen[f.flow_id] = table.gen_of(f.fid)
            op = rng.integers(3)
            if op == 0 or not live:
                size = float(rng.integers(5, 200))
                path = [f"r{i}" for i in sorted(
                    rng.choice(self.RESOURCES, size=int(rng.integers(1, 3)),
                               replace=False))]
                flow = sim.start_flow(size, path, on_finish)
                live.append(flow)
            elif op == 1:
                victim = live.pop(int(rng.integers(len(live))))
                death_fid[victim.flow_id] = victim.fid
                death_gen[victim.flow_id] = table.gen_of(victim.fid)
                sim.cancel_flow(victim)
                dead.append((victim, death_fid[victim.flow_id],
                             death_gen[victim.flow_id]))
            else:
                sim.run(until=sim.now + float(rng.uniform(0.1, 3.0)))

            # Live flows answer from their own slot, dead flows from the
            # membership guard — never from whatever tenants their old
            # slots now have.
            for f in live:
                assert table.flow_at[f.fid] is f
                assert sim.current_rate(f) == float(table.rate[f.fid])
            for f, fid, gen in dead:
                assert f.fid == -1
                assert sim.current_rate(f) == 0.0
                # The death-time pair is verifiably stale: the release
                # itself bumped the stamp.
                assert table.gen_of(fid) > gen
            # Generations only move forward.
            for fid in range(table.slots):
                g = table.gen_of(fid)
                assert g >= gen_floor.get(fid, 0)
                gen_floor[fid] = g

        sim.run()
        assert not live
