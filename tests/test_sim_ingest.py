"""Tests for the HDFS write pipeline (timed ingest)."""

import pytest

from repro.core import (
    ProcessPlacement,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    HdfsWriterLocalPlacement,
    uniform_dataset,
)
from repro.dfs.chunk import MB
from repro.simulate import DatasetIngest, ParallelReadRun, StaticSource, pipeline_path
from repro.simulate.resources import disk, nic_rx, nic_tx


class TestPipelinePath:
    def test_all_remote_pipeline(self):
        path = pipeline_path(9, (1, 2, 3))
        assert path == [
            nic_tx(9), nic_rx(1), disk(1),
            nic_tx(1), nic_rx(2), disk(2),
            nic_tx(2), nic_rx(3), disk(3),
        ]

    def test_writer_local_first_replica_skips_network(self):
        path = pipeline_path(1, (1, 2))
        assert path == [disk(1), nic_tx(1), nic_rx(2), disk(2)]

    def test_single_local_replica_is_disk_only(self):
        path = pipeline_path(4, (4,))
        assert path == [disk(4)]

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError):
            pipeline_path(0, ())


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(
        spec, placement=HdfsWriterLocalPlacement(), seed=7
    )
    ds = uniform_dataset("w", 24, chunk_size=16 * MB)
    writers = ProcessPlacement.one_per_node(8)
    return fs, writers, ds


class TestIngest:
    def test_all_chunks_written_and_registered(self, env):
        fs, writers, ds = env
        result = DatasetIngest(fs, writers, ds, seed=1).run()
        assert len(result.records) == 24
        assert result.bytes_written == 24 * 16 * MB
        assert fs.namenode.exists("w/part-00000")
        layout = fs.layout_snapshot()
        assert len(layout) == 24
        for cid, nodes in layout.items():
            for node in nodes:
                assert fs.datanodes[node].holds(cid)

    def test_first_replica_on_writer(self, env):
        fs, writers, ds = env
        result = DatasetIngest(fs, writers, ds, seed=1).run()
        for rec in result.records:
            assert rec.pipeline[0] == rec.writer_node

    def test_records_well_formed(self, env):
        fs, writers, ds = env
        result = DatasetIngest(fs, writers, ds, seed=1).run()
        for rec in result.records:
            assert rec.end_time > rec.issue_time
            assert len(set(rec.pipeline)) == len(rec.pipeline) == 3

    def test_written_dataset_readable(self, env):
        fs, writers, ds = env
        DatasetIngest(fs, writers, ds, seed=1).run()
        tasks = tasks_from_dataset(fs.dataset("w"))
        run = ParallelReadRun(
            fs, writers, tasks,
            StaticSource(rank_interval_assignment(24, 8)), seed=2,
        ).run()
        assert run.tasks_completed == 24
        # Writers wrote their own interval with a local first replica, so
        # the aligned reader gets everything locally.
        assert run.locality_fraction == 1.0

    def test_more_replication_slower_ingest(self):
        def ingest(r):
            fs = DistributedFileSystem(
                ClusterSpec.homogeneous(8),
                replication=r,
                placement=HdfsWriterLocalPlacement(),
                seed=7,
            )
            ds = uniform_dataset("w", 16, chunk_size=16 * MB)
            writers = ProcessPlacement.one_per_node(8)
            return DatasetIngest(fs, writers, ds, seed=1).run()

        r1 = ingest(1)
        r3 = ingest(3)
        # r=1 writer-local: pure disk writes, fast and flat.
        assert r1.write_stats()["avg"] < r3.write_stats()["avg"]
        assert r1.makespan < r3.makespan

    def test_custom_assignment(self, env):
        fs, writers, ds = env
        from repro.core import Assignment

        a = Assignment({0: list(range(24))} | {r: [] for r in range(1, 8)})
        result = DatasetIngest(fs, writers, ds, assignment=a, seed=1).run()
        assert all(rec.writer_rank == 0 for rec in result.records)
        # One writer streaming 24 chunks sequentially.
        ends = [r.end_time for r in sorted(result.records, key=lambda r: r.seq)]
        assert ends == sorted(ends)

    def test_duplicate_registration_rejected(self, env):
        fs, writers, ds = env
        DatasetIngest(fs, writers, ds, seed=1).run()
        with pytest.raises(ValueError):
            DatasetIngest(fs, writers, ds, seed=1).run()
