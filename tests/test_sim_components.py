"""Engine-level tests for the component allocator and its lazy heap.

Covers what the golden and property suites don't: the perf-counter
semantics of the lazy-invalidation completion heap, the
``current_rate``-after-cancel regression (stale slot recycled by a
younger flow), ``run(until=...)`` resumability, the tie-snap firing
order, and allocator selection/validation.
"""

from __future__ import annotations

import pytest

import repro.simulate.engine as engine_mod
from repro.simulate import REMAINING_EPS, Simulation
from repro.simulate.resources import Resource


def make_sim(allocator=None, resources=4, capacity=10.0):
    sim = Simulation(allocator=allocator)
    for i in range(resources):
        sim.add_resource(Resource(f"r{i}", capacity))
    return sim


class TestAllocatorSelection:
    def test_default_is_component(self):
        assert engine_mod.DEFAULT_ALLOCATOR == "component"
        sim = Simulation()
        assert sim.allocator == "component"

    def test_default_follows_module_global(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "DEFAULT_ALLOCATOR", "reference")
        assert Simulation().allocator == "reference"

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            Simulation(allocator="magic")


class TestLazyHeap:
    def test_no_full_rebuilds_and_component_counters(self):
        sim = make_sim(resources=6)
        done = []
        # Disjoint singleton components with staggered sizes: every
        # completion is its own event and dirties only its own component.
        for i in range(6):
            sim.start_flow(10.0 * (i + 1), [f"r{i}"], done.append)
        sim.run()
        p = sim.perf
        assert len(done) == 6
        assert p.prediction_rebuilds == 0
        assert p.heap_pushes >= 6
        assert p.components == 6
        assert p.component_size_max == 1
        # Each event re-solves one singleton component, never the world.
        assert p.component_flows_resolved == p.component_solves
        assert p.snapshot()["component_size_mean"] == 1.0

    def test_stale_entries_skipped_on_pop(self):
        sim = make_sim(resources=1)
        done = []
        # Two flows sharing one resource: the first finish changes the
        # survivor's rate, invalidating its parked prediction.
        sim.start_flow(10.0, ["r0"], done.append)
        sim.start_flow(30.0, ["r0"], done.append)
        sim.run()
        assert len(done) == 2
        assert sim.perf.stale_pops >= 1
        assert sim.perf.prediction_rebuilds == 0

    def test_tie_snap_fires_lowest_flow_id_first(self):
        # Four equal flows on disjoint resources all finish at the same
        # simulated instant; the snap policy must retire them in flow_id
        # (= creation) order, like the cache engines' argmin tie-break.
        sim = make_sim(resources=4)
        order = []
        flows = [
            sim.start_flow(50.0, [f"r{i}"], lambda f: order.append(f.flow_id))
            for i in range(4)
        ]
        sim.run()
        assert order == sorted(f.flow_id for f in flows)
        assert sim.now == pytest.approx(5.0)


class TestCurrentRate:
    def test_rates_reflect_sharing(self):
        sim = make_sim(resources=1)
        a = sim.start_flow(100.0, ["r0"], lambda f: None)
        assert sim.current_rate(a) == 10.0
        b = sim.start_flow(100.0, ["r0"], lambda f: None)
        assert sim.current_rate(a) == 5.0
        assert sim.current_rate(b) == 5.0

    def test_cancelled_flow_reads_zero_through_recycled_slot(self):
        """Regression: after cancel, the flow's old slot may be recycled
        by a younger flow — querying the cancelled flow must return 0.0
        from the membership check, never the recycled slot's rate, and
        must not trigger a spurious re-solve."""
        sim = make_sim(resources=2)
        a = sim.start_flow(100.0, ["r0"], lambda f: None)
        assert sim.current_rate(a) == 10.0
        sim.cancel_flow(a)
        # The next start recycles a's slot id before any refresh runs.
        b = sim.start_flow(100.0, ["r1"], lambda f: None)
        solves_before = sim.perf.solves
        assert sim.current_rate(a) == 0.0
        assert sim.perf.solves == solves_before  # no spurious solve
        assert sim.current_rate(b) == 10.0

    def test_finished_flow_reads_zero(self):
        sim = make_sim(resources=1)
        done = []
        a = sim.start_flow(10.0, ["r0"], done.append)
        sim.run()
        assert done == [a]
        assert sim.current_rate(a) == 0.0

    def test_cancel_credits_partial_progress(self):
        sim = make_sim(resources=1)
        a = sim.start_flow(100.0, ["r0"], lambda f: None)
        sim.schedule(4.0, lambda: sim.cancel_flow(a))
        sim.run()
        assert a.remaining == pytest.approx(60.0, abs=REMAINING_EPS)


class TestRunUntil:
    @pytest.mark.parametrize("allocator", ["component", "incremental", "reference"])
    def test_pause_and_resume_matches_single_shot(self, allocator):
        def build():
            sim = make_sim(allocator=allocator, resources=3)
            done = []
            for i in range(3):
                for k in range(3):
                    sim.start_flow(
                        10.0 * (i + 1) + 3.0 * k, [f"r{i}"], done.append
                    )
            return sim, done

        sim_a, done_a = build()
        end_a = sim_a.run()

        sim_b, done_b = build()
        sim_b.run(until=2.5)
        assert sim_b.now == 2.5
        mid = len(done_b)
        end_b = sim_b.run()
        assert mid < len(done_b) == len(done_a) == 9
        # Pausing splits one settle interval in two, which perturbs the
        # drained remainders in the last ulp (all engines, pre-existing);
        # the retire order must be identical and times within float noise.
        assert end_b == pytest.approx(end_a, rel=1e-12)
        # flow_id is a process-global counter, so normalise per run.
        base_a = min(f.flow_id for f in done_a)
        base_b = min(f.flow_id for f in done_b)
        assert [f.flow_id - base_b for f in done_b] == [
            f.flow_id - base_a for f in done_a
        ]


class TestCrossEngineAgreement:
    def test_component_matches_reference_end_to_end(self):
        def makespan(allocator):
            sim = make_sim(allocator=allocator, resources=4)
            done = []
            for i in range(4):
                for k in range(4):
                    sim.start_flow(
                        7.0 * (i + 1) + 2.0 * k + 0.5,
                        [f"r{i}", f"r{(i + 1) % 4}"],
                        done.append,
                    )
            end = sim.run()
            return end, [f.flow_id for f in done]

        ref_end, ref_order = makespan("reference")
        comp_end, comp_order = makespan("component")
        assert comp_end == pytest.approx(ref_end, rel=1e-9)
        # flow_ids differ across runs (global counter) but the relative
        # retire order must match.
        assert [o - min(ref_order) for o in ref_order] == [
            o - min(comp_order) for o in comp_order
        ]
