"""Tests for layout snapshot save/restore."""

import json

import pytest

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    load_snapshot,
    restore_snapshot,
    save_snapshot,
    snapshot_to_dict,
    uniform_dataset,
)
from repro.dfs.chunk import MB, dataset_from_sizes


@pytest.fixture
def fs():
    f = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=67)
    f.put_dataset(uniform_dataset("a", 12, chunk_size=4 * MB))
    f.put_dataset(dataset_from_sizes("b", [3 * MB, 9 * MB], chunk_size=4 * MB))
    return f


class TestRoundTrip:
    def test_layout_identical_after_restore(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=999)
        names = load_snapshot(fresh, path)
        assert sorted(names) == ["a", "b"]
        assert fresh.layout_snapshot() == fs.layout_snapshot()

    def test_datanode_inventories_match(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=999)
        load_snapshot(fresh, path)
        for nid in range(8):
            assert (
                sorted(fresh.datanodes[nid].chunk_ids, key=str)
                == sorted(fs.datanodes[nid].chunk_ids, key=str)
            )
            assert fresh.datanodes[nid].stored_bytes == fs.datanodes[nid].stored_bytes

    def test_multichunk_files_preserved(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=999)
        load_snapshot(fresh, path)
        meta = fresh.namenode.stat("b/part-00001")
        assert [c.size for c in meta.chunks] == [4 * MB, 4 * MB, MB]

    def test_matching_identical_on_restored_layout(self, fs, tmp_path):
        """The point of snapshots: the exact experiment replays elsewhere."""
        placement = ProcessPlacement.one_per_node(8)
        tasks = tasks_from_dataset(fs.dataset("a"))
        original = optimize_single_data(
            graph_from_filesystem(fs, tasks, placement), seed=3
        )
        path = save_snapshot(fs, tmp_path / "layout.json")
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=999)
        load_snapshot(fresh, path)
        replayed = optimize_single_data(
            graph_from_filesystem(fresh, tasks, placement), seed=3
        )
        assert replayed.assignment.tasks_of == original.assignment.tasks_of


class TestValidation:
    def test_larger_target_cluster_ok(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        bigger = DistributedFileSystem(ClusterSpec.homogeneous(12), seed=0)
        load_snapshot(bigger, path)
        assert bigger.layout_snapshot() == fs.layout_snapshot()

    def test_smaller_target_rejected(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        small = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=0)
        with pytest.raises(ValueError, match="nodes"):
            load_snapshot(small, path)

    def test_duplicate_restore_rejected(self, fs, tmp_path):
        path = save_snapshot(fs, tmp_path / "layout.json")
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=0)
        load_snapshot(fresh, path)
        with pytest.raises(ValueError):
            load_snapshot(fresh, path)

    def test_wrong_kind_rejected(self, fs):
        with pytest.raises(ValueError, match="not a layout snapshot"):
            restore_snapshot(fs, {"format": 1, "kind": "assignment"})

    def test_wrong_version_rejected(self, fs):
        with pytest.raises(ValueError, match="unsupported"):
            restore_snapshot(fs, {"format": 9, "kind": "layout_snapshot"})

    def test_snapshot_is_json_serialisable(self, fs):
        json.dumps(snapshot_to_dict(fs))

    def test_malformed_chunk_key_rejected(self, fs):
        doc = snapshot_to_dict(fs)
        doc["locations"]["nokey"] = [0]
        fresh = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=0)
        with pytest.raises(ValueError, match="malformed chunk key"):
            restore_snapshot(fresh, doc)
