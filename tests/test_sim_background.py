"""Tests for background traffic and shared-simulation (multi-tenant) runs."""

import pytest

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.simulate import (
    BackgroundTraffic,
    ParallelReadRun,
    Simulation,
    StaticSource,
    cluster_resources,
)


def _env(nodes=8, chunks=24, seed=5):
    spec = ClusterSpec.homogeneous(nodes)
    fs = DistributedFileSystem(spec, seed=seed)
    fs.put_dataset(uniform_dataset("d", chunks, chunk_size=16 * MB))
    placement = ProcessPlacement.one_per_node(nodes)
    tasks = tasks_from_dataset(fs.dataset("d"))
    return spec, fs, placement, tasks


class TestBackgroundTraffic:
    def test_validation(self):
        spec, *_ = _env()
        sim = Simulation()
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, spec, arrival_rate=0, transfer_size=1, duration=1)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, spec, arrival_rate=1, transfer_size=0, duration=1)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, spec, arrival_rate=1, transfer_size=1, duration=0)
        one = ClusterSpec.homogeneous(1)
        with pytest.raises(ValueError):
            BackgroundTraffic(sim, one, arrival_rate=1, transfer_size=1, duration=1)

    def test_generates_and_completes_transfers(self):
        spec, *_ = _env()
        sim = Simulation()
        sim.add_resources(cluster_resources(spec))
        bg = BackgroundTraffic(
            sim, spec, arrival_rate=5.0, transfer_size=8 * MB, duration=10.0, seed=1
        )
        bg.prepare()
        sim.run()
        assert bg.started > 10  # ~50 expected
        assert bg.completed == bg.started
        assert bg.bytes_moved == bg.started * 8 * MB

    def test_no_arrivals_after_duration(self):
        spec, *_ = _env()
        sim = Simulation()
        sim.add_resources(cluster_resources(spec))
        bg = BackgroundTraffic(
            sim, spec, arrival_rate=5.0, transfer_size=MB, duration=2.0, seed=1
        )
        bg.prepare()
        sim.run()
        # Light transfers: everything wraps shortly after the window.
        assert sim.now < 5.0

    def test_deterministic(self):
        spec, *_ = _env()

        def go():
            sim = Simulation()
            sim.add_resources(cluster_resources(spec))
            bg = BackgroundTraffic(
                sim, spec, arrival_rate=3.0, transfer_size=MB, duration=5.0, seed=9
            )
            bg.prepare()
            sim.run()
            return bg.started, sim.now

        assert go() == go()


class TestSharedSimulation:
    def test_prepare_collect_matches_run(self):
        spec, fs, placement, tasks = _env()
        a = rank_interval_assignment(len(tasks), 8)

        solo = ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=1).run()

        spec, fs, placement, tasks = _env()  # fresh, identical layout
        sim = Simulation()
        sim.add_resources(cluster_resources(spec))
        run = ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=1, sim=sim)
        run.prepare()
        sim.run()
        shared = run.collect()
        assert shared.makespan == pytest.approx(solo.makespan)
        assert shared.tasks_completed == solo.tasks_completed

    def test_collect_before_done_raises(self):
        spec, fs, placement, tasks = _env()
        sim = Simulation()
        sim.add_resources(cluster_resources(spec))
        run = ParallelReadRun(
            fs, placement, tasks,
            StaticSource(rank_interval_assignment(len(tasks), 8)),
            seed=1, sim=sim,
        )
        run.prepare()
        with pytest.raises(RuntimeError, match="before all processes"):
            run.collect()

    def test_background_slows_application(self):
        def run_with(noise: bool) -> float:
            spec, fs, placement, tasks = _env(seed=5)
            graph = graph_from_filesystem(fs, tasks, placement)
            matched = optimize_single_data(graph, seed=1)
            sim = Simulation()
            sim.add_resources(cluster_resources(spec))
            run = ParallelReadRun(
                fs, placement, tasks, StaticSource(matched.assignment),
                seed=1, sim=sim,
            )
            run.prepare()
            if noise:
                bg = BackgroundTraffic(
                    sim, spec, arrival_rate=4.0, transfer_size=16 * MB,
                    duration=30.0, seed=2,
                )
                bg.prepare()
            sim.run()
            return run.collect().io_stats()["avg"]

        assert run_with(True) > run_with(False)

    def test_two_applications_share_cluster(self):
        spec, fs, placement, tasks = _env(chunks=24, seed=5)
        fs.put_dataset(uniform_dataset("d2", 24, chunk_size=16 * MB))
        tasks2 = tasks_from_dataset(fs.dataset("d2"))
        sim = Simulation()
        sim.add_resources(cluster_resources(spec))
        a1 = rank_interval_assignment(24, 8)
        run1 = ParallelReadRun(fs, placement, tasks, StaticSource(a1), seed=1, sim=sim)
        run2 = ParallelReadRun(fs, placement, tasks2, StaticSource(a1), seed=2, sim=sim)
        run1.prepare()
        run2.prepare()
        sim.run()
        r1, r2 = run1.collect(), run2.collect()
        assert r1.tasks_completed == 24
        assert r2.tasks_completed == 24
        # Concurrent apps contend: slower than a lone run of the same app.
        spec, fs_solo, placement, tasks_solo = _env(chunks=24, seed=5)
        solo = ParallelReadRun(
            fs_solo, placement, tasks_solo, StaticSource(a1), seed=1
        ).run()
        assert r1.makespan > solo.makespan
