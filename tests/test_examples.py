"""Smoke tests: every example script runs to completion.

Examples are documentation; these tests keep them from rotting.  Scripts
with CLI flags run at reduced scale; fixed-scale scripts run as shipped
(each finishes in a few seconds on the fluid simulator).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("scaling_analysis.py", []),
    ("paraview_rendering.py", ["--nodes", "8", "--datasets", "16"]),
    ("genome_comparison.py", ["--nodes", "8", "--tasks", "16"]),
    ("mpiblast_dynamic.py", ["--nodes", "8", "--fragments", "16"]),
    ("failure_and_repair.py", []),
    ("data_lifecycle.py", []),
    ("shared_cluster.py", []),
    ("custom_scheduler.py", []),
]

EXPECT = {
    "quickstart.py": "average I/O-time improvement",
    "scaling_analysis.py": "Figure 3",
    "paraview_rendering.py": "total (s)",
    "genome_comparison.py": "Algorithm 1",
    "mpiblast_dynamic.py": "average I/O improvement",
    "failure_and_repair.py": "incremental plan repair",
    "data_lifecycle.py": "reading the ingested dataset",
    "shared_cluster.py": "opass advantage",
    "custom_scheduler.py": "Opass guided lists",
}


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECT[script] in result.stdout, result.stdout[-500:]


def test_all_examples_listed():
    """Every shipped example has a smoke test (and vice versa)."""
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert shipped == covered
