"""Differential property tests for :class:`ComponentAllocator`.

Three invariants, each over random interleavings of flow add/remove
(covering rate caps, concurrency penalties, multi-resource paths and
removal while resources are saturated):

1. **Partition** — after a solve, the allocator's component partition is
   exactly the connected-component partition of the flow–resource graph
   computed by brute-force union-find; between a remove and the next
   solve it may only be a *coarsening* (each true component wholly inside
   one reported component, never split across two).
2. **Per-component exactness** — the solved rate of every flow equals —
   ``==``, not ``approx`` — what the pure reference
   :func:`allocate_rates` produces when handed that flow's component *in
   isolation* (members in active-list order).  This is the invariant the
   engine's component-mode golden pins rest on.
3. **End-to-end agreement** — against one *global* reference solve of
   the whole flow set the rates agree to ≤ 1e-9 relative (the global
   water level interleaves freeze deltas across components, so its float
   rounding may differ in the last ulp — but never more).

A deterministic rack-uplink scenario exercises the merge-then-split path
the random scripts hit only occasionally: remote reads bridging two
nodes' resources through a shared rack uplink.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate.components import ComponentAllocator
from repro.simulate.flows import Flow, allocate_rates
from repro.simulate.resources import Resource


@st.composite
def component_scripts(draw):
    """Resources plus an op script: (add, path, cap) / (remove, index).

    Unlike the single-pool allocator scripts, paths here are short (1–3
    resources out of up to 8) so the graph actually decomposes into
    several components that merge and split as the script runs.
    """
    num_resources = draw(st.integers(min_value=2, max_value=8))
    names = [f"r{i}" for i in range(num_resources)]
    resources = {}
    for n in names:
        cap = draw(st.floats(min_value=1.0, max_value=100.0))
        pen = draw(st.sampled_from([None, 0.0, 0.1, 0.5]))
        resources[n] = cap if pen is None else Resource(n, cap, pen)
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=16))):
        if live and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
        else:
            k = draw(st.integers(min_value=1, max_value=min(3, num_resources)))
            path = tuple(draw(st.permutations(names))[:k])
            cap = draw(
                st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0))
            )
            ops.append(("add", path, cap))
            live += 1
    return resources, ops


def bruteforce_partition(active):
    """Connected components of the flow–resource graph, by union-find."""
    parent = {f: f for f in active}

    def find(f):
        while parent[f] is not f:
            parent[f] = parent[parent[f]]
            f = parent[f]
        return f

    owner = {}
    for f in active:
        for r in f.path:
            if r in owner:
                parent[find(f)] = find(owner[r])
            else:
                owner[r] = f
    groups = {}
    for f in active:
        groups.setdefault(find(f), []).append(f)
    return {frozenset(g) for g in groups.values()}


def build(resources):
    alloc = ComponentAllocator()
    for name, res in resources.items():
        alloc.register(name, res)
    return alloc


def apply_op(alloc, active, op):
    if op[0] == "add":
        _, path, cap = op
        f = Flow(100.0, path, rate_cap=cap)
        alloc.add(f)
        active.append(f)
    else:
        alloc.remove(active.pop(op[1]))


@given(component_scripts())
@settings(max_examples=150, deadline=None)
def test_partition_matches_bruteforce(script):
    resources, ops = script
    alloc = build(resources)
    active: list[Flow] = []
    for op in ops:
        apply_op(alloc, active, op)
        # Pre-solve the partition may be a coarsening: every true
        # component must sit wholly inside one reported component.
        reported = [frozenset(c) for c in alloc.components()]
        for true_comp in bruteforce_partition(active):
            assert sum(1 for c in reported if true_comp <= c) == 1
        alloc.solve()
        # Post-solve it is exact.
        assert {frozenset(c) for c in alloc.components()} == bruteforce_partition(
            active
        )
        assert alloc.component_count == len(bruteforce_partition(active))


@given(component_scripts())
@settings(max_examples=150, deadline=None)
def test_component_rates_exact_vs_isolated_reference(script):
    resources, ops = script
    alloc = build(resources)
    active: list[Flow] = []
    for op in ops:
        apply_op(alloc, active, op)
        rates = alloc.solve()
        assert set(rates) == set(active)
        for members in alloc.components():
            # members are already in active-list order; the reference run
            # on the isolated component must agree bit for bit.
            assert {f: rates[f] for f in members} == allocate_rates(
                members, resources
            )


@given(component_scripts())
@settings(max_examples=150, deadline=None)
def test_end_to_end_close_to_global_reference(script):
    resources, ops = script
    alloc = build(resources)
    active: list[Flow] = []
    for op in ops:
        apply_op(alloc, active, op)
        rates = alloc.solve()
        reference = allocate_rates(active, resources)
        assert set(rates) == set(reference)
        for f, rate in rates.items():
            assert math.isclose(rate, reference[f], rel_tol=1e-9, abs_tol=1e-12)


@given(component_scripts())
@settings(max_examples=60, deadline=None)
def test_solve_only_at_end_matches(script):
    """Correctness must not depend on solving after every mutation —
    batched dirty/shrunk bookkeeping has to resolve to the same state."""
    resources, ops = script
    alloc = build(resources)
    active: list[Flow] = []
    for op in ops:
        apply_op(alloc, active, op)
    rates = alloc.solve()
    assert {frozenset(c) for c in alloc.components()} == bruteforce_partition(active)
    for members in alloc.components():
        assert {f: rates[f] for f in members} == allocate_rates(members, resources)


def test_rack_uplink_merge_and_split():
    """Remote reads bridge node components through the rack uplink; when
    the bridges finish, the merged component must split back apart."""
    resources = {
        "disk:0": Resource("disk:0", 40.0, 0.1),
        "nic_tx:0": 60.0,
        "disk:1": Resource("disk:1", 40.0, 0.1),
        "nic_rx:1": 60.0,
        "rack_up:0": 100.0,
        "disk:2": Resource("disk:2", 40.0, 0.1),
    }
    alloc = build(resources)
    local0 = Flow(100.0, ("disk:0",))
    local2 = Flow(100.0, ("disk:2",))
    alloc.add(local0)
    alloc.add(local2)
    alloc.solve()
    assert alloc.component_count == 2

    # A remote read from node 0's disk through the rack to node 1's NIC
    # bridges disk:0's component with fresh resources; disk:2 stays apart.
    remote = Flow(200.0, ("disk:0", "nic_tx:0", "rack_up:0", "nic_rx:1"))
    alloc.add(remote)
    rates = alloc.solve()
    assert alloc.component_count == 2
    merged = next(c for c in alloc.components() if remote in c)
    assert set(merged) == {local0, remote}
    assert {f: rates[f] for f in merged} == allocate_rates(merged, resources)

    # A second remote read into node 1 shares the uplink — still merged.
    remote2 = Flow(200.0, ("disk:1", "rack_up:0", "nic_rx:1"))
    alloc.add(remote2)
    alloc.solve()
    merged = next(c for c in alloc.components() if remote in c)
    assert set(merged) == {local0, remote, remote2}

    # Dropping the first bridge splits disk:0 from the rack/node-1 side.
    alloc.remove(remote)
    rates = alloc.solve()
    assert alloc.component_count == 3
    parts = {frozenset(c) for c in alloc.components()}
    assert parts == {
        frozenset({local0}),
        frozenset({remote2}),
        frozenset({local2}),
    }
    for members in alloc.components():
        assert {f: rates[f] for f in members} == allocate_rates(members, resources)

    # Dropping the second bridge empties the rack-side component.
    alloc.remove(remote2)
    alloc.solve()
    assert alloc.component_count == 2


def test_rate_capped_flows_freeze_exactly():
    """Capped flows must come out at exactly their cap when unconstrained
    — the stable sort by cap inside a component matches the reference."""
    resources = {"d": Resource("d", 100.0, 0.0)}
    alloc = build(resources)
    capped = [Flow(100.0, ("d",), rate_cap=c) for c in (5.0, 10.0, 5.0)]
    uncapped = Flow(100.0, ("d",))
    for f in capped:
        alloc.add(f)
    alloc.add(uncapped)
    rates = alloc.solve()
    for f in capped:
        assert rates[f] == f.rate_cap
    assert rates == allocate_rates(capped + [uncapped], resources)


def test_changed_slot_reporting_is_component_scoped():
    """solve(out=...) must write and report only the dirty components'
    slots — the lazy heap's correctness depends on the changed list
    covering every rate that moved."""
    import numpy as np

    resources = {"a": 10.0, "b": 10.0}
    alloc = build(resources)
    fa = Flow(100.0, ("a",))
    fb = Flow(100.0, ("b",))
    ia = alloc.add(fa, fid=0)
    ib = alloc.add(fb, fid=1)
    out = np.zeros(4)
    alloc.solve(out=out)
    assert sorted(alloc.last_changed) == [ia, ib]
    assert out[ia] == 10.0 and out[ib] == 10.0

    # A second flow on "a" dirties only a's component.
    fa2 = Flow(100.0, ("a",))
    ia2 = alloc.add(fa2, fid=2)
    out[ib] = -1.0  # sentinel: b's slot must not be rewritten
    alloc.solve(out=out)
    assert sorted(alloc.last_changed) == sorted([ia, ia2])
    assert out[ib] == -1.0
    assert out[ia] == out[ia2] == 5.0
    assert alloc.last_component_solves == 1
    assert alloc.last_component_size_max == 2

    # Nothing dirty: no work, nothing reported.
    alloc.solve(out=out)
    assert alloc.last_changed == []
    assert alloc.last_component_solves == 0
