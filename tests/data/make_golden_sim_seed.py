"""Regenerate the simulator golden fixtures.

Usage (from the repo root)::

    PYTHONPATH=src python tests/data/make_golden_sim_seed.py [--check]

Two fixture files are produced, one per pinned engine:

``golden_sim_seed.json``
    Captured from the pre-incremental seed engine.  **Never rewritten**:
    it is a historical artifact that ``Simulation(allocator=
    "incremental")`` (and ``"reference"``) reproduce bit for bit on the
    flow-event-dense workloads and to 1e-9 relative on the two
    timer-heavy ones (``faults_8``, ``dynamic_8_s2`` — merged settle
    intervals round differently, pinned via ``assert_ulp`` since PR 1).

``golden_sim_component.json``
    Pins the default engine (``allocator="component"``).  Component-
    sliced water-filling matches the reference arithmetic exactly within
    a component but rounds the global water level differently across
    components, so its trajectories sit an ulp away from the seed
    engine's.  On 12 of the 13 workloads that is invisible (≤3e-15
    relative); on one (``fig7_m16_s0_base``) a wave of chunk reads
    finishes at the *exact same* simulated instant and the firing order
    among the tied flows — float noise in the seed engine, canonical
    ``flow_id`` order in the component engine — permutes downstream
    replica draws, so that run diverges in makespan while byte counts
    and locality stay identical.  See tests/test_sim_golden.py for the
    per-fixture tolerance table.

``--check`` compares what the current engines produce against both
committed files without rewriting anything: the incremental engine must
match the seed file's flow-event-dense fixtures byte-for-byte, the
component engine must match its own file exactly, and the
component-vs-seed cross deviation is printed per fixture.  Exits
non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

SEED_PATH = Path(__file__).parent / "golden_sim_seed.json"
COMPONENT_PATH = Path(__file__).parent / "golden_sim_component.json"

#: Fixtures whose component-mode run legitimately diverges from the seed
#: pin beyond float noise (exact-tie firing order, see module docstring).
TIE_DIVERGENT = ("fig7_m16_s0_base",)

#: Seed fixtures the incremental engine matches only to 1e-9 relative
#: (pinned from the pre-incremental engine; see tests/test_sim_golden.py).
SEED_ULP = ("faults_8", "dynamic_8_s2")


def records_digest(result) -> str:
    h = hashlib.sha256()
    for r in sorted(result.records, key=lambda r: r.seq):
        h.update(
            repr(
                (r.seq, r.rank, r.task_id, str(r.chunk), r.server_node,
                 r.reader_node, r.local, r.issue_time, r.end_time)
            ).encode()
        )
    return h.hexdigest()


def run_entry(result) -> dict:
    return {
        "makespan": repr(result.makespan),
        "digest": records_digest(result),
        "local_bytes": result.local_bytes,
        "remote_bytes": result.remote_bytes,
        "io": {k: repr(v) for k, v in result.io_stats().items()},
    }


def build(allocator: str) -> dict:
    """Run every pinned workload under ``allocator`` and collect fixtures."""
    import repro.simulate.engine as engine_mod

    saved = engine_mod.DEFAULT_ALLOCATOR
    engine_mod.DEFAULT_ALLOCATOR = allocator
    try:
        return _build()
    finally:
        engine_mod.DEFAULT_ALLOCATOR = saved


def _build() -> dict:
    from repro.analysis import validation_grid
    from repro.core import (
        ProcessPlacement,
        rank_interval_assignment,
        tasks_from_dataset,
    )
    from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
    from repro.dfs.chunk import MB
    from repro.experiments.dynamic import run_dynamic_comparison
    from repro.experiments.paraview import run_paraview_comparison
    from repro.experiments.single_data import run_single_data_comparison
    from repro.simulate import DatasetIngest, FaultPlan, ParallelReadRun, StaticSource
    from repro.workloads import single_data_workload

    golden: dict = {}

    for num_nodes, seed in [(16, 9), (16, 0), (32, 0), (64, 1)]:
        c = run_single_data_comparison(num_nodes, seed=seed)
        golden[f"fig7_m{num_nodes}_s{seed}_base"] = run_entry(c.base)
        golden[f"fig7_m{num_nodes}_s{seed}_opass"] = run_entry(c.opass)

    golden["validation"] = [
        {"nodes": r.num_nodes, "repl": r.replication,
         "sim_loc": repr(r.simulated_locality),
         "sim_std": repr(r.simulated_served_std)}
        for r in validation_grid(
            cluster_sizes=(8, 16, 32), replications=(2, 3), trials=3, seed=0
        )
    ]

    pv = run_paraview_comparison(num_nodes=8, num_datasets=48, seed=3)
    golden["paraview_8_s3"] = {
        "stock": run_entry(pv.stock.run),
        "opass": run_entry(pv.opass.run),
        "stock_total": repr(pv.stock.total_execution_time),
        "opass_total": repr(pv.opass.total_execution_time),
    }

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=7)
    ing = DatasetIngest(
        fs,
        ProcessPlacement.one_per_node(8),
        uniform_dataset("ing", 24, chunk_size=16 * MB),
        seed=7,
    )
    res = ing.run()
    golden["ingest_8"] = {
        "makespan": repr(res.makespan),
        "writes": {k: repr(v) for k, v in res.write_stats().items()},
    }

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), replication=3, seed=5)
    data = single_data_workload(8, 6)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    run = ParallelReadRun(
        fs,
        ProcessPlacement.one_per_node(8),
        tasks,
        StaticSource(rank_interval_assignment(len(tasks), 8)),
        seed=5,
    )
    FaultPlan().fail(1.5, 2).fail(3.0, 5).attach(run)
    golden["faults_8"] = run_entry(run.run())

    dyn = run_dynamic_comparison(num_nodes=8, num_fragments=48, seed=2)
    golden["dynamic_8_s2"] = {
        "base": run_entry(dyn.base.result),
        "opass": run_entry(dyn.opass.result),
        "base_steals": dyn.base.steals,
        "opass_steals": dyn.opass.steals,
    }

    return golden


def _floats(entry, path=""):
    """Yield (path, float) for every numeric value in a golden entry."""
    if isinstance(entry, dict):
        for k, v in entry.items():
            if k == "digest":
                continue
            yield from _floats(v, f"{path}.{k}" if path else k)
    elif isinstance(entry, list):
        for i, v in enumerate(entry):
            yield from _floats(v, f"{path}[{i}]")
    elif isinstance(entry, str):
        try:
            yield path, float(entry)
        except ValueError:
            pass
    elif isinstance(entry, (int, float)):
        yield path, float(entry)


def cross_check(component: dict, seed: dict) -> int:
    """Print component-vs-seed deviation per fixture; 1e-9 budget except
    for the documented tie-divergent fixtures."""
    status = 0
    for key in sorted(seed):
        seed_floats = dict(_floats(seed[key], key))
        comp_floats = dict(_floats(component.get(key, {}), key))
        worst, worst_at = 0.0, "-"
        for p, sv in seed_floats.items():
            cv = comp_floats.get(p)
            if cv is None:
                print(f"MISSING  {p}")
                status = 1
                continue
            dev = abs(cv - sv) / max(abs(sv), 1e-12)
            if dev > worst:
                worst, worst_at = dev, p
        divergent = key in TIE_DIVERGENT
        note = "  [tie-divergent, exempt]" if divergent else ""
        print(f"{key:24s} max rel dev {worst:.3e}  at {worst_at}{note}")
        if worst > 1e-9 and not divergent:
            status = 1
    return status


def dumps(golden: dict) -> str:
    return json.dumps(golden, indent=1, sort_keys=True) + "\n"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed files instead of rewriting them",
    )
    args = parser.parse_args(argv)
    seed_pins = build("incremental")
    comp_pins = build("component")
    committed_seed = json.loads(SEED_PATH.read_text())
    status = 0
    frozen_ok = True
    for key, committed in committed_seed.items():
        if key in SEED_ULP:
            continue
        if seed_pins.get(key) != committed:
            print(f"FAIL: incremental engine no longer reproduces "
                  f"{SEED_PATH.name}[{key}] bit-for-bit")
            frozen_ok = False
            status = 1
    if frozen_ok:
        print(f"{SEED_PATH.name}: bit-frozen fixtures OK "
              f"(ulp fixtures {SEED_ULP} checked by the test suite)")
    if args.check:
        committed_comp = json.loads(COMPONENT_PATH.read_text())
        if comp_pins != committed_comp:
            print(f"FAIL: component engine no longer reproduces "
                  f"{COMPONENT_PATH.name}")
            status = 1
        else:
            print(f"{COMPONENT_PATH.name}: exact OK")
        status |= cross_check(comp_pins, committed_seed)
        return status
    COMPONENT_PATH.write_text(dumps(comp_pins))
    print(f"wrote {COMPONENT_PATH} ({SEED_PATH.name} is never rewritten)")
    return status | cross_check(comp_pins, committed_seed)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
