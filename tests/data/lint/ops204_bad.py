# opass-lint: module=repro.simulate.ingest
"""OPS204: blocking calls reachable from async code.

``drain`` looks clean locally — the sleep and the file I/O sit two sync
call levels below it.  ``poll`` blocks the loop directly.
"""

import time


async def drain(queue):
    while queue:
        job = queue.pop()
        _commit(job)


def _commit(job):
    return _flush(job)


def _flush(job):
    time.sleep(0.01)
    return str(job)


async def poll(path):
    fh = open(path)
    return fh.read()
