# opass-lint: module=repro.core.example_ops006
"""OPS006 fixture: a core module reaching up into the simulator."""

from repro.simulate.engine import Simulation  # core must not import simulate


def make_sim():
    return Simulation()
