# opass-lint: module=repro.simulate.components
"""Clean twin of ``ops301_bad``: builds bounded by contract.

``list(flow.path)`` copies one flow's replica path (a small axis), and
the epoch snapshot carries an ``alloc-ok`` waiver with its amortization
argument — both stay inside the O(deg) budget.
"""


class ComponentAllocator:
    def add(self, flow, fid=None):
        touched = list(flow.path)
        snapshot = list(self._id_of)  # opass: alloc-ok -- epoch debug snapshot, guarded off the hot path
        for r in touched:
            self._res_users[r] = self._res_users.get(r, 0) + 1
        self._id_of[flow] = len(snapshot)
        return touched
