# opass-lint: module=repro.simulate.components
"""OPS303: three known quadratic shapes inside a contracted function.

``solve`` carries an O(n log n) contract; a list-membership probe per
iteration, ``+=`` container growth per iteration and nested iteration
over the same axis are each quadratic regardless of what they allocate.
"""


class ComponentAllocator:
    def solve(self, pending: list, out=None):
        order = []
        for cid in self._dirty:
            if cid in pending:
                order += [cid]
        for f in self._members:
            for g in self._members:
                self._touch(f, g)
        return order
