# opass-lint: module=repro.core.example_ops003_ok
"""OPS003 clean twin: every set is sorted before its order can matter."""


def drain(pending: set[int]):
    order = []
    for task in sorted(pending):  # deterministic: sorted before iterating
        order.append(task)
    return order


def pick_one():
    ready = {3, 1, 2}
    return min(ready)  # order-independent reduction


def first_remote(chunks, local):
    remote = set(chunks) - set(local)
    return sorted(remote)


def membership_is_fine(pending: set[int], task):
    return task in pending  # membership tests never observe order
