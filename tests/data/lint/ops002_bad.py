# opass-lint: module=repro.simulate.example_ops002
"""OPS002 fixture: wall-clock reads inside simulation code."""

import time
from datetime import datetime


def stamp_event(events):
    events.append(time.time())  # wall clock leaks into sim results


def measure(fn):
    start = time.perf_counter()  # direct wall-clock instrumentation
    fn()
    return time.perf_counter() - start


def log_line(msg):
    return f"{datetime.now()} {msg}"  # wall clock in a sim-layer log
