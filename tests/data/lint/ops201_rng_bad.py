# opass-lint: module=repro.parallel.pool
"""OPS201: live RNG machinery conjured two calls below the entrypoint.

A Generator constructed inside the worker diverges from the parent's
stream and from sibling workers — fork-unsafe state even when seeded,
because per-worker draws break run-to-run identity of pooled solves.
"""

import numpy as np


def _worker_main(conn):
    job = conn.recv()
    conn.send(_jitter(job))


def _jitter(job):
    return _draw(len(job))


def _draw(n):
    rng = np.random.default_rng(1234)
    return int(rng.integers(0, n))
