# opass-lint: module=repro.simulate.example_ops006_ok
"""OPS006 clean twin: the simulator importing down the DAG."""

from typing import TYPE_CHECKING

from repro.core.tasks import Task  # simulate → core points down-rank
from repro.dfs.chunk import ChunkId

if TYPE_CHECKING:  # type-only imports never create a layering edge
    from repro.apps.paraview import ParaViewResult


def chunk_count(task: Task) -> int:
    return len(task.inputs)


def first_input(task: Task) -> ChunkId:
    return task.inputs[0]
