# opass-lint: module=repro.core.okrand
"""OPS101 clean: a seeded, *injected* Generator drives the same decisions.

Determinism taint distinguishes the RNG machinery (fine when seeded and
injected) from genuine run-to-run entropy; none of these may flag.
"""

import numpy as np


def pick_node(nodes, rng: np.random.Generator):
    salt = _tiebreak(rng)
    return nodes[salt % len(nodes)]


def _tiebreak(rng: np.random.Generator):
    return _draw(rng)


def _draw(rng: np.random.Generator):
    return int(rng.integers(0, 1 << 30))


def order_tasks(tasks, seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(0, len(tasks)))
    return tasks[k:] + tasks[:k]


_LIMIT = 1 << 20
