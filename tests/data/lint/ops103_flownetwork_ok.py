# opass-lint: module=repro.core.flownetwork
"""OPS103 clean: a CSR-style solver that mutates only its own buffers.

Mirrors ``FlowNetwork.dinic``: capacities, levels and current-arc
pointers live in flat private lists; graph construction reads the chunk
layout through a snapshot call, never by touching
``DistributedFileSystem`` state directly.
"""


class MiniFlowNetwork:
    def __init__(self, n):
        self._cap = []
        self._to = []
        self._adj = [[] for _ in range(n)]
        self._level = [0] * n
        self._it = [0] * n

    def add_edge(self, u, v, capacity):
        self._adj[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(capacity)
        self._adj[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(0)

    def push(self, eid, amount):
        self._cap[eid] -= amount
        self._cap[eid ^ 1] += amount


def network_from_layout(fs: "DistributedFileSystem", chunks):
    # The snapshot call result insulates: rows are ours to index.
    layout = dict(fs.chunk_locations(chunks))
    net = MiniFlowNetwork(2 + len(layout))
    for i, nodes in enumerate(layout.values()):
        net.add_edge(0, 2 + i, len(nodes))
    return net
