"""OPS000: malformed waiver pragmas.

Every waiver kind shares one grammar and every waiver must carry a
reason: a bare marker, a marker with an empty reason and an unknown
kind are each a finding in their own right.
"""


def scale(values):
    total = 0.0
    for v in values:
        total = total + v  # opass: reassoc-ok
    return total


def snapshot(seen):
    return list(seen)  # opass: alloc-ok --


def combine(a, b):
    return a + b  # opass: vectorize-ok -- no such waiver kind
