# opass-lint: module=repro.simulate.example_ops005
"""OPS005 fixture: every banned hot-path pattern."""


def retire(active: list, flow):
    active.remove(flow)  # O(n) scan per completion


def next_chunk(queue: list):
    return queue.pop(0)  # O(n) shift per dequeue


def requeue(queue: list, chunk):
    queue.insert(0, chunk)  # O(n) shift per requeue


def render(rows):
    out = ""
    for row in rows:
        out += f"{row}\n"  # quadratic string building
    return out
