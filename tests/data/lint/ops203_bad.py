# opass-lint: module=repro.simulate.vectorized
"""OPS203: float-identity drift inside a registered kernel module.

Three distinct drifts: a float32 promotion, an unannotated reassociating
reduction, and an int/int true division — each silently diverges from a
float64 reference solver at scale.
"""

import numpy as np


def solve(levels, weights):
    acc = np.asarray(levels, dtype=np.float32)
    total = np.sum(acc * weights)
    return total


def split(chunks):
    nbytes = len(chunks)
    nflows = int(len(chunks) - 1)
    return nbytes / nflows
