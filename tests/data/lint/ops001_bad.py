# opass-lint: module=repro.simulate.example_ops001
"""OPS001 fixture: every flavour of unseeded/global RNG."""

import random

import numpy as np


def shuffle_tasks(tasks):
    random.shuffle(tasks)  # stdlib global RNG
    return tasks


def entropy_seeded():
    return np.random.default_rng()  # unseeded → irreproducible


def hard_coded_seed():
    return np.random.default_rng(42)  # literal seed without a suppression


def global_numpy_state(n):
    return np.random.rand(n)  # numpy process-global state
