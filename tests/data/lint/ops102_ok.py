# opass-lint: module=repro.simulate.okunits
"""OPS102 clean: consistent dimensions, explicit and inferred.

Unknown units never flag, division converts dimensions properly, and
``Annotated`` declarations agree with the name conventions.
"""

from repro.units import Bytes, BytesPerSec, Seconds


def read_time(size: Bytes, bw: BytesPerSec) -> Seconds:
    return size / bw


def total_time(chunk_size: Bytes, disk_bw: BytesPerSec, seek_latency: Seconds):
    return seek_latency + read_time(chunk_size, disk_bw)


def _forward(a, b):
    return read_time(a, b)


def indirect(chunk_size, disk_bw):
    return _forward(chunk_size, disk_bw)


def opaque(x, y):
    return x + y
