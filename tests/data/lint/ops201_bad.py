# opass-lint: module=repro.parallel.pool
"""OPS201: the fork-worker entrypoint reaches fork-unsafe state.

The defects sit two call levels below the dispatch loop: ``_handle``
forwards to ``_audit``, which opens a file handle and rebinds a module
global — both invisible to any intraprocedural rule.
"""

_JOBS = 0


def _worker_main(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        _handle(msg)


def _handle(msg):
    return _audit(msg)


def _audit(msg):
    global _JOBS
    _JOBS = _JOBS + 1
    log = open("/tmp/audit.log", "a")
    log.write(str(msg))
    return _JOBS
