# opass-lint: module=repro.core.opass
"""OPS103 clean: kernels read DFS state and mutate only private copies.

A call result (``layout_snapshot()``) insulates: mutating the returned
copy is not a mutation of the protected argument it came from.
"""


def assign(cluster: "Cluster", tasks):
    load = _snapshot(cluster)
    out = []
    for t in tasks:
        node = min(load, key=lambda n: (load[n], n))
        load[node] += 1
        out.append((t, node))
    return out


def _snapshot(cluster):
    return dict(cluster.layout_snapshot())


def tally(quotas, tasks):
    quotas = dict(quotas)
    for t in tasks:
        quotas[t % len(quotas)] -= 1
    return quotas
