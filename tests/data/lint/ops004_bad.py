# opass-lint: module=repro.simulate.example_ops004
"""OPS004 fixture: exact float equality on simulation quantities."""


def run_started(sim):
    return sim.now != 0.0  # exact != on the float clock


def drained(flow):
    return flow.remaining == 0.0  # float residue compared exactly


def rates_agree(a, b):
    return a.rate == b.rate  # two float rates compared exactly
