# opass-lint: module=repro.core.badrand
"""OPS101 violations: entropy reaching scheduler decisions and globals.

The first chain is only visible interprocedurally: ``pick_node`` looks
innocent, the entropy enters two call levels below it.
"""

import numpy as np


def pick_node(nodes):
    salt = _tiebreak()
    return nodes[salt % len(nodes)]


def _tiebreak():
    return _raw_entropy()


def _raw_entropy():
    return id(object())


def order_tasks(tasks):
    rng = np.random.default_rng()
    k = int(rng.integers(0, len(tasks)))
    return tasks[k:] + tasks[:k]


_SALT = id(object())
