# opass-lint: module=repro.core.flownetwork
"""OPS103 violations: a solver that "reserves" capacity in the DFS.

The augmenting loop looks pure — the write happens two call levels down
(``max_flow`` → ``_augment`` → ``_reserve``) on a ``DataNode`` reached
through the file system argument, so only transitive mutation summaries
catch it.
"""


def max_flow(paths, fs: "DistributedFileSystem"):
    total = 0
    for path in paths:
        total += _augment(path, fs)
    return total


def _augment(path, fs):
    bottleneck = min(cap for _, cap in path)
    for node_id, _ in path:
        _reserve(fs.datanodes[node_id], bottleneck)
    return bottleneck


def _reserve(node, amount):
    node.pending_bytes += amount
