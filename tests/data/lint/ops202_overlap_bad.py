# opass-lint: module=repro.parallel.pool
"""OPS202: two slice views declared over the same offset, one written.

``out`` aliases ``inp`` byte-for-byte — writing through it while the
other view is still read from is exactly the in-place aliasing bug the
rule exists for.
"""

import numpy as np


def _worker_main(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        _solve(msg[0], msg[1], msg[2])


def _solve(buf, n, off_in):
    inp = np.frombuffer(buf, np.float64, n, off_in)
    out = np.frombuffer(buf, np.float64, n, off_in)
    out[:] = inp[::-1]
    return float(out[0])
