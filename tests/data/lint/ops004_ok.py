# opass-lint: module=repro.simulate.example_ops004_ok
"""OPS004 clean twin: orderings and tolerance helpers."""

REMAINING_EPS = 1e-6


def run_started(sim):
    return sim.now > 0.0  # the clock is monotone: ordering, not equality


def drained(flow):
    return flow.remaining <= REMAINING_EPS  # tolerance, not exact zero


def isclose(a, b, tol=1e-9):
    # tolerance helpers are the one place exact compares are the point
    return a == b or abs(a - b) <= tol


def rates_agree(a, b):
    return isclose(a.rate, b.rate)
