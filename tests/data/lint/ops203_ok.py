# opass-lint: module=repro.simulate.vectorized
"""OPS203 clean: float64 throughout, exact sums annotated, // for ints.

The waived ``.sum()`` is an int64 count — integer addition is exact in
any order, and the ``reassoc-ok`` pragma records that reasoning on the
line.
"""

import numpy as np


def solve(levels, weights):
    acc = np.asarray(levels, dtype=np.float64)
    total = 0.0
    for v in (acc * weights).tolist():
        total += v
    return total


def count_flat(lens):
    n = int(lens.sum())  # opass: reassoc-ok -- int64 sum, addition is exact
    return n


def split(chunks):
    nbytes = len(chunks)
    nflows = len(chunks) - 1
    return nbytes // max(1, nflows)
