# opass-lint: module=repro.parallel.pool
"""OPS201 clean: the worker touches only shared views and locals.

Attaching a shared-memory view post-fork is legitimate worker behavior;
no handles, locks, RNG machinery or global rebinding anywhere in the
reachable set.
"""

import numpy as np


def _worker_main(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        conn.send(_solve(msg))


def _solve(msg):
    return _total(np.frombuffer(msg, np.float64))


def _total(values):
    out = 0.0
    for v in values.tolist():
        out += v
    return out
