# opass-lint: module=repro.simulate.vectorized_example_ok
"""OPS005 clean twin: the kernels' masked-array idiom has no worklist.

Progressive filling over flat arrays freezes flows by flipping a mask
entry — no list mutation, nothing the rule's banned patterns match.
"""


def fill_levels(rates, live_mask, delta):
    rates[live_mask] += delta
    return rates


def freeze(live_mask, idx):
    live_mask[idx] = False
