# opass-lint: module=repro.simulate.components
"""OPS302: an O(n) rebuild reached from the amortized solve path.

The expensive work sits two call levels below the contracted function:
``solve`` (O(n log n) budget) loops over the dirty set and calls
``_refresh``, which forwards to ``_rebuild_index`` — a full scan of
every tracked flow, per dirty component.  Only the interprocedural cost
fixed point can see the chain.
"""


class ComponentAllocator:
    def solve(self, out=None):
        for cid in self._dirty:
            self._refresh(cid)
        return out

    def _refresh(self, cid):
        self._index = self._rebuild_index()
        return self._index

    def _rebuild_index(self):
        return {f: None for f in self._tracked}
