# opass-lint: module=repro.parallel.pool
"""OPS202: worker writes escape the declared np.frombuffer slice views.

``_store`` sits two call levels below the dispatch loop; it writes into
its declared view (fine), then mutates a parent-process object and pokes
a raw byte through the buffer outside any declared view (both flagged).
"""

import numpy as np


def _worker_main(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        _apply(msg)


def _apply(msg):
    _store(msg[0], msg[1], msg[2])


def _store(shm, job, rates):
    view = np.frombuffer(shm.buf, np.float64, job.n, job.off)
    view[:] = rates
    job.done = True
    shm.buf[0] = 1
