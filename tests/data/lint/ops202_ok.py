# opass-lint: module=repro.parallel.pool
"""OPS202 clean: every write lands in its own declared slice view.

Disjoint offsets for input and output views, plus a per-dispatch local
scratch array — all allowed write targets for worker code.
"""

import numpy as np


def _worker_main(conn):
    while True:
        msg = conn.recv()
        if msg is None:
            break
        _solve(msg[0], msg[1], msg[2], msg[3])


def _solve(buf, n, off_in, off_out):
    inp = np.frombuffer(buf, np.float64, n, off_in)
    out = np.frombuffer(buf, np.float64, n, off_out)
    scratch = np.zeros(n)
    scratch[:] = inp
    out[:] = scratch
    return int(n)
