# opass-lint: module=repro.simulate.components
"""OPS103 violations: a rate solve that writes back into DFS state.

The solve itself looks innocent — the mutation happens two call levels
down (``solve`` → ``_commit`` → ``_charge``) on a ``DataNode`` reached
through the flow's payload, so only transitive mutation summaries
catch it.
"""


def solve(components, cluster: "Cluster"):
    rates = {}
    for members in components:
        for f in members:
            rates[f] = 1.0 / max(1, len(members))
    _commit(cluster, rates)
    return rates


def _commit(cluster, rates):
    for f in rates:
        _charge(cluster.datanodes[0], f.size)


def _charge(node, nbytes):
    node.served_bytes += nbytes
