# opass-lint: module=repro.simulate.components
"""Clean twin of ``ops302_bad``: per-component work only.

Same two-level call shape, but the rebuild two levels down iterates one
component's membership (``group``, a small axis) instead of every
tracked flow — within ``solve``'s O(n log n) budget.
"""


class ComponentAllocator:
    def solve(self, out=None):
        for cid in self._dirty:
            self._refresh(cid)
        return out

    def _refresh(self, cid):
        group = self._comp_flows[cid]
        self._index = self._weights(group)
        return self._index

    def _weights(self, group):
        return {f: None for f in group}
