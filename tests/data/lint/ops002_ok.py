# opass-lint: module=repro.simulate.example_ops002_ok
"""OPS002 clean twin: simulated time and the sanctioned perf alias."""

from repro.simulate.perf import wall_clock


def stamp_event(sim, events):
    events.append(sim.now)  # the simulated clock is the only time source


def measure(perf, fn):
    start = wall_clock()  # instrumentation routed through simulate/perf
    fn()
    perf.solve_wall += wall_clock() - start
