# opass-lint: module=repro.simulate.badunits
"""OPS102 violations: bytes/seconds/bytes_per_sec mixed across calls.

``indirect`` is the interprocedural case: the swap only becomes visible
after ``_forward``'s parameter units are inferred from what *it* passes
to ``read_time``, two call levels below the mistake.
"""


def read_time(size, bw):
    return size / bw


def total_time(chunk_size, seek_latency):
    padded = chunk_size + seek_latency
    return padded


def swapped(chunk_size, seek_latency):
    return read_time(seek_latency, chunk_size)


def _forward(a, b):
    return read_time(a, b)


def indirect(seek_latency, chunk_size):
    return _forward(seek_latency, chunk_size)
