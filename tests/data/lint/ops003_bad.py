# opass-lint: module=repro.core.example_ops003
"""OPS003 fixture: hash-order-dependent set consumption."""


def drain(pending: set[int]):
    order = []
    for task in pending:  # iteration order depends on the hash seed
        order.append(task)
    return order


def pick_one():
    ready = {3, 1, 2}
    return ready.pop()  # pops a hash-order-dependent element


def first_remote(chunks, local):
    remote = set(chunks) - set(local)
    return [c for c in remote]  # comprehension over an unordered set
