# opass-lint: module=repro.simulate.example_ops001_ok
"""OPS001 clean twin: randomness flows through an injected Generator."""

import numpy as np


def shuffle_tasks(tasks, rng: np.random.Generator):
    rng.shuffle(tasks)
    return tasks


def generator_from_caller_seed(seed):
    # seeding from an injected value is the sanctioned construction
    return np.random.default_rng(seed)


def documented_fallback(rng=None):
    if rng is None:
        rng = np.random.default_rng(0)  # opass: ignore[OPS001] -- fixture: documented fixed-workload fallback
    return rng
