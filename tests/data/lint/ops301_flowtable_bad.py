# opass-lint: module=repro.simulate.flowtable
"""OPS301: an O(n) rescan inside FlowTable's O(deg) per-event path.

``FlowTable.acquire`` carries an O(deg) cost contract — slot admission
must stay free-list cheap however many flows are registered.  The
``list(self.fid_of)`` audit below walks *every* active flow on every
acquire, silently reverting the structure-of-arrays win, and carries no
``alloc-ok`` waiver.
"""


class FlowTable:
    def acquire(self, flow, now):
        active = list(self.fid_of)
        if self.free_ids:
            fid = self.free_ids.pop()
        else:
            fid = len(active)
            self.flow_at.append(None)
        self.fid_of[flow] = fid
        self.flow_at[fid] = flow
        return fid
