# opass-lint: module=repro.simulate.components
"""OPS103 clean: a component-sliced solve that mutates only its own
bookkeeping.

Mirrors ``ComponentAllocator.solve``: reads protected cluster/node state
through snapshots and per-flow paths, writes rates into private caches —
never into ``Cluster``/``NameNode``/``DataNode`` objects.
"""


class MiniAllocator:
    def __init__(self):
        self._rate_of = {}
        self._dirty = {}

    def solve(self, components, resources):
        for members in components:
            share = _fair_share(members, resources)
            for f in members:
                self._rate_of[f] = share
        self._dirty.clear()
        return dict(self._rate_of)


def _fair_share(members, resources):
    cap = min(resources[r] for f in members for r in f.path)
    return cap / max(1, len(members))


def capacities_from(cluster: "Cluster"):
    # A call result insulates: the snapshot dict is ours to reshape.
    caps = dict(cluster.layout_snapshot())
    return {name: float(c) for name, c in caps.items()}
