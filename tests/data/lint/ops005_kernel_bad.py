# opass-lint: module=repro.simulate.vectorized_example
"""OPS005 fixture: scalar-regression patterns in a vectorized kernel.

The shapes a hasty edit would reintroduce into the water-filling
kernels: a worklist drained with ``pop(0)`` and a frozen-flow list
pruned with ``remove`` inside the fill loop.
"""


def fill_levels(live: list, levels: list):
    while live:
        flow = live.pop(0)  # O(n) shift per fill iteration
        levels.append(flow)
    return levels


def freeze(unfrozen: list, flow):
    unfrozen.remove(flow)  # O(n) scan per freeze
