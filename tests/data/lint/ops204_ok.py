# opass-lint: module=repro.simulate.ingest
"""OPS204 clean: async code awaits async primitives; sync I/O stays sync.

``journal`` does blocking file I/O but is never reachable from an
``async def``, so it is none of the event loop's business.
"""

import asyncio


async def drain(queue):
    while queue:
        await asyncio.sleep(0)
        job = queue.pop()
        _commit(job)


def _commit(job):
    return [job]


def journal(path, jobs):
    with open(path, "a") as fh:
        for j in jobs:
            fh.write(str(j))
