# opass-lint: module=repro.simulate.components
"""OPS301: an O(n) snapshot inside the O(|path|) per-event path.

``ComponentAllocator.add`` carries an O(deg) cost contract — the PR 4
incremental win.  The ``list(self._id_of)`` below copies *every* tracked
flow on every add, silently reverting the amortization, and carries no
``alloc-ok`` waiver.
"""


class ComponentAllocator:
    def add(self, flow, fid=None):
        tracked = list(self._id_of)
        for r in flow.path:
            self._res_users[r] = self._res_users.get(r, 0) + 1
        self._id_of[flow] = len(tracked)
        return tracked
