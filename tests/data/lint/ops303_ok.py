# opass-lint: module=repro.simulate.components
"""Clean twin of ``ops303_bad``: the same loops, linearized.

Membership probes hit a set parameter, growth goes through ``append``,
and the nested loops walk two different axes.
"""


class ComponentAllocator:
    def solve(self, pending: set, out=None):
        order = []
        for cid in self._dirty:
            if cid in pending:
                order.append(cid)
        for f in self._members:
            for r in f.path:
                self._touch(f, r)
        return order
