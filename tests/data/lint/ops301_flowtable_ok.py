# opass-lint: module=repro.simulate.flowtable
"""Clean twin of ``ops301_flowtable_bad``: admission stays O(deg).

The free list answers in O(1); the capacity-doubling grow path carries
an ``alloc-ok`` waiver with its amortization argument, matching the real
module.
"""


class FlowTable:
    def acquire(self, flow, now):
        if self.free_ids:
            fid = self.free_ids.pop()
        else:
            fid = len(self.flow_at)
            self.flow_at.append(None)
            if fid >= self.capacity:
                self.grown = list(self.flow_at)  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                self.capacity *= 2
        self.fid_of[flow] = fid
        self.flow_at[fid] = flow
        return fid
