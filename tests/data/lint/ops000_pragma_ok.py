"""Clean twin of ``ops000_pragma_bad``: well-formed waivers.

Both registered kinds, each with a non-empty reason after ``--``; prose
that merely *mentions* a pragma (like this docstring, or the comment
below that lacks the ``opass:`` prefix) is not a waiver at all.
"""


def scale(values):
    total = 0.0
    for v in values:
        total = total + v  # opass: reassoc-ok -- tolerance budgeted in test_properties
    return total


def snapshot(seen):
    # plain comment: alloc-ok is documented in ARCHITECTURE.md
    return list(seen)  # opass: alloc-ok -- snapshot bounded by the caller's batch size
