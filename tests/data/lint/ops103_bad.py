# opass-lint: module=repro.core.opass
"""OPS103 violations: a matching kernel mutating DFS state.

``assign`` never touches the cluster itself — the write happens two
call levels down in ``_bump``, reached through an attribute chain, so
only transitive mutation summaries can see it.
"""


def assign(cluster: "Cluster", tasks):
    _account(cluster, len(tasks))
    return [(t, 0) for t in tasks]


def _account(cluster, n):
    _bump(cluster.datanodes[0], n)


def _bump(node, n):
    node.load += n


_ROUNDS = 0


def bump_rounds():
    global _ROUNDS
    _ROUNDS += 1
