# opass-lint: module=repro.simulate.example_ops005_ok
"""OPS005 clean twin: O(1) registries, deques, and join."""

from collections import deque


def retire(active: dict, flow):
    del active[flow]  # dict registry: O(1) removal


def retire_from_set(active: set, flow):
    active.remove(flow)  # set.remove is O(1) and order is not observed


def allocator_bookkeeping(self, flow):
    self._alloc.remove(flow)  # allow-listed O(|path|) receiver


def next_chunk(queue: deque):
    return queue.popleft()


def requeue(queue: deque, chunk):
    queue.appendleft(chunk)


def render(rows):
    return "".join(f"{row}\n" for row in rows)
