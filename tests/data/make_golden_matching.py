"""Regenerate the matching golden fixtures.

Usage (from the repo root)::

    PYTHONPATH=src python tests/data/make_golden_matching.py [--check]

Three fixture files pin the scheduler-side kernels byte-for-byte on fixed
seeds, the same discipline as the simulator goldens:

``golden_matching_single.json``
    :func:`repro.core.optimize_single_data` assignments (unit and byte
    capacity modes, both fallback policies, both max-flow algorithms,
    one-per-node and k-per-node placements).

``golden_matching_multi.json``
    :func:`repro.core.optimize_multi_data` assignments (Algorithm 1) on
    the paper's 30+20+10 MB multi-input workload and on random
    multi-chunk graphs.

``golden_matching_remote.json``
    :func:`repro.core.plan_remote_reads` serving plans (convex min-cost
    flow) on random replica layouts.

These fixtures were captured from the pre-CSR solvers (PR 5) and are the
contract the CSR/array rewrites must reproduce exactly: ``--check``
compares without rewriting and exits non-zero on any byte difference.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
SINGLE_PATH = HERE / "golden_matching_single.json"
MULTI_PATH = HERE / "golden_matching_multi.json"
REMOTE_PATH = HERE / "golden_matching_remote.json"


def assignment_entry(assignment) -> dict:
    return {str(r): list(ts) for r, ts in sorted(assignment.tasks_of.items())}


def _random_multi_graph(num_ranks: int, num_tasks: int, seed: int):
    """A multi-chunk locality graph with irregular sizes and replication."""
    import numpy as np

    from repro.core.bipartite import ProcessPlacement, build_locality_graph
    from repro.core.tasks import Task
    from repro.dfs.chunk import MB, ChunkId

    rng = np.random.default_rng(seed)
    tasks = []
    locations: dict[ChunkId, tuple[int, ...]] = {}
    sizes: dict[ChunkId, int] = {}
    for t in range(num_tasks):
        n_inputs = int(rng.integers(1, 4))
        inputs = []
        for j in range(n_inputs):
            cid = ChunkId(f"t{t}", j)
            repl = int(rng.integers(1, 4))
            nodes = tuple(
                int(x) for x in rng.choice(num_ranks, size=repl, replace=False)
            )
            locations[cid] = nodes
            sizes[cid] = int(rng.integers(1, 64)) * MB
            inputs.append(cid)
        tasks.append(Task(t, tuple(inputs)))
    placement = ProcessPlacement.one_per_node(num_ranks)
    return build_locality_graph(tasks, locations, sizes, placement)


def build_single() -> dict:
    from repro.core import (
        ProcessPlacement,
        graph_from_filesystem,
        optimize_single_data,
        tasks_from_dataset,
    )
    from repro.dfs import ClusterSpec, DistributedFileSystem
    from repro.workloads import single_data_workload

    golden: dict = {}
    cases = [
        ("m16_s0", 16, 10, 3, 0),
        ("m16_s7", 16, 10, 3, 7),
        ("m12_r2_s3", 12, 6, 2, 3),
    ]
    for key, m, cpp, repl, seed in cases:
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(m), replication=repl, seed=seed
        )
        data = single_data_workload(m, cpp)
        fs.put_dataset(data)
        tasks = tasks_from_dataset(data)
        placement = ProcessPlacement.one_per_node(m)
        graph = graph_from_filesystem(fs, tasks, placement)
        for mode in ("unit", "bytes"):
            for fallback in ("random", "least_loaded"):
                r = optimize_single_data(
                    graph, capacity_mode=mode, fallback=fallback, seed=seed
                )
                golden[f"{key}_{mode}_{fallback}"] = {
                    "assignment": assignment_entry(r.assignment),
                    "max_flow": r.max_flow,
                    "full_matching": r.full_matching,
                    "matched": sorted(r.matched_tasks),
                    "fallback": sorted(r.fallback_tasks),
                }
        r = optimize_single_data(graph, algorithm="edmonds_karp", seed=seed)
        golden[f"{key}_edmonds_karp"] = {
            "assignment": assignment_entry(r.assignment),
            "max_flow": r.max_flow,
        }

    # Two ranks per node: edges shared by co-resident ranks.
    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=1)
    data = single_data_workload(8, 8)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    placement = ProcessPlacement.k_per_node(8, 2)
    graph = graph_from_filesystem(fs, tasks, placement)
    r = optimize_single_data(graph, seed=1)
    golden["m8_k2_s1_unit_random"] = {
        "assignment": assignment_entry(r.assignment),
        "max_flow": r.max_flow,
    }
    return golden


def build_multi() -> dict:
    from repro.core import (
        ProcessPlacement,
        graph_from_filesystem,
        optimize_multi_data,
        tasks_from_datasets,
    )
    from repro.dfs import ClusterSpec, DistributedFileSystem
    from repro.workloads import multi_input_datasets

    golden: dict = {}
    for m, n_tasks, seed in [(8, 24, 0), (8, 24, 4), (16, 48, 2)]:
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
        datasets = multi_input_datasets(n_tasks)
        for ds in datasets:
            fs.put_dataset(ds)
        tasks = tasks_from_datasets(datasets)
        placement = ProcessPlacement.one_per_node(m)
        graph = graph_from_filesystem(fs, tasks, placement)
        for order in ("round_robin", "random"):
            r = optimize_multi_data(graph, order=order, seed=seed)
            golden[f"m{m}_n{n_tasks}_s{seed}_{order}"] = {
                "assignment": assignment_entry(r.assignment),
                "local_bytes": r.local_bytes,
                "reassignments": r.reassignments,
                "proposals": r.proposals,
            }
    for m, n_tasks, seed in [(6, 30, 11), (10, 50, 13)]:
        graph = _random_multi_graph(m, n_tasks, seed)
        r = optimize_multi_data(graph, seed=seed)
        golden[f"rand_m{m}_n{n_tasks}_s{seed}"] = {
            "assignment": assignment_entry(r.assignment),
            "local_bytes": r.local_bytes,
            "reassignments": r.reassignments,
            "proposals": r.proposals,
        }
    return golden


def build_remote() -> dict:
    import numpy as np

    from repro.core import plan_remote_reads
    from repro.dfs.chunk import ChunkId

    golden: dict = {}
    for n_chunks, n_nodes, repl, seed in [
        (20, 8, 3, 0),
        (40, 12, 2, 5),
        (64, 16, 3, 9),
    ]:
        rng = np.random.default_rng(seed)
        chunk_ids = [ChunkId(f"r{i}", 0) for i in range(n_chunks)]
        locations = {
            cid: tuple(
                int(x) for x in rng.choice(n_nodes, size=repl, replace=False)
            )
            for cid in chunk_ids
        }
        r = plan_remote_reads(chunk_ids, locations)
        golden[f"c{n_chunks}_n{n_nodes}_r{repl}_s{seed}"] = {
            "server_of": {str(cid): node for cid, node in sorted(
                r.server_of.items(), key=lambda kv: str(kv[0])
            )},
            "load": {str(k): v for k, v in sorted(r.load_per_node.items())},
            "max_load": r.max_load,
            "cost": r.cost,
        }
    return golden


def dumps(golden: dict) -> str:
    return json.dumps(golden, indent=1, sort_keys=True) + "\n"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed files instead of rewriting them",
    )
    args = parser.parse_args(argv)
    produced = {
        SINGLE_PATH: build_single(),
        MULTI_PATH: build_multi(),
        REMOTE_PATH: build_remote(),
    }
    status = 0
    for path, golden in produced.items():
        text = dumps(golden)
        if args.check:
            committed = path.read_text()
            if committed != text:
                print(f"FAIL: {path.name} no longer reproduced byte-for-byte")
                status = 1
            else:
                print(f"{path.name}: OK ({len(golden)} fixtures)")
        else:
            path.write_text(text)
            print(f"wrote {path.name} ({len(golden)} fixtures)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
