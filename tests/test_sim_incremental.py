"""Structural and differential tests for the incremental engine.

* the hot path must stay O(1)/O(Δ): a dict-backed flow registry and no
  hot-path regressions (``list.remove``, ``pop(0)``, ``insert(0, ..)``)
  anywhere in ``repro.simulate``/``repro.core`` — enforced through the
  opass-lint OPS005 rule via :mod:`repro.tools.api`, which generalises
  PR 1's bespoke engine-only ``list.remove`` ban to every hot-path
  module;
* ``Simulation(allocator="reference")`` re-solves with the pure
  ``allocate_rates`` every time — whole runs must match the incremental
  engine event for event.
"""

from __future__ import annotations

import inspect
from pathlib import Path

import pytest

import repro.simulate.engine as engine_mod
from repro.simulate import Simulation
from repro.simulate.resources import Resource
from repro.tools.api import lint_file, lint_paths


class TestStructure:
    def test_no_linear_list_remove_in_engine(self):
        """The O(F) ``self._active.remove(flow)`` pattern must not return.

        OPS005 permits ``.remove(`` only on `remove-allow` receivers —
        the allocator's O(|path|) ``_alloc.remove`` bookkeeping call.
        """
        engine_path = Path(inspect.getfile(engine_mod))
        report = lint_file(engine_path)
        assert not [v for v in report.violations if v.rule == "OPS005"], (
            report.render()
        )
        assert "_active" not in engine_path.read_text()

    def test_no_hot_path_regressions_anywhere(self):
        """OPS005 holds (fixed or justified) across simulate/ and core/.

        The generalisation of the old engine-only ban: `list.remove`,
        `list.pop(0)`, `list.insert(0, ..)` and loop string-building are
        banned in every hot-path module, and any exception must carry a
        written `# opass: ignore[OPS005] -- reason` suppression.
        """
        pkg_root = Path(inspect.getfile(engine_mod)).parent.parent
        report = lint_paths([pkg_root / "simulate", pkg_root / "core"])
        offenders = [v for v in report.violations if v.rule == "OPS005"]
        assert not offenders, report.render()
        for v in report.suppressed:
            if v.rule == "OPS005":
                assert v.reason, f"suppression without reason: {v.render()}"

    def test_flow_registry_is_dict(self):
        sim = Simulation()
        assert isinstance(sim._flows, dict)
        assert not hasattr(sim, "_active")

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            Simulation(allocator="magic")

    def test_slot_ids_are_recycled(self):
        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        flows = [sim.start_flow(100, ["r"], lambda f: None) for _ in range(5)]
        sim.cancel_flow(flows[1])
        sim.cancel_flow(flows[3])
        assert len(sim._fid_of) == 3
        assert sorted(sim._free_ids) == [1, 3]
        # a new flow reuses a freed slot instead of growing the arrays
        extra = sim.start_flow(100, ["r"], lambda f: None)
        assert sim._fid_of[extra] in (1, 3)
        assert len(sim._flow_at) == 5


def build_workload(sim):
    """Mixed workload: shared bottlenecks, caps, cancels, timers."""
    sim.add_resources(
        [
            Resource("a", 10.0),
            Resource("b", 4.0),
            Resource("d", 100.0, concurrency_penalty=0.5),
        ]
    )
    events = []

    def note(tag):
        return lambda f=None: events.append((tag, sim.now))

    sim.start_flow(100, ["a", "b"], note("ab"))
    sim.start_flow(100, ["a"], note("a"))
    sim.start_flow(40, ["b"], note("b"), rate_cap=1.5)
    for i in range(4):
        sim.start_flow(60, ["d"], note(f"d{i}"))
    victim = sim.start_flow(500, ["a", "d"], note("victim"))
    sim.schedule(2.0, lambda: (sim.cancel_flow(victim), events.append(("cancel", sim.now))))
    sim.schedule(3.5, note("timer"))

    def spawn_late():
        sim.start_flow(25, ["b", "d"], note("late"))

    sim.schedule(4.0, spawn_late)
    return events


class TestReferenceDifferential:
    def test_runs_match_event_for_event(self):
        runs = {}
        for mode in ("component", "incremental", "reference"):
            sim = Simulation(allocator=mode)
            events = build_workload(sim)
            end = sim.run()
            runs[mode] = (events, end, sim.events_processed, sim.completed_flows)
        assert runs["incremental"] == runs["reference"]
        # Component-sliced rounding drifts from the global solve by at
        # most an ulp: same tag order and event counts, times ≤1e-9 off.
        comp_events, comp_end, comp_n, comp_done = runs["component"]
        ref_events, ref_end, ref_n, ref_done = runs["reference"]
        assert (comp_n, comp_done) == (ref_n, ref_done)
        assert [tag for tag, _ in comp_events] == [tag for tag, _ in ref_events]
        for (_, tc), (_, tr) in zip(comp_events, ref_events):
            assert tc == pytest.approx(tr, rel=1e-9, abs=1e-9)
        assert comp_end == pytest.approx(ref_end, rel=1e-9)

    def test_partial_run_remaining_match(self):
        states = {}
        for mode in ("component", "incremental", "reference"):
            sim = Simulation(allocator=mode)
            sim.add_resources([Resource("a", 10.0), Resource("b", 4.0)])
            f1 = sim.start_flow(100, ["a", "b"], lambda f: None)
            f2 = sim.start_flow(100, ["a"], lambda f: None)
            sim.run(until=3.0)
            states[mode] = (sim.now, f1.remaining, f2.remaining)
        assert states["incremental"] == states["reference"]
        assert states["component"] == pytest.approx(states["reference"], rel=1e-9)

    def test_current_rate_matches(self):
        rates = {}
        for mode in ("component", "incremental", "reference"):
            sim = Simulation(allocator=mode)
            sim.add_resources([Resource("a", 10.0), Resource("b", 4.0)])
            f1 = sim.start_flow(100, ["a", "b"], lambda f: None)
            f2 = sim.start_flow(100, ["a"], lambda f: None)
            f3 = sim.start_flow(100, ["b"], lambda f: None, rate_cap=1.0)
            rates[mode] = (sim.current_rate(f1), sim.current_rate(f2), sim.current_rate(f3))
        assert rates["incremental"] == rates["reference"]
        assert rates["component"] == pytest.approx(rates["reference"], rel=1e-9)
