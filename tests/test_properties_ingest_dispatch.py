"""Property-based tests for the write pipeline and dispatch policies."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessPlacement, tasks_from_dataset
from repro.core.delay_scheduling import DelaySchedulingPolicy, LocalityGreedyPolicy
from repro.core.bipartite import graph_from_filesystem
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    HdfsWriterLocalPlacement,
    uniform_dataset,
)
from repro.dfs.chunk import MB
from repro.simulate import DatasetIngest, ParallelReadRun, Wait
from repro.simulate.ingest import pipeline_path


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_ingest_conserves_data_and_registers_replicas(m, r, n, seed):
    r = min(r, m)
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(m),
        replication=r,
        placement=HdfsWriterLocalPlacement(),
        seed=seed,
    )
    ds = uniform_dataset("w", n, chunk_size=4 * MB)
    writers = ProcessPlacement.one_per_node(m)
    result = DatasetIngest(fs, writers, ds, seed=seed).run()
    assert len(result.records) == n
    assert result.bytes_written == n * 4 * MB
    layout = fs.layout_snapshot()
    for cid, nodes in layout.items():
        assert len(nodes) == r
        assert len(set(nodes)) == r
        for node in nodes:
            assert fs.datanodes[node].holds(cid)
    # First replica always on the writer (writer-local placement).
    for rec in result.records:
        assert rec.pipeline[0] == rec.writer_node
    # Write durations positive and ordered sanely.
    d = result.durations()
    assert (d > 0).all()


@given(
    st.integers(min_value=0, max_value=20),
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=4,
             unique=True),
)
@settings(max_examples=40, deadline=None)
def test_pipeline_path_no_duplicates_and_all_disks(writer, replicas):
    path = pipeline_path(writer, tuple(replicas))
    assert len(set(path)) == len(path)
    for node in replicas:
        assert f"disk:{node}" in path


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=0, max_value=500),
    st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_dispatch_policies_cover_every_task_exactly_once(m, n, seed, use_delay):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    fs.put_dataset(uniform_dataset("d", n, chunk_size=4 * MB))
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(fs.dataset("d"))
    graph = graph_from_filesystem(fs, tasks, placement)
    if use_delay:
        policy = DelaySchedulingPolicy(
            graph, max_delay=0.5, poll_interval=0.25, seed=seed
        )
    else:
        policy = LocalityGreedyPolicy(graph, seed=seed)
    result = ParallelReadRun(fs, placement, tasks, policy, seed=seed).run()
    assert result.tasks_completed == n
    assert sorted(rec.task_id for rec in result.records) == list(range(n))
    assert result.local_bytes + result.remote_bytes == n * 4 * MB


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=4, max_value=16),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=15, deadline=None)
def test_greedy_locality_beats_random_dispatch_on_average(m, n, seed):
    """Locality-greedy dispatch reads more locally than the random master
    in expectation.  (Per-instance it can lose on tiny pools: a worker with
    no local task grabs a random one that happened to be another worker's
    only local chunk — so the property is statistical, averaged over
    sub-seeds of the same layout family.)"""
    from repro.core import DefaultDynamicPolicy

    def run(policy_kind, sub):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed + sub)
        fs.put_dataset(uniform_dataset("d", n, chunk_size=4 * MB))
        placement = ProcessPlacement.one_per_node(m)
        tasks = tasks_from_dataset(fs.dataset("d"))
        graph = graph_from_filesystem(fs, tasks, placement)
        if policy_kind == "greedy":
            policy = LocalityGreedyPolicy(graph, seed=seed + sub)
        else:
            policy = DefaultDynamicPolicy(n, mode="random", seed=seed + sub)
        return ParallelReadRun(fs, placement, tasks, policy, seed=seed + sub).run()

    greedy = np.mean([run("greedy", s).locality_fraction for s in range(5)])
    random_ = np.mean([run("random", s).locality_fraction for s in range(5)])
    assert greedy >= random_ - 0.1
