"""Tests for the multi-input comparison application."""

import pytest

from repro.apps.multi_input import MultiInputComparison
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.dfs.chunk import MB
from repro.workloads import multi_input_datasets


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(spec, seed=41)
    datasets = multi_input_datasets(40)
    for ds in datasets:
        fs.put_dataset(ds)
    return fs, ProcessPlacement.one_per_node(8), datasets


class TestSetup:
    def test_tasks_have_three_inputs(self, env):
        fs, placement, datasets = env
        app = MultiInputComparison(fs, placement, datasets)
        assert len(app.tasks) == 40
        assert all(len(t.inputs) == 3 for t in app.tasks)

    def test_task_reads_60mb(self, env):
        fs, placement, datasets = env
        app = MultiInputComparison(fs, placement, datasets)
        sizes = [fs.chunk(cid).size for cid in app.tasks[0].inputs]
        assert sorted(sizes) == [10 * MB, 20 * MB, 30 * MB]

    def test_empty_datasets_rejected(self, env):
        fs, placement, _ = env
        with pytest.raises(ValueError):
            MultiInputComparison(fs, placement, [])

    def test_graph_cached(self, env):
        fs, placement, datasets = env
        app = MultiInputComparison(fs, placement, datasets)
        assert app.graph is app.graph


class TestExecution:
    def test_baseline_run(self, env):
        fs, placement, datasets = env
        out = MultiInputComparison(fs, placement, datasets).execute(seed=1)
        assert out.result.tasks_completed == 40
        assert len(out.result.records) == 120  # 3 reads per task

    def test_opass_improves_locality_and_io(self, env):
        fs, placement, datasets = env
        base = MultiInputComparison(fs, placement, datasets, use_opass=False).execute(seed=1)
        fs.reset_counters()
        opass = MultiInputComparison(fs, placement, datasets, use_opass=True).execute(seed=1)
        assert opass.planned_locality > base.planned_locality
        assert opass.result.io_stats()["avg"] < base.result.io_stats()["avg"]

    def test_opass_locality_partial(self, env):
        """§V-A2: 'part of data must be read remotely' — locality improves
        but cannot reach 1 when inputs are scattered."""
        fs, placement, datasets = env
        opass = MultiInputComparison(fs, placement, datasets, use_opass=True).execute(seed=1)
        assert 0.2 < opass.planned_locality < 1.0

    def test_compute_time_passthrough(self):
        def fresh():
            spec = ClusterSpec.homogeneous(8)
            fs = DistributedFileSystem(spec, seed=41)
            datasets = multi_input_datasets(40)
            for ds in datasets:
                fs.put_dataset(ds)
            return fs, ProcessPlacement.one_per_node(8), datasets

        fs, placement, datasets = fresh()
        fast = MultiInputComparison(fs, placement, datasets).execute(seed=1)
        fs, placement, datasets = fresh()  # identical layout + replica picks
        slow = MultiInputComparison(fs, placement, datasets).execute(
            seed=1, compute_time=5.0
        )
        # 5 tasks per process at 5 s compute each bound the makespan below;
        # compute also de-synchronises reads, so compare against that floor
        # rather than fast + constant.
        assert slow.result.makespan >= 25.0
        assert slow.result.makespan > fast.result.makespan
