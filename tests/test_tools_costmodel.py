"""Tests for the OPS300 cost-contract pass (`opass-verify`).

Fixture snippets live in ``tests/data/lint/`` as violating/clean pairs,
same convention as OPS101–OPS103 and OPS201–OPS204.  The OPS302 bad
fixture puts the expensive work two call levels below the contracted
function, so only the interprocedural cost fixed point can price it.
OPS304 has no source fixtures — it reads bench-counter JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.api import ALL_RULES, lint_file, lint_paths
from repro.tools.callgraph import Project, parse_module
from repro.tools.config import LintConfig
from repro.tools.costmodel import (
    COST_RULES,
    axis_level,
    check_contract_echo,
    resolve_costs,
)
from repro.tools.model import marker_lines, parse_pragmas
from repro.tools.summaries import resolve_summaries, summarize_module
from repro.tools.verify import (
    EXIT_OK,
    EXIT_VIOLATIONS,
    main,
    verify_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint"

COST_RULE_IDS = ("OPS301", "OPS302", "OPS303", "OPS304")


def verify_fixture(name: str):
    path = FIXTURES / f"{name}.py"
    return verify_source(path.read_text(encoding="utf-8"), path=str(path))


def rules_in(report):
    return {v.rule for v in report.violations}


# -- fixture pairs -----------------------------------------------------------


class TestFixturePairs:
    @pytest.mark.parametrize(
        "name, rule",
        [
            ("ops301_bad", "OPS301"),
            ("ops301_flowtable_bad", "OPS301"),
            ("ops302_bad", "OPS302"),
            ("ops303_bad", "OPS303"),
        ],
    )
    def test_bad_fixture_trips_exactly_its_rule(self, name, rule):
        report = verify_fixture(name)
        assert rules_in(report) == {rule}, report.render()

    @pytest.mark.parametrize(
        "name", ("ops301_ok", "ops301_flowtable_ok", "ops302_ok", "ops303_ok")
    )
    def test_clean_fixture_is_clean(self, name):
        report = verify_fixture(name)
        assert report.ok, report.render()

    def test_rule_table_registered(self):
        assert set(COST_RULE_IDS) == set(COST_RULES)
        assert set(COST_RULES) <= set(ALL_RULES)

    def test_ops303_flags_each_quadratic_shape(self):
        report = verify_fixture("ops303_bad")
        messages = " / ".join(v.message for v in report.violations)
        assert len(report.violations) == 3, report.render()
        assert "membership test on list parameter" in messages
        assert "'+=' growth" in messages
        assert "nested iteration over the same axis" in messages


# -- interprocedural depth ---------------------------------------------------


class TestInterproceduralDepth:
    """The expensive work sits ≥2 call levels below the contracted fn."""

    def test_ops302_names_the_call_chain(self):
        report = verify_fixture("ops302_bad")
        [v] = report.violations
        # flagged at the call site inside the contracted function…
        assert v.line == 15
        # …but the witness names the chain down to the real allocation.
        assert "via ComponentAllocator._refresh" in v.message
        assert "ComponentAllocator._rebuild_index" in v.message
        assert "line 23" in v.message

    def test_ops301_fires_without_any_call_chain(self):
        report = verify_fixture("ops301_bad")
        [v] = report.violations
        assert v.line == 13
        assert "O(n) list() build" in v.message
        assert "O(deg) budget" in v.message


# -- the cost lattice itself -------------------------------------------------


UNIT_SRC = '''\
# opass-lint: module=repro.unit.cost
def leaf(items):
    return [x for x in items]


def mid(items):
    return leaf(items)


def top(batches):
    out = []
    for b in batches:
        out.extend(mid(b))
    return out
'''


class TestCostLattice:
    def test_axis_classification(self):
        config = LintConfig()
        assert axis_level("<const>", config) == 0
        assert axis_level("<element>", config) == 1
        assert axis_level("<while>", config) == 2
        # registered small axes charge O(deg); everything else O(n).
        assert axis_level("flows", config) == 1
        assert axis_level("path", config) == 1
        assert axis_level("_tracked", config) == 2

    def test_costs_propagate_through_two_call_levels(self):
        decl = parse_module(UNIT_SRC, path="unit.py")
        project = Project()
        project.add_module(decl)
        local = {
            f"{decl.module}.{name}": summary
            for name, summary in summarize_module(decl).items()
        }
        costs = resolve_costs(resolve_summaries(project, local), LintConfig())
        leaf = costs["repro.unit.cost.leaf"]
        mid = costs["repro.unit.cost.mid"]
        top = costs["repro.unit.cost.top"]
        assert leaf.level == 2  # O(n) list build
        assert mid.level == 2  # inherits leaf's cost at loop depth 0
        assert top.level >= 4  # O(n) callee under an O(n) loop
        assert any("leaf" in key for key in mid.chain)

    def test_alloc_ok_waives_exactly_its_line(self):
        src = FIXTURES.joinpath("ops301_ok.py").read_text(encoding="utf-8")
        waived = marker_lines(src, "alloc-ok")
        assert waived == {13}
        # strip the waiver and the same source trips OPS301.
        stripped = src.replace(
            "  # opass: alloc-ok -- epoch debug snapshot, "
            "guarded off the hot path",
            "",
        )
        report = verify_source(stripped, path="ops301_stripped.py")
        assert rules_in(report) == {"OPS301"}, report.render()


# -- unified pragma grammar (OPS000) -----------------------------------------


class TestPragmaGrammar:
    def test_bad_fixture_trips_exactly_ops000(self):
        report = lint_file(FIXTURES / "ops000_pragma_bad.py")
        assert rules_in(report) == {"OPS000"}, report.render()
        assert len(report.violations) == 3
        messages = " / ".join(v.message for v in report.violations)
        assert "invalid reassoc-ok pragma: missing reason" in messages
        assert "invalid alloc-ok pragma: missing reason" in messages
        assert "unknown pragma kind 'vectorize-ok'" in messages

    def test_clean_fixture_is_clean_under_lint_and_verify(self):
        path = FIXTURES / "ops000_pragma_ok.py"
        assert lint_file(path).ok
        report = verify_source(
            path.read_text(encoding="utf-8"), path=str(path)
        )
        assert report.ok, report.render()

    def test_verify_agrees_on_grammar_errors(self):
        path = FIXTURES / "ops000_pragma_bad.py"
        report = verify_source(
            path.read_text(encoding="utf-8"), path=str(path)
        )
        assert rules_in(report) == {"OPS000"}, report.render()

    def test_prose_mentioning_pragmas_is_not_a_pragma(self):
        src = (
            '"""Write `# opass: alloc-ok` to waive.\n\n'
            "Also `# opass: frob` would be unknown.\n"
            '"""\n'
            "GRAMMAR = \"# opass: reassoc-ok\"\n"
        )
        index = parse_pragmas(src, "doc.py", None)
        assert not index.errors
        assert not index.markers

    def test_malformed_markers_never_waive(self):
        src = "x = list(y)  # opass: alloc-ok\n"
        assert marker_lines(src, "alloc-ok") == set()
        index = parse_pragmas(src, "snippet.py", None)
        assert [v.rule for v in index.errors] == ["OPS000"]


# -- OPS304: contract echo against bench counters ----------------------------


def write_bench(tmp_path: Path, name: str, rows: list[dict]) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps({"scales": rows}), encoding="utf-8")
    return path


class TestContractEcho:
    def test_committed_bench_counters_satisfy_the_contracts(self):
        paths = [REPO_ROOT / "BENCH_sim.json", REPO_ROOT / "BENCH_sched.json"]
        present = [p for p in paths if p.exists()]
        assert present, "committed BENCH_*.json files are missing"
        assert check_contract_echo(present) == []

    def test_bounded_growth_passes(self, tmp_path):
        path = write_bench(
            tmp_path,
            "bench_ok.json",
            [
                {"events": 100, "solve_iterations": 110},
                {"events": 1000, "solve_iterations": 1300},
            ],
        )
        assert check_contract_echo([path]) == []

    def test_super_linear_growth_fails(self, tmp_path):
        path = write_bench(
            tmp_path,
            "bench_bad.json",
            [
                {"events": 100, "solve_iterations": 100},
                {"events": 1000, "solve_iterations": 5000},
            ],
        )
        [v] = check_contract_echo([path])
        assert v.rule == "OPS304"
        assert "'solve_iterations' per 'events'" in v.message
        assert "5.00x" in v.message

    def test_file_recognizing_no_counters_is_an_error(self, tmp_path):
        path = write_bench(
            tmp_path, "bench_alien.json", [{"foo": 1}, {"foo": 2}]
        )
        [v] = check_contract_echo([path])
        assert v.rule == "OPS304"
        assert "no contract-echo counters recognized" in v.message

    def test_unreadable_json_is_an_error(self, tmp_path):
        path = tmp_path / "bench_broken.json"
        path.write_text("{not json", encoding="utf-8")
        [v] = check_contract_echo([path])
        assert v.rule == "OPS304"
        assert "cannot read bench counters" in v.message

    def test_cli_contracts_check_exit_codes(self, tmp_path, capsys):
        good = write_bench(
            tmp_path,
            "bench_good.json",
            [
                {"events": 100, "solve_iterations": 110},
                {"events": 1000, "solve_iterations": 1300},
            ],
        )
        bad = write_bench(
            tmp_path,
            "bench_regress.json",
            [
                {"events": 100, "solve_iterations": 100},
                {"events": 1000, "solve_iterations": 9000},
            ],
        )
        assert main(["--contracts-check", str(good)]) == EXIT_OK
        capsys.readouterr()
        assert main(["--contracts-check", str(bad)]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "OPS304" in out


# -- relaxed lint profile over extra-paths -----------------------------------


class TestRelaxedProfile:
    def make_tree(self, tmp_path: Path, body: str) -> Path:
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_x.py").write_text(body, encoding="utf-8")
        return bench

    def test_sweep_tolerates_seeded_rng(self, tmp_path):
        bench = self.make_tree(
            tmp_path,
            "import random\n\nRNG = random.Random(1234)\n",
        )
        config = LintConfig(extra_paths=("benchmarks",))
        assert lint_paths([bench], config=config).ok

    def test_sweep_still_flags_unseeded_rng(self, tmp_path):
        bench = self.make_tree(
            tmp_path,
            "import random\n\nRNG = random.Random()\n",
        )
        config = LintConfig(extra_paths=("benchmarks",))
        report = lint_paths([bench], config=config)
        assert rules_in(report) == {"OPS001"}, report.render()

    def test_explicit_file_gets_the_full_profile(self, tmp_path):
        bench = self.make_tree(
            tmp_path,
            "import random\n\nRNG = random.Random(1234)\n",
        )
        config = LintConfig(extra_paths=("benchmarks",))
        report = lint_paths([bench / "bench_x.py"], config=config)
        assert "OPS001" in rules_in(report), report.render()
