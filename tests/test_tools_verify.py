"""Tests for `opass-verify` (OPS101–OPS103): rules, SARIF, baseline, CLI.

Fixture snippets live in ``tests/data/lint/`` as violating/clean pairs,
same convention as the intraprocedural rules.  Each bad fixture contains
at least one violation that *only* interprocedural analysis can catch —
the defect sits two or more call levels away from the code that flags.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.api import ALL_RULES
from repro.tools.baseline import apply_baseline, fingerprints, write_baseline
from repro.tools.interproc import INTERPROC_RULES
from repro.tools.sarif import to_sarif
from repro.tools.verify import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_VIOLATIONS,
    main,
    verify_paths,
    verify_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint"

VERIFY_RULES = ("OPS101", "OPS102", "OPS103")


def verify_fixture(name: str):
    path = FIXTURES / f"{name}.py"
    return verify_source(path.read_text(encoding="utf-8"), path=str(path))


def rules_in(report):
    return {v.rule for v in report.violations}


class TestFixturePairs:
    @pytest.mark.parametrize("rule", VERIFY_RULES)
    def test_bad_fixture_trips_exactly_its_rule(self, rule):
        report = verify_fixture(f"{rule.lower()}_bad")
        assert rules_in(report) == {rule}, report.render()

    @pytest.mark.parametrize("rule", VERIFY_RULES)
    def test_clean_fixture_is_clean(self, rule):
        report = verify_fixture(f"{rule.lower()}_ok")
        assert report.ok, report.render()

    def test_rule_table_registered(self):
        assert set(VERIFY_RULES) <= set(INTERPROC_RULES)
        assert set(INTERPROC_RULES) <= set(ALL_RULES)


class TestInterproceduralDepth:
    """The defect is ≥2 call levels from the flagged site."""

    def test_ops101_entropy_through_two_call_levels(self):
        # pick_node calls _tiebreak calls _raw_entropy calls id(); the
        # decision site itself contains no entropy call at all.
        report = verify_fixture("ops101_bad")
        lines = {v.line for v in report.violations if v.rule == "OPS101"}
        assert 12 in lines, report.render()  # salt = _tiebreak()
        msgs = [v.message for v in report.violations if v.line == 12]
        assert any("_tiebreak" in m for m in msgs), report.render()

    def test_ops101_unseeded_draw_and_tainted_global(self):
        report = verify_fixture("ops101_bad")
        msgs = [v.message for v in report.violations]
        assert any("entropy-tainted generator" in m for m in msgs)
        assert any("global assignment stores entropy" in m for m in msgs)

    def test_ops101_seeded_injected_generator_is_clean(self):
        # ops101_ok threads a Generator through the same three call
        # levels; rng taint (seeded machinery) must not flag.
        assert verify_fixture("ops101_ok").ok

    def test_ops102_inferred_units_through_forwarding_helper(self):
        # indirect -> _forward -> read_time: _forward has no annotations
        # and no conventional names; its param units exist only via
        # fixed-point inference from what it forwards into read_time.
        report = verify_fixture("ops102_bad")
        indirect = [v for v in report.violations if v.line == 28]
        assert len(indirect) == 2, report.render()
        assert all("_forward" in v.message for v in indirect)

    def test_ops103_mutation_two_levels_down_names_the_culprit(self):
        report = verify_fixture("ops103_bad")
        [mutation] = [v for v in report.violations if "cluster" in v.message]
        assert mutation.line == 10  # flagged at assign's def, not at _bump
        assert "via repro.core.opass._account" in mutation.message

    def test_ops103_copy_then_mutate_is_clean(self):
        # _snapshot returns dict(...); the call boundary insulates the
        # copy from the protected argument it was derived from.
        assert verify_fixture("ops103_ok").ok


class TestComponentAllocatorPurity:
    """The component allocator's solve path is registered pure: it may
    read cluster state but never write Cluster/NameNode/DataNode."""

    def test_module_is_registered_pure(self):
        from repro.tools.config import DEFAULT_PURE_MODULES

        assert "repro.simulate.components" in DEFAULT_PURE_MODULES

    def test_solve_mutating_dfs_state_is_flagged(self):
        report = verify_fixture("ops103_components_bad")
        assert rules_in(report) == {"OPS103"}, report.render()
        [mutation] = [v for v in report.violations if "cluster" in v.message]
        assert mutation.line == 11  # flagged at solve's def, not _charge
        assert "_commit" in mutation.message

    def test_private_bookkeeping_solve_is_clean(self):
        assert verify_fixture("ops103_components_ok").ok

    def test_real_components_module_is_clean_with_zero_suppressions(self):
        path = REPO_ROOT / "src" / "repro" / "simulate" / "components.py"
        report = verify_source(path.read_text(encoding="utf-8"), path=str(path))
        assert report.ok, report.render()
        assert report.suppressed == [], report.render()


class TestMatchingKernelPurity:
    """The CSR matching kernels are registered pure: they may read the
    block layout through snapshots but never write DFS state."""

    def test_new_kernel_modules_are_registered_pure(self):
        from repro.tools.config import DEFAULT_PURE_MODULES

        assert "repro.core.csr" in DEFAULT_PURE_MODULES
        assert "repro.core.flownetwork" in DEFAULT_PURE_MODULES

    def test_solver_reserving_dfs_capacity_is_flagged(self):
        report = verify_fixture("ops103_flownetwork_bad")
        assert rules_in(report) == {"OPS103"}, report.render()
        [mutation] = [v for v in report.violations if "fs" in v.message]
        assert mutation.line == 11  # flagged at max_flow's def, not _reserve
        assert "_augment" in mutation.message

    def test_private_buffer_solver_is_clean(self):
        assert verify_fixture("ops103_flownetwork_ok").ok

    @pytest.mark.parametrize(
        "relpath",
        [
            ("core", "csr.py"),
            ("core", "flownetwork.py"),
            ("core", "mincostflow.py"),
            ("core", "bipartite.py"),
        ],
    )
    def test_real_kernel_modules_clean_with_zero_suppressions(self, relpath):
        path = REPO_ROOT.joinpath("src", "repro", *relpath)
        report = verify_source(path.read_text(encoding="utf-8"), path=str(path))
        assert report.ok, report.render()
        assert report.suppressed == [], report.render()


class TestSuppressions:
    def test_pragma_suppresses_verify_rule(self):
        source = (
            "# opass-lint: module=repro.core.x\n"
            "def pick(nodes):\n"
            "    k = id(nodes)  # opass: ignore[OPS101] -- documented tiebreak\n"
            "    return nodes[k % len(nodes)]\n"
        )
        report = verify_source(source, path="x.py")
        assert report.ok, report.render()
        assert {v.rule for v in report.suppressed} == {"OPS101"}
        assert report.suppressed[0].reason == "documented tiebreak"

    def test_real_tree_is_clean(self):
        report = verify_paths([str(REPO_ROOT / "src")])
        assert report.ok, report.render()


class TestSarif:
    def test_schema_shape(self):
        report = verify_fixture("ops103_bad")
        log = to_sarif(report)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        [run] = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "opass-verify"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(ALL_RULES)
        assert all("shortDescription" in r for r in driver["rules"])
        assert len(run["results"]) == len(report.violations)
        for result in run["results"]:
            assert result["ruleId"] in ALL_RULES
            assert result["ruleIndex"] == rule_ids.index(result["ruleId"])
            assert result["message"]["text"]
            [loc] = result["locations"]
            region = loc["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_suppressed_results_carry_justification(self):
        source = (
            "# opass-lint: module=repro.core.x\n"
            "def pick(nodes):\n"
            "    return nodes[id(nodes) % len(nodes)]"
            "  # opass: ignore[OPS101] -- fixture\n"
        )
        log = to_sarif(verify_source(source, path="x.py"))
        [result] = log["runs"][0]["results"]
        assert result["suppressions"] == [
            {"kind": "inSource", "justification": "fixture"}
        ]

    def test_sarif_is_json_serializable(self):
        log = to_sarif(verify_fixture("ops101_bad"))
        assert json.loads(json.dumps(log)) == log


class TestBaseline:
    def test_roundtrip_drops_known_keeps_new(self, tmp_path):
        report = verify_fixture("ops102_bad")
        n = len(report.violations)
        assert n > 0
        base = tmp_path / "base.json"
        write_baseline(base, report)

        # same findings again → all dropped
        again = verify_fixture("ops102_bad")
        dropped = apply_baseline(base, again)
        assert dropped == n and again.ok

        # a different rule's findings are not masked
        other = verify_fixture("ops103_bad")
        dropped = apply_baseline(base, other)
        assert dropped == 0 and not other.ok

    def test_baseline_survives_line_shift(self, tmp_path):
        # fingerprints hash the offending line's text, not its number, so
        # prepending lines to the file must not resurface old findings
        target = tmp_path / "mod.py"
        source = (FIXTURES / "ops103_bad.py").read_text(encoding="utf-8")
        target.write_text(source, encoding="utf-8")
        base = tmp_path / "base.json"
        write_baseline(base, verify_source(source, path=str(target)))

        shifted = "# shim comment\n\n" + source
        target.write_text(shifted, encoding="utf-8")
        report = verify_source(shifted, path=str(target))
        assert not report.ok
        dropped = apply_baseline(base, report)
        assert dropped > 0 and report.ok, report.render()

    def test_fingerprints_count_duplicate_lines_separately(self):
        report = verify_fixture("ops102_bad")
        prints = fingerprints(report.violations)
        assert len(prints) == len(set(prints))

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        report = verify_fixture("ops101_bad")
        with pytest.raises(ValueError):
            apply_baseline(bad, report)


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        code = main([str(REPO_ROOT / "src"), "--no-cache"])
        assert code == EXIT_OK
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        code = main([str(FIXTURES / "ops101_bad.py"), "--no-cache"])
        assert code == EXIT_VIOLATIONS
        assert "OPS101" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/here"]) == EXIT_ERROR

    def test_list_rules_includes_both_families(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule in ("OPS001", "OPS101", "OPS102", "OPS103"):
            assert rule in out

    def test_sarif_format_and_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        code = main(
            [
                str(FIXTURES / "ops103_bad.py"),
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(out_file),
            ]
        )
        assert code == EXIT_VIOLATIONS
        log = json.loads(out_file.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_baseline_flags(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        bad = str(FIXTURES / "ops101_bad.py")
        assert main([bad, "--no-cache", "--write-baseline", str(base)]) == EXIT_OK
        assert main([bad, "--no-cache", "--baseline", str(base)]) == EXIT_OK

    def test_stats_flag_reports_counters(self, tmp_path, capsys):
        code = main(
            [
                str(FIXTURES / "ops102_ok.py"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--stats",
            ]
        )
        assert code == EXIT_OK
        assert "summary_misses=1" in capsys.readouterr().err


class TestLintIntegration:
    def test_lint_interprocedural_merges_rules(self, capsys):
        from repro.tools.lint import main as lint_main

        code = lint_main(
            [str(FIXTURES / "ops101_bad.py"), "--interprocedural", "--format", "json"]
        )
        assert code == EXIT_VIOLATIONS
        data = json.loads(capsys.readouterr().out)
        found = {v["rule"] for v in data["violations"]}
        assert "OPS101" in found
        # the same fixture also trips the intraprocedural unseeded-RNG rule
        assert "OPS001" in found

    def test_lint_does_not_flag_verify_pragmas(self):
        # an OPS101 pragma in a file linted *without* --interprocedural
        # must not be reported as an unknown rule id (OPS000)
        from repro.tools.api import lint_source

        report = lint_source(
            "x = 1  # opass: ignore[OPS101] -- not relevant to plain lint\n",
            module="repro.analysis.x",
        )
        assert report.ok, report.render()
