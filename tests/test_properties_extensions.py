"""Property-based tests for the extension subsystems.

* min-cost flow: cost optimality vs brute-force path enumeration on tiny
  assignment instances, and flow value == plain max-flow;
* remote balancing: max-load optimality vs exhaustive assignment search on
  small instances; feasibility always;
* rebalancer: replica-count and inventory invariants on random skews;
* proportional quotas: exact totals and within-one-of-share for random
  weights.
"""

from __future__ import annotations

from itertools import product

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flownetwork import FlowNetwork
from repro.core.heterogeneous import proportional_quotas
from repro.core.mincostflow import MinCostFlowNetwork
from repro.core.remote_balance import plan_remote_reads
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    Rebalancer,
    SkewedPlacement,
    uniform_dataset,
)
from repro.dfs.chunk import MB, ChunkId


# -- min-cost flow -----------------------------------------------------------


@st.composite
def small_assignment_instances(draw):
    """Tiny bipartite assignment problems solvable by brute force."""
    left = draw(st.integers(min_value=1, max_value=4))
    right = draw(st.integers(min_value=left, max_value=5))
    costs = [
        [draw(st.integers(min_value=0, max_value=9)) for _ in range(right)]
        for _ in range(left)
    ]
    return left, right, costs


def _brute_force_assignment(left: int, right: int, costs) -> int:
    """Min total cost of assigning each left vertex a distinct right one."""
    best = None
    for perm in product(range(right), repeat=left):
        if len(set(perm)) != left:
            continue
        cost = sum(costs[i][perm[i]] for i in range(left))
        best = cost if best is None else min(best, cost)
    assert best is not None
    return best


@given(small_assignment_instances())
@settings(max_examples=50, deadline=None)
def test_mincost_matches_bruteforce_assignment(instance):
    left, right, costs = instance
    # 0 = s, 1..left, left+1..left+right, t = left+right+1
    net = MinCostFlowNetwork(left + right + 2)
    s, t = 0, left + right + 1
    for i in range(left):
        net.add_edge(s, 1 + i, 1, 0)
    for j in range(right):
        net.add_edge(1 + left + j, t, 1, 0)
    for i in range(left):
        for j in range(right):
            net.add_edge(1 + i, 1 + left + j, 1, costs[i][j])
    flow, cost = net.min_cost_flow(s, t)
    assert flow == left
    assert cost == _brute_force_assignment(left, right, costs)


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_mincost_flow_value_equals_maxflow(seed):
    """Min-cost max-flow routes the same amount as plain max-flow."""
    rng = np.random.default_rng(seed)
    n = 8
    mc = MinCostFlowNetwork(n)
    mf = FlowNetwork(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.3:
                cap = int(rng.integers(1, 10))
                cost = int(rng.integers(0, 5))
                mc.add_edge(u, v, cap, cost)
                mf.add_edge(u, v, cap)
    flow, _ = mc.min_cost_flow(0, n - 1)
    assert flow == mf.dinic(0, n - 1)


# -- remote balancing -----------------------------------------------------------


@st.composite
def balance_instances(draw):
    n_chunks = draw(st.integers(min_value=1, max_value=6))
    n_nodes = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = np.random.default_rng(seed)
    chunks = [ChunkId(f"c{i}", 0) for i in range(n_chunks)]
    r = min(2, n_nodes)
    locations = {
        c: tuple(int(x) for x in rng.choice(n_nodes, size=r, replace=False))
        for c in chunks
    }
    return chunks, locations


def _brute_force_min_max_load(chunks, locations) -> int:
    best = None
    options = [locations[c] for c in chunks]
    for combo in product(*options):
        load: dict[int, int] = {}
        for node in combo:
            load[node] = load.get(node, 0) + 1
        worst = max(load.values())
        best = worst if best is None else min(best, worst)
    assert best is not None
    return best


@given(balance_instances())
@settings(max_examples=60, deadline=None)
def test_remote_balance_minimises_max_load(instance):
    chunks, locations = instance
    plan = plan_remote_reads(chunks, locations)
    assert set(plan.server_of) == set(chunks)
    for c, server in plan.server_of.items():
        assert server in locations[c]
    assert plan.max_load == _brute_force_min_max_load(chunks, locations)


# -- rebalancer ---------------------------------------------------------------------


@given(
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=8, max_value=40),
    st.sampled_from([0.25, 0.5]),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_rebalancer_preserves_replica_sets(m, n, excluded, seed):
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(m),
        placement=SkewedPlacement(excluded_fraction=excluded),
        seed=seed,
    )
    fs.put_dataset(uniform_dataset("d", n, chunk_size=MB))
    before = fs.layout_snapshot()
    reb = Rebalancer(fs, threshold=0.2)
    spread_before = reb.utilisation_spread()
    reb.run()
    after = fs.layout_snapshot()
    assert set(after) == set(before)
    for cid in after:
        assert len(after[cid]) == len(before[cid])
        assert len(set(after[cid])) == len(after[cid])
        for node in after[cid]:
            assert fs.datanodes[node].holds(cid)
    # Total stored bytes conserved.
    total_before = sum(len(v) for v in before.values())
    total_after = sum(len(v) for v in after.values())
    assert total_before == total_after
    assert reb.utilisation_spread() <= spread_before + 1e-9


# -- proportional quotas ------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=12),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=80, deadline=None)
def test_proportional_quotas_exact_and_fair(weights, total):
    if sum(weights) == 0:
        weights = [w + 1.0 for w in weights]
    quotas = proportional_quotas(weights, total)
    assert sum(quotas) == total
    assert all(q >= 0 for q in quotas)
    wsum = sum(weights)
    for q, w in zip(quotas, weights):
        share = w / wsum * total
        assert share - 1 < q < share + 1
