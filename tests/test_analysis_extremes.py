"""Tests for the hottest-node (extreme value) analysis."""

import numpy as np
import pytest

from repro.analysis import (
    empirical_max_served,
    expected_max_served,
    hotspot_summary,
    max_served_cdf,
    max_served_pmf,
)


class TestDistribution:
    def test_cdf_monotone_and_bounded(self):
        ks = np.arange(0, 30)
        cdf = np.asarray(max_served_cdf(ks, 128, 3, 64))
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[0] >= 0
        assert cdf[-1] <= 1

    def test_pmf_sums_to_one(self):
        pmf = max_served_pmf(128, 3, 64)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        assert (pmf >= -1e-12).all()

    def test_max_stochastically_dominates_single_node(self):
        """P(max ≤ k) ≤ P(Z ≤ k) for every k."""
        from repro.analysis import cdf_served_chunks

        ks = np.arange(0, 30)
        max_cdf = np.asarray(max_served_cdf(ks, 128, 3, 64))
        one_cdf = np.asarray(cdf_served_chunks(ks, 128, 3, 64))
        assert (max_cdf <= one_cdf + 1e-12).all()

    def test_expected_max_grows_with_nodes(self):
        """More bins, same per-bin mean -> higher extreme."""
        vals = [expected_max_served(m * 10, 3, m) for m in (16, 64, 256)]
        assert vals == sorted(vals)


class TestPaperNumbers:
    def test_figure1_hotspot(self):
        """Fig 1: 128 chunks / 64 nodes, ideal 2; 'node-43 serves more
        than 6 chunks'."""
        s = hotspot_summary(128, 3, 64)
        assert s.ideal_share == 2.0
        assert 5.0 < s.expected_max < 7.5
        assert s.overload_factor > 2.5

    def test_figure8c_hotspot(self):
        """Fig 8(c): 640 chunks / 64 nodes, ideal 640 MB; hottest
        '>1400 MB' (ours: ~18 chunks = ~1150 MB; same regime)."""
        s = hotspot_summary(640, 3, 64)
        assert s.ideal_share == 10.0
        assert 15.0 < s.expected_max < 22.0


class TestMonteCarloAgreement:
    def test_independence_approx_close_to_exact(self, rng):
        analytic = expected_max_served(640, 3, 64)
        empirical = empirical_max_served(640, 3, 64, trials=150, rng=rng)
        assert empirical == pytest.approx(analytic, rel=0.08)

    def test_small_config(self, rng):
        analytic = expected_max_served(40, 2, 8)
        empirical = empirical_max_served(40, 2, 8, trials=300, rng=rng)
        assert empirical == pytest.approx(analytic, rel=0.12)
