"""Tests for the .vtm-like MultiBlock meta-file format."""

import pytest

from repro.apps.multiblock_io import (
    MultiBlockPiece,
    meta_for_dataset,
    meta_round_trip_equal,
    meta_to_xml,
    parse_meta_xml,
    read_meta_file,
    write_meta_file,
)
from repro.apps.paraview import MultiBlockMetaFile
from repro.workloads import paraview_multiblock_series


@pytest.fixture
def meta():
    return MultiBlockMetaFile("series", ("pdb/step-0", "pdb/step-1", "pdb/step-2"))


class TestPiece:
    def test_valid(self):
        p = MultiBlockPiece(0, "PolyData", "a.vtp")
        assert p.index == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            MultiBlockPiece(-1, "PolyData", "a.vtp")
        with pytest.raises(ValueError):
            MultiBlockPiece(0, "HexMesh", "a.vtp")
        with pytest.raises(ValueError):
            MultiBlockPiece(0, "PolyData", "")


class TestSerialise:
    def test_xml_structure(self, meta):
        xml = meta_to_xml(meta)
        assert '<VTKFile type="vtkMultiBlockDataSet"' in xml
        assert xml.count("<DataSet ") == 3
        assert 'file="pdb/step-1.vtp"' in xml

    def test_dataset_type_selectable(self, meta):
        xml = meta_to_xml(meta, dataset_type="UnstructuredGrid")
        assert 'type="UnstructuredGrid"' in xml
        assert ".vtu" in xml

    def test_unknown_type_rejected(self, meta):
        with pytest.raises(ValueError):
            meta_to_xml(meta, dataset_type="Mystery")

    def test_escaping(self):
        m = MultiBlockMetaFile("s", ('weird"<name>&',))
        xml = meta_to_xml(m)
        assert "&quot;" in xml and "&lt;" in xml and "&amp;" in xml


class TestParse:
    def test_round_trip(self, meta):
        parsed = parse_meta_xml(meta_to_xml(meta))
        assert meta_round_trip_equal(meta, parsed)

    def test_file_round_trip(self, meta, tmp_path):
        path = write_meta_file(meta, tmp_path / "series.vtm")
        loaded = read_meta_file(path)
        assert meta_round_trip_equal(meta, loaded)
        assert loaded.dataset_name == "series"

    def test_rejects_malformed_xml(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_meta_xml("<oops")

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError, match="vtkMultiBlockDataSet"):
            parse_meta_xml("<VTKFile type='PolyData'/>")

    def test_rejects_missing_block(self):
        with pytest.raises(ValueError, match="missing"):
            parse_meta_xml('<VTKFile type="vtkMultiBlockDataSet"/>')

    def test_rejects_bad_indices(self):
        xml = (
            '<VTKFile type="vtkMultiBlockDataSet"><vtkMultiBlockDataSet>'
            '<DataSet index="1" type="PolyData" file="a.vtp"/>'
            "</vtkMultiBlockDataSet></VTKFile>"
        )
        with pytest.raises(ValueError, match="indices"):
            parse_meta_xml(xml)

    def test_rejects_unknown_elements(self):
        xml = (
            '<VTKFile type="vtkMultiBlockDataSet"><vtkMultiBlockDataSet>'
            "<Banana/></vtkMultiBlockDataSet></VTKFile>"
        )
        with pytest.raises(ValueError, match="unexpected element"):
            parse_meta_xml(xml)

    def test_rejects_missing_attributes(self):
        xml = (
            '<VTKFile type="vtkMultiBlockDataSet"><vtkMultiBlockDataSet>'
            '<DataSet index="0" type="PolyData"/>'
            "</vtkMultiBlockDataSet></VTKFile>"
        )
        with pytest.raises(ValueError, match="missing"):
            parse_meta_xml(xml)


class TestIntegration:
    def test_series_dataset_round_trip(self, tmp_path):
        series = paraview_multiblock_series(12)
        meta = meta_for_dataset(series)
        path = write_meta_file(meta, tmp_path / "pdb.vtm")
        loaded = read_meta_file(path)
        assert loaded.num_pieces == 12
        assert meta_round_trip_equal(meta, loaded)
