"""Tests of the §III-A locality model, including the paper's printed numbers."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_local_chunks,
    expected_local_chunks,
    expected_local_fraction,
    figure3_series,
    local_read_probability,
    paper_figure3_series,
    prob_more_than,
)


class TestBasics:
    def test_local_probability_is_r_over_m(self):
        assert local_read_probability(3, 64) == 3 / 64
        assert local_read_probability(1, 1) == 1.0

    def test_expected_local_chunks(self):
        assert expected_local_chunks(512, 3, 64) == pytest.approx(24.0)

    def test_expected_local_fraction_decreases_with_m(self):
        fracs = [expected_local_fraction(3, m) for m in (64, 128, 256, 512)]
        assert fracs == sorted(fracs, reverse=True)

    def test_cdf_monotone_in_k(self):
        ks = np.arange(0, 30)
        cdf = cdf_local_chunks(ks, 512, 3, 128)
        assert (np.diff(cdf) >= 0).all()

    def test_cdf_bounds(self):
        assert cdf_local_chunks(512, 512, 3, 64) == pytest.approx(1.0)
        assert cdf_local_chunks(0, 512, 3, 64) >= 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            cdf_local_chunks(1, 0, 3, 64)
        with pytest.raises(ValueError):
            cdf_local_chunks(1, 512, 0, 64)
        with pytest.raises(ValueError):
            cdf_local_chunks(1, 512, 3, 2)  # m < r


class TestScalingClaim:
    """'The probability of reading data locally exponentially decreases as
    the size of the cluster increases.'"""

    def test_prob_more_than_decreases_with_cluster_size(self):
        probs = [prob_more_than(5, 512, 3, m) for m in (64, 128, 256, 512)]
        assert probs == sorted(probs, reverse=True)

    def test_formula_prob_values(self):
        """The written formula Binomial(n, r/m): P(X>5) near 1 for m=64."""
        assert prob_more_than(5, 512, 3, 64) > 0.99
        assert prob_more_than(5, 512, 3, 512) == pytest.approx(0.0839, abs=0.001)

    def test_m128_more_than_9_is_small(self):
        """§III-A: 'with m = 128, the probability of reading more than 9
        chunks locally is about 2%' — true under the printed (r=1)
        parameterisation read as P(X ≥ 9) (the paper's inclusive 'more
        than'); P(X > 9) is ~0.8%."""
        assert prob_more_than(8, 512, 1, 128) == pytest.approx(0.02, abs=0.005)
        assert prob_more_than(9, 512, 1, 128) < 0.01


class TestFigure3:
    def test_series_shape(self):
        rows = figure3_series(k_max=20)
        assert [r.num_nodes for r in rows] == [64, 128, 256, 512]
        for r in rows:
            assert r.k.shape == (21,)
            assert r.cdf.shape == (21,)
            assert (np.diff(r.cdf) >= 0).all()

    def test_paper_printed_percentages(self):
        """The exact §III-A percentages (which match r=1, see DESIGN.md)."""
        rows = {r.num_nodes: r for r in paper_figure3_series()}
        assert rows[64].prob_more_than_5 == pytest.approx(0.8109, abs=2e-4)
        assert rows[128].prob_more_than_5 == pytest.approx(0.2143, abs=2e-4)
        assert rows[256].prob_more_than_5 == pytest.approx(0.0164, abs=2e-4)
        # The paper's 0.46% for m=512 matches neither formula; the correct
        # Binomial(512, 1/512) tail is ~0.06%.
        assert rows[512].prob_more_than_5 == pytest.approx(0.0006, abs=2e-4)

    def test_invalid_kmax(self):
        with pytest.raises(ValueError):
            figure3_series(k_max=-1)

    def test_larger_cluster_cdf_dominates(self):
        """Bigger clusters shift mass toward fewer local chunks."""
        rows = {r.num_nodes: r for r in figure3_series()}
        assert (rows[512].cdf >= rows[64].cdf - 1e-12).all()
