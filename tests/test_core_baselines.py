"""Tests for the baseline assignment strategies."""

import numpy as np
import pytest

from repro.core.assignment import equal_quotas
from repro.core.baselines import (
    DefaultDynamicPolicy,
    random_assignment,
    rank_interval_assignment,
)


class TestRankInterval:
    def test_paper_formula_even(self):
        a = rank_interval_assignment(8, 4)
        assert a.tasks_of == {0: [0, 1], 1: [2, 3], 2: [4, 5], 3: [6, 7]}

    def test_paper_formula_uneven(self):
        a = rank_interval_assignment(7, 3)
        # floor(i*7/3): [0,2), [2,4), [4,7)
        assert a.tasks_of == {0: [0, 1], 1: [2, 3], 2: [4, 5, 6]}
        a.validate(7)

    def test_intervals_are_contiguous(self):
        a = rank_interval_assignment(100, 7)
        flat = [t for r in range(7) for t in a.tasks_of[r]]
        assert flat == list(range(100))

    def test_loads_within_one(self):
        a = rank_interval_assignment(100, 7)
        loads = [len(ts) for ts in a.tasks_of.values()]
        assert max(loads) - min(loads) <= 1

    def test_zero_tasks(self):
        a = rank_interval_assignment(0, 3)
        assert a.num_tasks == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            rank_interval_assignment(-1, 3)
        with pytest.raises(ValueError):
            rank_interval_assignment(3, 0)


class TestRandomAssignment:
    def test_valid_and_quota_exact(self):
        a = random_assignment(20, 6, seed=1)
        a.validate(20, quotas=equal_quotas(20, 6), exact_quota=True)

    def test_seeded_reproducible(self):
        assert random_assignment(20, 4, seed=5).tasks_of == \
            random_assignment(20, 4, seed=5).tasks_of

    def test_different_seeds_differ(self):
        assert random_assignment(20, 4, seed=5).tasks_of != \
            random_assignment(20, 4, seed=6).tasks_of

    def test_accepts_generator(self):
        gen = np.random.default_rng(0)
        a = random_assignment(10, 2, seed=gen)
        a.validate(10)


class TestDefaultDynamicPolicy:
    def test_fifo_order(self):
        p = DefaultDynamicPolicy(4, mode="fifo")
        assert [p.next_task(0) for _ in range(4)] == [0, 1, 2, 3]
        assert p.next_task(0) is None

    def test_random_covers_all(self):
        p = DefaultDynamicPolicy(10, mode="random", seed=2)
        got = [p.next_task(i % 3) for i in range(10)]
        assert sorted(got) == list(range(10))
        assert p.next_task(0) is None

    def test_random_is_shuffled(self):
        p = DefaultDynamicPolicy(20, mode="random", seed=2)
        got = [p.next_task(0) for _ in range(20)]
        assert got != list(range(20))

    def test_remaining(self):
        p = DefaultDynamicPolicy(3, mode="fifo")
        p.next_task(0)
        assert p.remaining == 2

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DefaultDynamicPolicy(3, mode="lifo")
