"""Unit tests for the DistributedFileSystem facade."""

import numpy as np
import pytest

from repro.dfs import (
    Cluster,
    ClusterSpec,
    DistributedFileSystem,
    FirstListed,
    uniform_dataset,
)
from repro.dfs.chunk import MB, ChunkId


@pytest.fixture
def fs():
    f = DistributedFileSystem(ClusterSpec.homogeneous(6), replication=2, seed=3)
    f.put_dataset(uniform_dataset("d", 12, chunk_size=MB))
    return f


class TestPutDataset:
    def test_replicas_registered_everywhere(self, fs):
        for cid, nodes in fs.layout_snapshot().items():
            assert len(nodes) == 2
            for n in nodes:
                assert fs.datanodes[n].holds(cid)

    def test_replica_count_matches_storage(self, fs):
        total_replicas = sum(fs.replica_count_per_node().values())
        assert total_replicas == 12 * 2

    def test_get_block_locations(self, fs):
        locs = fs.get_block_locations("d/part-00003")
        assert len(locs) == 1
        chunk, nodes = locs[0]
        assert chunk.size == MB
        assert len(nodes) == 2

    def test_duplicate_dataset_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.put_dataset(uniform_dataset("d", 1))

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(ClusterSpec.homogeneous(2), replication=0)


class TestResolveRead:
    def test_local_preferred(self, fs):
        cid = ChunkId("d/part-00000", 0)
        local_node = fs.layout_snapshot()[cid][0]
        plan = fs.resolve_read(cid, local_node)
        assert plan.is_local
        assert plan.server_node == local_node

    def test_remote_chooses_replica_holder(self, fs):
        cid = ChunkId("d/part-00000", 0)
        replicas = set(fs.layout_snapshot()[cid])
        outsider = next(n for n in range(6) if n not in replicas)
        plan = fs.resolve_read(cid, outsider)
        assert not plan.is_local
        assert plan.server_node in replicas

    def test_serve_counters_updated(self, fs):
        cid = ChunkId("d/part-00000", 0)
        node = fs.layout_snapshot()[cid][0]
        fs.resolve_read(cid, node)
        assert fs.datanodes[node].bytes_served == MB
        assert fs.bytes_served_per_node()[node] == MB
        assert fs.requests_served_per_node()[node] == 1

    def test_invalid_reader_node(self, fs):
        with pytest.raises(KeyError):
            fs.resolve_read(ChunkId("d/part-00000", 0), 99)

    def test_unknown_chunk(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.resolve_read(ChunkId("nope", 0), 0)

    def test_decommissioned_node_never_serves(self, fs):
        cid = ChunkId("d/part-00000", 0)
        replicas = fs.layout_snapshot()[cid]
        fs.cluster.decommission(replicas[0])
        outsider = next(
            n for n in fs.cluster.active_nodes if n not in replicas
        )
        for _ in range(10):
            plan = fs.resolve_read(cid, outsider)
            assert plan.server_node != replicas[0]

    def test_no_live_replica_raises(self, fs):
        cid = ChunkId("d/part-00000", 0)
        replicas = fs.layout_snapshot()[cid]
        survivors = [n for n in range(6) if n not in replicas]
        for n in replicas:
            fs.cluster.decommission(n)
        with pytest.raises(RuntimeError, match="no live replica"):
            fs.resolve_read(cid, survivors[0])

    def test_custom_replica_choice_policy(self):
        f = DistributedFileSystem(
            ClusterSpec.homogeneous(6),
            replication=2,
            replica_choice=FirstListed(),
            seed=3,
        )
        f.put_dataset(uniform_dataset("d", 4, chunk_size=MB))
        cid = ChunkId("d/part-00000", 0)
        replicas = f.layout_snapshot()[cid]
        outsider = next(n for n in range(6) if n not in replicas)
        for _ in range(5):
            assert f.resolve_read(cid, outsider).server_node == replicas[0]


class TestCounters:
    def test_reset_counters(self, fs):
        cid = ChunkId("d/part-00000", 0)
        fs.resolve_read(cid, fs.layout_snapshot()[cid][0])
        fs.reset_counters()
        assert all(v == 0 for v in fs.bytes_served_per_node().values())

    def test_accepts_cluster_object(self):
        cluster = Cluster(ClusterSpec.homogeneous(3))
        f = DistributedFileSystem(cluster, seed=0)
        assert f.num_nodes == 3

    def test_rng_seeding_reproducible(self):
        def build(seed):
            f = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=seed)
            f.put_dataset(uniform_dataset("d", 20, chunk_size=MB))
            return f.layout_snapshot()

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_generator_seed_accepted(self):
        gen = np.random.default_rng(0)
        f = DistributedFileSystem(ClusterSpec.homogeneous(3), seed=gen)
        assert f.rng is gen
