"""Tests for the SimPerf instrumentation and its metrics wiring."""

import pytest

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.metrics import SimPerf, perf_summary, run_summary
from repro.simulate import Simulation
from repro.simulate.resources import Resource
from repro.simulate.runner import ParallelReadRun, StaticSource


def drain(sim):
    sim.run()


class TestEngineCounters:
    def test_flow_lifecycle_counts(self):
        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        done = []
        sim.start_flow(50, ["r"], done.append)
        sim.start_flow(30, ["r"], done.append)
        cancelled = sim.start_flow(30, ["r"], done.append)
        sim.cancel_flow(cancelled)
        drain(sim)
        p = sim.perf
        assert p.flows_started == 3
        assert p.flows_finished == 2
        assert p.flows_cancelled == 1
        assert p.flow_events == 2
        assert p.events == sim.events_processed == 2

    def test_timer_events_counted(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.0, lambda: fired.append(sim.now))
        drain(sim)
        assert sim.perf.timer_events == 2
        assert sim.perf.flow_events == 0

    def test_solves_and_heap_are_lazy(self):
        """Timer-only churn must not trigger re-solves or predictions."""
        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        sim.start_flow(100, ["r"], lambda f: None)
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        drain(sim)
        # one initial solve, nothing dirtied until the flow completed
        assert sim.perf.solves == 2
        # the default (component) engine predicts per changed flow and
        # never rebuilds the full prediction set; pushes are bounded by
        # peeks (the tie-snap re-push), not flows x epochs
        assert sim.perf.prediction_rebuilds == 0
        assert 1 <= sim.perf.heap_pushes <= sim.perf.events + 2
        assert sim.perf.solve_iterations >= 1

    def test_cache_modes_rebuild_per_epoch(self):
        """The cache-scan engines rebuild predictions once per rate epoch."""
        for allocator in ("incremental", "reference"):
            sim = Simulation(allocator=allocator)
            sim.add_resource(Resource("r", 10.0))
            sim.start_flow(100, ["r"], lambda f: None)
            for i in range(5):
                sim.schedule(float(i + 1), lambda: None)
            drain(sim)
            assert sim.perf.prediction_rebuilds == 2
            assert sim.perf.heap_pushes == 0

    def test_deprecated_aliases_removed(self):
        """The pre-PR-4 alias names are gone from both API and snapshot."""
        p = SimPerf()
        assert not hasattr(p, "heap_rebuilds")
        assert not hasattr(p, "heap_pops")
        snap = p.snapshot()
        assert "heap_rebuilds" not in snap
        assert "heap_pops" not in snap
        assert "prediction_rebuilds" in snap
        assert "stale_pops" in snap
        assert "memo_hits" in snap
        assert "fastforward_cascades" in snap
        assert "cascade_events" in snap

    def test_wall_clocks_accumulate(self):
        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        for i in range(10):
            # staggered sizes: completions are distinct events, so settle
            # passes run with live flows still present
            sim.start_flow(10.0 * (i + 1), ["r"], lambda f: None)
        drain(sim)
        assert sim.perf.solve_wall >= 0.0
        assert sim.perf.settles > 0
        assert sim.perf.flows_settled > 0

    def test_reset(self):
        p = SimPerf(solves=3, flow_events=7, solve_wall=1.5)
        p.reset()
        assert p == SimPerf()


class TestSnapshotAndSummary:
    def test_snapshot_is_json_ready(self):
        p = SimPerf(solves=2, flow_events=3, timer_events=1)
        snap = p.snapshot()
        assert snap["solves"] == 2
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_perf_summary_derived_ratios(self):
        p = SimPerf(solves=4, solve_iterations=10, flow_events=6, timer_events=2)
        s = perf_summary(p)
        assert s["events"] == 8
        assert s["iterations_per_solve"] == pytest.approx(2.5)
        assert s["solves_per_event"] == pytest.approx(0.5)

    def test_perf_summary_accepts_plain_dict(self):
        s = perf_summary({"solves": 0, "flow_events": 0, "timer_events": 0})
        assert s["iterations_per_solve"] == 0.0
        assert s["solves_per_event"] == 0.0


class TestRunnerWiring:
    def test_run_result_carries_sim_perf(self):
        spec = ClusterSpec.homogeneous(4, seek_latency=0.0, remote_latency=0.0)
        fs = DistributedFileSystem(spec, replication=2, seed=8)
        ds = uniform_dataset("d", 8, chunk_size=10 * MB)
        fs.put_dataset(ds)
        result = ParallelReadRun(
            fs,
            ProcessPlacement.one_per_node(4),
            tasks_from_dataset(ds),
            StaticSource(rank_interval_assignment(8, 4)),
        ).run()
        assert result.sim_perf is not None
        assert result.sim_perf["flows_finished"] >= 8
        assert result.sim_perf["solves"] > 0
        summary = run_summary(result)
        assert summary["sim_perf"]["events"] > 0
