"""Tests for Assignment validation and scoring."""

import pytest

from repro.core.assignment import (
    Assignment,
    equal_quotas,
    fully_local_tasks,
    is_full_matching,
    load_in_bytes,
    load_in_tasks,
    local_bytes,
    locality_fraction,
)
from repro.core.bipartite import ProcessPlacement, build_locality_graph
from repro.core.tasks import Task
from repro.dfs.chunk import MB, ChunkId


class TestEqualQuotas:
    def test_even_split(self):
        assert equal_quotas(12, 4) == [3, 3, 3, 3]

    def test_remainder_interleaved_like_rank_intervals(self):
        assert equal_quotas(14, 4) == [3, 4, 3, 4]

    def test_fewer_tasks_than_processes(self):
        assert equal_quotas(2, 4) == [0, 1, 0, 1]

    def test_matches_rank_interval_loads(self):
        from repro.core.baselines import rank_interval_assignment

        for n in (1, 7, 13, 40):
            for m in (1, 3, 4, 6):
                a = rank_interval_assignment(n, m)
                loads = [len(a.tasks_of[r]) for r in range(m)]
                assert loads == equal_quotas(n, m)

    def test_zero_tasks(self):
        assert equal_quotas(0, 3) == [0, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            equal_quotas(-1, 2)
        with pytest.raises(ValueError):
            equal_quotas(4, 0)

    def test_sum_equals_tasks(self):
        for n in range(0, 30):
            for m in range(1, 7):
                assert sum(equal_quotas(n, m)) == n


class TestAssignment:
    def test_empty_and_assign(self):
        a = Assignment.empty(3)
        a.assign(0, 5)
        a.assign(0, 6)
        a.assign(2, 7)
        assert a.num_tasks == 3
        assert a.tasks_of[0] == [5, 6]

    def test_process_of_inverse(self):
        a = Assignment({0: [1, 2], 1: [0]})
        assert a.process_of() == {1: 0, 2: 0, 0: 1}

    def test_duplicate_assignment_detected(self):
        a = Assignment({0: [1], 1: [1]})
        with pytest.raises(ValueError, match="assigned to ranks"):
            a.process_of()

    def test_validate_coverage(self):
        a = Assignment({0: [0, 1], 1: [2]})
        a.validate(3)
        with pytest.raises(ValueError, match="coverage"):
            a.validate(4)

    def test_validate_quota(self):
        a = Assignment({0: [0, 1], 1: [2]})
        a.validate(3, quotas=[2, 1])
        with pytest.raises(ValueError, match="over quota"):
            a.validate(3, quotas=[1, 2])

    def test_validate_exact_quota(self):
        a = Assignment({0: [0, 1], 1: [2]})
        a.validate(3, quotas=[2, 1], exact_quota=True)
        with pytest.raises(ValueError):
            Assignment({0: [0, 1, 2], 1: []}).validate(
                3, quotas=[2, 1], exact_quota=True
            )

    def test_quota_length_mismatch(self):
        a = Assignment({0: [0]})
        with pytest.raises(ValueError, match="length"):
            a.validate(1, quotas=[1, 1])


@pytest.fixture
def scored_graph():
    tasks = [Task(0, (ChunkId("a", 0),)), Task(1, (ChunkId("b", 0),))]
    locations = {ChunkId("a", 0): (0,), ChunkId("b", 0): (1,)}
    sizes = {ChunkId("a", 0): 2 * MB, ChunkId("b", 0): MB}
    return build_locality_graph(tasks, locations, sizes, ProcessPlacement.one_per_node(2))


class TestScoring:
    def test_full_local(self, scored_graph):
        a = Assignment({0: [0], 1: [1]})
        assert local_bytes(a, scored_graph) == 3 * MB
        assert locality_fraction(a, scored_graph) == 1.0
        assert is_full_matching(a, scored_graph)
        assert fully_local_tasks(a, scored_graph) == {0, 1}

    def test_fully_remote(self, scored_graph):
        a = Assignment({0: [1], 1: [0]})
        assert local_bytes(a, scored_graph) == 0
        assert locality_fraction(a, scored_graph) == 0.0
        assert not is_full_matching(a, scored_graph)
        assert fully_local_tasks(a, scored_graph) == set()

    def test_partial(self, scored_graph):
        a = Assignment({0: [0, 1], 1: []})
        assert local_bytes(a, scored_graph) == 2 * MB
        assert locality_fraction(a, scored_graph) == pytest.approx(2 / 3)

    def test_loads(self, scored_graph):
        a = Assignment({0: [0, 1], 1: []})
        assert load_in_tasks(a) == {0: 2, 1: 0}
        assert load_in_bytes(a, scored_graph) == {0: 3 * MB, 1: 0}
