"""Tests for the parallel workload runner."""

import numpy as np
import pytest

from repro.core import (
    ProcessPlacement,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.core.assignment import Assignment
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.simulate.runner import ParallelReadRun, StaticSource


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(4, seek_latency=0.0, remote_latency=0.0)
    fs = DistributedFileSystem(spec, replication=2, seed=8)
    ds = uniform_dataset("d", 8, chunk_size=10 * MB)
    fs.put_dataset(ds)
    placement = ProcessPlacement.one_per_node(4)
    tasks = tasks_from_dataset(ds)
    return fs, placement, tasks


class TestStaticSource:
    def test_pops_in_order(self):
        src = StaticSource(Assignment({0: [3, 1], 1: [2]}))
        assert src.next_task(0) == 3
        assert src.next_task(0) == 1
        assert src.next_task(0) is None
        assert src.next_task(1) == 2
        assert src.next_task(5) is None

    def test_remaining(self):
        src = StaticSource(Assignment({0: [3, 1]}))
        src.next_task(0)
        assert src.remaining(0) == 1
        assert src.remaining(9) == 0


class TestBasicRun:
    def test_all_tasks_complete(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        assert result.tasks_completed == 8
        assert len(result.records) == 8
        assert result.makespan > 0

    def test_records_well_formed(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        for rec in result.records:
            assert rec.end_time >= rec.issue_time
            assert rec.duration > 0
            assert rec.local == (rec.server_node == rec.reader_node)

    def test_bytes_accounted(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        assert result.local_bytes + result.remote_bytes == 8 * 10 * MB
        assert sum(result.bytes_served.values()) == 8 * 10 * MB

    def test_serve_counts_are_deltas(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=0).run()
        # Second run must not double count the first run's serves.
        r2 = ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=1).run()
        assert sum(r2.bytes_served.values()) == 8 * 10 * MB

    def test_durations_ordered_by_completion(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        d = result.durations()
        assert d.shape == (8,)
        assert (d > 0).all()

    def test_io_stats_fields(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        s = result.io_stats()
        assert s["min"] <= s["avg"] <= s["max"]

    def test_local_run_time_matches_disk_bw(self, env):
        """A fully local assignment reads each chunk at full disk speed."""
        fs, placement, tasks = env
        layout = fs.layout_snapshot()
        a = Assignment.empty(4)
        for t in tasks:
            a.assign(layout[t.inputs[0]][0], t.task_id)
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        assert result.locality_fraction == 1.0
        expected = 10 * MB / fs.spec.node(0).disk_bw
        # Some nodes own several chunks and read them sequentially; each
        # individual read is uncontended (one process per disk).
        assert result.io_stats()["max"] == pytest.approx(expected, rel=1e-6)


class TestComputeModel:
    def test_constant_compute_extends_makespan(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        base = ParallelReadRun(fs, placement, tasks, StaticSource(a), seed=0).run()
        fs.reset_counters()
        slow = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), compute_time=1.0, seed=0
        ).run()
        assert slow.makespan >= base.makespan + 1.0

    def test_callable_compute(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        calls = []

        def model(rank, task, rng):
            calls.append((rank, task))
            return 0.1

        result = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), compute_time=model
        ).run()
        assert len(calls) == 8
        assert result.tasks_completed == 8

    def test_negative_constant_rejected(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        with pytest.raises(ValueError):
            ParallelReadRun(fs, placement, tasks, StaticSource(a), compute_time=-1)

    def test_negative_model_value_rejected(self, env):
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), compute_time=lambda r, t, g: -1.0
        )
        with pytest.raises(ValueError):
            run.run()


class TestBarrierMode:
    def test_barrier_requires_static_source(self, env):
        fs, placement, tasks = env
        from repro.core import DefaultDynamicPolicy

        with pytest.raises(ValueError, match="StaticSource"):
            ParallelReadRun(
                fs, placement, tasks, DefaultDynamicPolicy(8), barrier=True
            )

    def test_barrier_rounds_serialize(self, env):
        """With barriers, round k's reads all start after round k-1 ends."""
        fs, placement, tasks = env
        a = rank_interval_assignment(8, 4)  # 2 tasks per rank = 2 rounds
        result = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), barrier=True
        ).run()
        by_round: dict[int, list] = {0: [], 1: []}
        for rank, ts in a.tasks_of.items():
            for i, t in enumerate(ts):
                by_round[i].append(t)
        recs = {r.task_id: r for r in result.records}
        end_round0 = max(recs[t].end_time for t in by_round[0])
        start_round1 = min(recs[t].issue_time for t in by_round[1])
        assert start_round1 >= end_round0 - 1e-9

    def test_barrier_compute_time_adds_per_round(self):
        def fresh():
            spec = ClusterSpec.homogeneous(4, seek_latency=0.0, remote_latency=0.0)
            fs = DistributedFileSystem(spec, replication=2, seed=8)
            ds = uniform_dataset("d", 8, chunk_size=10 * MB)
            fs.put_dataset(ds)
            return fs, ProcessPlacement.one_per_node(4), tasks_from_dataset(ds)

        a = rank_interval_assignment(8, 4)
        fs, placement, tasks = fresh()
        plain = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), barrier=True, seed=0
        ).run()
        fs, placement, tasks = fresh()  # identical layout + replica choices
        render = ParallelReadRun(
            fs,
            placement,
            tasks,
            StaticSource(a),
            barrier=True,
            barrier_compute_time=2.0,
            seed=0,
        ).run()
        # 2 rounds -> +4 s (one render per data-processing round).
        assert render.makespan == pytest.approx(plain.makespan + 4.0, rel=1e-6)

    def test_uneven_lists_finish(self, env):
        fs, placement, tasks = env
        a = Assignment({0: [0, 1, 2, 3, 4], 1: [5, 6], 2: [7], 3: []})
        result = ParallelReadRun(
            fs, placement, tasks, StaticSource(a), barrier=True
        ).run()
        assert result.tasks_completed == 8


class TestDynamicSources:
    def test_default_dynamic_policy_completes(self, env):
        from repro.core import DefaultDynamicPolicy

        fs, placement, tasks = env
        policy = DefaultDynamicPolicy(8, mode="random", seed=4)
        result = ParallelReadRun(fs, placement, tasks, policy).run()
        assert result.tasks_completed == 8

    def test_multi_chunk_tasks_read_sequentially(self):
        spec = ClusterSpec.homogeneous(2, seek_latency=0.0, remote_latency=0.0)
        fs = DistributedFileSystem(spec, replication=1, seed=0)
        from repro.dfs.chunk import dataset_from_sizes

        ds = dataset_from_sizes("d", [30 * MB], chunk_size=10 * MB)
        fs.put_dataset(ds)
        tasks = tasks_from_dataset(ds)
        placement = ProcessPlacement.one_per_node(2)
        a = Assignment({0: [0], 1: []})
        result = ParallelReadRun(fs, placement, tasks, StaticSource(a)).run()
        assert len(result.records) == 3
        ends = [r.end_time for r in sorted(result.records, key=lambda r: r.seq)]
        assert ends == sorted(ends)
