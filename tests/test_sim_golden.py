"""Golden regression: the incremental engine reproduces the seed engine.

``tests/data/golden_sim_seed.json`` was captured from the pre-incremental
engine (pure ``allocate_rates`` re-solve + linear scans).  Workloads whose
every event changes the flow set (all parallel-read benchmarks) must
reproduce it **bit for bit** — makespans compared by ``repr`` string and
the full record stream by sha256 digest.

Timer-heavy workloads (failure injection, irregular compute) merge
several events into one settle interval, so their float error differs in
the last ulp; those pin byte counts and discrete decisions exactly and
makespans to 1e-9 relative.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_sim_seed.json").read_text()
)


def records_digest(result):
    h = hashlib.sha256()
    for r in sorted(result.records, key=lambda r: r.seq):
        h.update(
            repr(
                (r.seq, r.rank, r.task_id, str(r.chunk), r.server_node,
                 r.reader_node, r.local, r.issue_time, r.end_time)
            ).encode()
        )
    return h.hexdigest()


def assert_exact(result, golden):
    assert repr(result.makespan) == golden["makespan"]
    assert records_digest(result) == golden["digest"]
    assert result.local_bytes == golden["local_bytes"]
    assert result.remote_bytes == golden["remote_bytes"]
    assert {k: repr(v) for k, v in result.io_stats().items()} == golden["io"]


def assert_ulp(result, golden):
    """Timer-heavy run: discrete outcomes exact, floats to 1e-9 relative."""
    assert result.makespan == pytest.approx(float(golden["makespan"]), rel=1e-9)
    assert result.local_bytes == golden["local_bytes"]
    assert result.remote_bytes == golden["remote_bytes"]
    for k, v in result.io_stats().items():
        assert v == pytest.approx(float(golden["io"][k]), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize(
    "num_nodes,seed", [(16, 9), (16, 0), (32, 0), (64, 1)]
)
def test_fig7_single_data_bitwise(num_nodes, seed):
    from repro.experiments.single_data import run_single_data_comparison

    c = run_single_data_comparison(num_nodes, seed=seed)
    assert_exact(c.base, GOLDEN[f"fig7_m{num_nodes}_s{seed}_base"])
    assert_exact(c.opass, GOLDEN[f"fig7_m{num_nodes}_s{seed}_opass"])


def test_validation_grid_bitwise():
    from repro.analysis import validation_grid

    rows = validation_grid(
        cluster_sizes=(8, 16, 32), replications=(2, 3), trials=3, seed=0
    )
    got = [
        {"nodes": r.num_nodes, "repl": r.replication,
         "sim_loc": repr(r.simulated_locality),
         "sim_std": repr(r.simulated_served_std)}
        for r in rows
    ]
    assert got == GOLDEN["validation"]


def test_paraview_bitwise():
    from repro.experiments.paraview import run_paraview_comparison

    pv = run_paraview_comparison(num_nodes=8, num_datasets=48, seed=3)
    g = GOLDEN["paraview_8_s3"]
    assert_exact(pv.stock.run, g["stock"])
    assert_exact(pv.opass.run, g["opass"])
    assert repr(pv.stock.total_execution_time) == g["stock_total"]
    assert repr(pv.opass.total_execution_time) == g["opass_total"]


def test_ingest_bitwise():
    from repro.core import ProcessPlacement
    from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
    from repro.dfs.chunk import MB
    from repro.simulate import DatasetIngest

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=7)
    ing = DatasetIngest(
        fs,
        ProcessPlacement.one_per_node(8),
        uniform_dataset("ing", 24, chunk_size=16 * MB),
        seed=7,
    )
    res = ing.run()
    g = GOLDEN["ingest_8"]
    assert repr(res.makespan) == g["makespan"]
    assert {k: repr(v) for k, v in res.write_stats().items()} == g["writes"]


def test_faults_ulp():
    from repro.core import (
        ProcessPlacement,
        rank_interval_assignment,
        tasks_from_dataset,
    )
    from repro.dfs import ClusterSpec, DistributedFileSystem
    from repro.simulate import FaultPlan, ParallelReadRun, StaticSource
    from repro.workloads import single_data_workload

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), replication=3, seed=5)
    data = single_data_workload(8, 6)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    run = ParallelReadRun(
        fs,
        ProcessPlacement.one_per_node(8),
        tasks,
        StaticSource(rank_interval_assignment(len(tasks), 8)),
        seed=5,
    )
    FaultPlan().fail(1.5, 2).fail(3.0, 5).attach(run)
    assert_ulp(run.run(), GOLDEN["faults_8"])


def test_dynamic_ulp():
    from repro.experiments.dynamic import run_dynamic_comparison

    dyn = run_dynamic_comparison(num_nodes=8, num_fragments=48, seed=2)
    g = GOLDEN["dynamic_8_s2"]
    assert_ulp(dyn.base.result, g["base"])
    assert_ulp(dyn.opass.result, g["opass"])
    assert dyn.base.steals == g["base_steals"]
    assert dyn.opass.steals == g["opass_steals"]
