"""Golden regression: both pinned engines reproduce their fixture files.

Two fixture files, one per pinned engine (regenerate with
``tests/data/make_golden_sim_seed.py``):

``golden_sim_seed.json`` — captured from the pre-incremental seed engine
and **never rewritten**.  ``Simulation(allocator="incremental")`` must
reproduce it bit for bit on workloads whose every event changes the flow
set (all parallel-read benchmarks): makespans compared by ``repr`` string
and the full record stream by sha256 digest.  Timer-heavy workloads
(failure injection, irregular compute) merge several events into one
settle interval, so their float error differs in the last ulp; those pin
byte counts and discrete decisions exactly and makespans to 1e-9
relative.

``golden_sim_component.json`` — pins the **default** engine
(``allocator="component"``), bit for bit on every fixture.  Component-
sliced water-filling is arithmetically identical to the reference solver
within a component but rounds the global water level differently across
components, so its trajectories sit an ulp from the seed engine's:
cross-checking the two files shows ≤3e-15 relative deviation on 12 of
the 13 workloads.  The one exception, ``fig7_m16_s0_base``, hits a wave
of chunk reads finishing at the *exact same* simulated instant; the
firing order among the tied flows (float noise in the seed engine,
canonical ``flow_id`` order in the component engine) permutes downstream
replica-pick RNG draws, so its makespan diverges while byte counts and
locality stay identical.  That cross-file deviation is asserted here so
a silent re-convergence or a new divergence both fail loudly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

import repro.simulate.engine as engine_mod

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_sim_seed.json").read_text()
)
GOLDEN_COMPONENT = json.loads(
    (Path(__file__).parent / "data" / "golden_sim_component.json").read_text()
)

#: The one fixture where the component engine's tie policy changes the
#: firing order of simultaneous completions (see module docstring).
TIE_DIVERGENT = ("fig7_m16_s0_base",)


@pytest.fixture(params=["incremental", "component"])
def pinned(request, monkeypatch):
    """Run the test body once per pinned engine; yields that engine's
    golden dict.  Experiment entry points construct ``Simulation()``
    internally, so the default allocator is patched module-wide."""
    monkeypatch.setattr(engine_mod, "DEFAULT_ALLOCATOR", request.param)
    if request.param == "incremental":
        return GOLDEN
    return GOLDEN_COMPONENT


def records_digest(result):
    h = hashlib.sha256()
    for r in sorted(result.records, key=lambda r: r.seq):
        h.update(
            repr(
                (r.seq, r.rank, r.task_id, str(r.chunk), r.server_node,
                 r.reader_node, r.local, r.issue_time, r.end_time)
            ).encode()
        )
    return h.hexdigest()


def assert_exact(result, golden):
    assert repr(result.makespan) == golden["makespan"]
    assert records_digest(result) == golden["digest"]
    assert result.local_bytes == golden["local_bytes"]
    assert result.remote_bytes == golden["remote_bytes"]
    assert {k: repr(v) for k, v in result.io_stats().items()} == golden["io"]


def assert_ulp(result, golden):
    """Timer-heavy run: discrete outcomes exact, floats to 1e-9 relative."""
    assert result.makespan == pytest.approx(float(golden["makespan"]), rel=1e-9)
    assert result.local_bytes == golden["local_bytes"]
    assert result.remote_bytes == golden["remote_bytes"]
    for k, v in result.io_stats().items():
        assert v == pytest.approx(float(golden["io"][k]), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize(
    "num_nodes,seed", [(16, 9), (16, 0), (32, 0), (64, 1)]
)
def test_fig7_single_data_bitwise(num_nodes, seed, pinned):
    from repro.experiments.single_data import run_single_data_comparison

    c = run_single_data_comparison(num_nodes, seed=seed)
    assert_exact(c.base, pinned[f"fig7_m{num_nodes}_s{seed}_base"])
    assert_exact(c.opass, pinned[f"fig7_m{num_nodes}_s{seed}_opass"])


def test_validation_grid_bitwise(pinned):
    from repro.analysis import validation_grid

    rows = validation_grid(
        cluster_sizes=(8, 16, 32), replications=(2, 3), trials=3, seed=0
    )
    got = [
        {"nodes": r.num_nodes, "repl": r.replication,
         "sim_loc": repr(r.simulated_locality),
         "sim_std": repr(r.simulated_served_std)}
        for r in rows
    ]
    assert got == pinned["validation"]


def test_paraview_bitwise(pinned):
    from repro.experiments.paraview import run_paraview_comparison

    pv = run_paraview_comparison(num_nodes=8, num_datasets=48, seed=3)
    g = pinned["paraview_8_s3"]
    assert_exact(pv.stock.run, g["stock"])
    assert_exact(pv.opass.run, g["opass"])
    assert repr(pv.stock.total_execution_time) == g["stock_total"]
    assert repr(pv.opass.total_execution_time) == g["opass_total"]


def test_ingest_bitwise(pinned):
    from repro.core import ProcessPlacement
    from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
    from repro.dfs.chunk import MB
    from repro.simulate import DatasetIngest

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), seed=7)
    ing = DatasetIngest(
        fs,
        ProcessPlacement.one_per_node(8),
        uniform_dataset("ing", 24, chunk_size=16 * MB),
        seed=7,
    )
    res = ing.run()
    g = pinned["ingest_8"]
    assert repr(res.makespan) == g["makespan"]
    assert {k: repr(v) for k, v in res.write_stats().items()} == g["writes"]


def _faults_run():
    from repro.core import (
        ProcessPlacement,
        rank_interval_assignment,
        tasks_from_dataset,
    )
    from repro.dfs import ClusterSpec, DistributedFileSystem
    from repro.simulate import FaultPlan, ParallelReadRun, StaticSource
    from repro.workloads import single_data_workload

    fs = DistributedFileSystem(ClusterSpec.homogeneous(8), replication=3, seed=5)
    data = single_data_workload(8, 6)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    run = ParallelReadRun(
        fs,
        ProcessPlacement.one_per_node(8),
        tasks,
        StaticSource(rank_interval_assignment(len(tasks), 8)),
        seed=5,
    )
    FaultPlan().fail(1.5, 2).fail(3.0, 5).attach(run)
    return run.run()


def test_faults(pinned):
    # The seed file predates the incremental engine and pins faults_8
    # only to 1e-9 (merged settle intervals); the component file pins
    # its own engine exactly.
    if pinned is GOLDEN:
        assert_ulp(_faults_run(), pinned["faults_8"])
    else:
        assert_exact(_faults_run(), pinned["faults_8"])


def test_dynamic(pinned):
    from repro.experiments.dynamic import run_dynamic_comparison

    dyn = run_dynamic_comparison(num_nodes=8, num_fragments=48, seed=2)
    g = pinned["dynamic_8_s2"]
    check = assert_ulp if pinned is GOLDEN else assert_exact
    check(dyn.base.result, g["base"])
    check(dyn.opass.result, g["opass"])
    assert dyn.base.steals == g["base_steals"]
    assert dyn.opass.steals == g["opass_steals"]


def test_cross_engine_agreement_is_tight():
    """The two fixture files agree to float noise everywhere except the
    documented tie-divergent fixture — pin that, both ways."""
    def floats(entry, path=""):
        if isinstance(entry, dict):
            for k, v in entry.items():
                if k != "digest":
                    yield from floats(v, f"{path}.{k}" if path else k)
        elif isinstance(entry, list):
            for i, v in enumerate(entry):
                yield from floats(v, f"{path}[{i}]")
        else:
            try:
                yield path, float(entry)
            except (TypeError, ValueError):
                pass

    for key, seed_entry in GOLDEN.items():
        seed_vals = dict(floats(seed_entry, key))
        comp_vals = dict(floats(GOLDEN_COMPONENT[key], key))
        assert seed_vals.keys() == comp_vals.keys()
        worst = max(
            abs(comp_vals[p] - sv) / max(abs(sv), 1e-12)
            for p, sv in seed_vals.items()
        )
        if key in TIE_DIVERGENT:
            assert worst > 1e-9, (
                f"{key} re-converged; drop it from TIE_DIVERGENT and in "
                "tests/data/make_golden_sim_seed.py"
            )
            # Tie order permutes replica picks, never byte totals.
            assert (
                GOLDEN_COMPONENT[key]["local_bytes"]
                == seed_entry["local_bytes"]
            )
            assert (
                GOLDEN_COMPONENT[key]["remote_bytes"]
                == seed_entry["remote_bytes"]
            )
        else:
            assert worst <= 1e-9, f"{key} deviates by {worst:.3e}"
