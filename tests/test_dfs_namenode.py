"""Unit tests for the NameNode metadata service."""

import pytest

from repro.dfs.chunk import ChunkId, Dataset, make_file, uniform_dataset
from repro.dfs.namenode import NameNode


def _register_simple(nn: NameNode):
    meta = make_file("f", 250, chunk_size=100)  # 3 chunks: 100, 100, 50
    locations = {
        ChunkId("f", 0): (0, 1),
        ChunkId("f", 1): (1, 2),
        ChunkId("f", 2): (0, 2),
    }
    nn.register_file(meta, locations)
    return meta, locations


class TestNamespace:
    def test_register_and_stat(self):
        nn = NameNode()
        meta, _ = _register_simple(nn)
        assert nn.exists("f")
        assert nn.stat("f") is meta
        assert nn.list_files() == ["f"]

    def test_stat_missing(self):
        with pytest.raises(FileNotFoundError):
            NameNode().stat("nope")

    def test_duplicate_file_rejected(self):
        nn = NameNode()
        _register_simple(nn)
        with pytest.raises(ValueError):
            _register_simple(nn)

    def test_missing_locations_rejected(self):
        nn = NameNode()
        meta = make_file("g", 250, chunk_size=100)
        with pytest.raises(ValueError, match="missing locations"):
            nn.register_file(meta, {ChunkId("g", 0): (0,)})

    def test_empty_replica_list_rejected(self):
        nn = NameNode()
        meta = make_file("g", 90, chunk_size=100)
        with pytest.raises(ValueError, match="no replicas"):
            nn.register_file(meta, {ChunkId("g", 0): ()})

    def test_duplicate_replica_nodes_rejected(self):
        nn = NameNode()
        meta = make_file("g", 90, chunk_size=100)
        with pytest.raises(ValueError, match="duplicate"):
            nn.register_file(meta, {ChunkId("g", 0): (1, 1)})


class TestBlockLocations:
    def test_get_block_locations_in_order(self):
        nn = NameNode()
        meta, locations = _register_simple(nn)
        got = nn.get_block_locations("f")
        assert [c.id for c, _ in got] == [c.id for c in meta.chunks]
        assert all(nodes == locations[c.id] for c, nodes in got)

    def test_locations_of(self):
        nn = NameNode()
        _register_simple(nn)
        assert nn.locations_of(ChunkId("f", 1)) == (1, 2)
        with pytest.raises(KeyError):
            nn.locations_of(ChunkId("x", 0))

    def test_chunk_lookup(self):
        nn = NameNode()
        _register_simple(nn)
        assert nn.chunk(ChunkId("f", 2)).size == 50
        with pytest.raises(KeyError):
            nn.chunk(ChunkId("f", 7))

    def test_layout_snapshot_is_copy(self):
        nn = NameNode()
        _register_simple(nn)
        snap = nn.layout_snapshot()
        snap[ChunkId("f", 0)] = (9,)
        assert nn.locations_of(ChunkId("f", 0)) == (0, 1)


class TestDatasets:
    def test_register_dataset(self):
        nn = NameNode()
        ds = uniform_dataset("d", 3, chunk_size=100)
        layout = {c.id: (0,) for c in ds.iter_chunks()}
        nn.register_dataset(ds, layout)
        assert nn.list_datasets() == ["d"]
        assert nn.dataset("d") is ds
        assert len(nn.list_files()) == 3

    def test_duplicate_dataset_rejected(self):
        nn = NameNode()
        ds = uniform_dataset("d", 1, chunk_size=100)
        layout = {c.id: (0,) for c in ds.iter_chunks()}
        nn.register_dataset(ds, layout)
        ds2 = Dataset("d")
        with pytest.raises(ValueError):
            nn.register_dataset(ds2, {})

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            NameNode().dataset("nope")


class TestMaintenance:
    def test_drop_node_replicas(self):
        nn = NameNode()
        _register_simple(nn)
        touched = nn.drop_node_replicas(0)
        assert set(touched) == {ChunkId("f", 0), ChunkId("f", 2)}
        assert nn.locations_of(ChunkId("f", 0)) == (1,)
        assert nn.locations_of(ChunkId("f", 1)) == (1, 2)

    def test_add_replica(self):
        nn = NameNode()
        _register_simple(nn)
        nn.add_replica(ChunkId("f", 0), 5)
        assert nn.locations_of(ChunkId("f", 0)) == (0, 1, 5)

    def test_add_existing_replica_rejected(self):
        nn = NameNode()
        _register_simple(nn)
        with pytest.raises(ValueError):
            nn.add_replica(ChunkId("f", 0), 1)


class TestLayoutToken:
    """The incremental token always equals the from-scratch definition."""

    def _check(self, nn: NameNode) -> None:
        from repro.dfs.snapshot import layout_token

        assert nn.layout_token == layout_token(nn.layout_snapshot())

    def test_empty_and_after_register(self):
        nn = NameNode()
        self._check(nn)
        _register_simple(nn)
        self._check(nn)

    def test_tracks_every_mutator(self):
        nn = NameNode()
        _register_simple(nn)
        nn.add_replica(ChunkId("f", 0), 5)
        self._check(nn)
        nn.remove_replica(ChunkId("f", 0), 5)
        self._check(nn)
        nn.drop_node_replicas(1)
        self._check(nn)

    def test_changes_on_replica_move(self):
        nn = NameNode()
        _register_simple(nn)
        before = nn.layout_token
        nn.add_replica(ChunkId("f", 0), 7)
        assert nn.layout_token != before
        nn.remove_replica(ChunkId("f", 0), 7)
        assert nn.layout_token == before
