"""Tests for task construction."""

import pytest

from repro.core.tasks import Task, tasks_from_dataset, tasks_from_datasets, total_task_bytes
from repro.dfs.chunk import MB, ChunkId, dataset_from_sizes, uniform_dataset


class TestTask:
    def test_valid(self):
        t = Task(0, (ChunkId("a", 0), ChunkId("b", 0)))
        assert len(t.inputs) == 2

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Task(-1, (ChunkId("a", 0),))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            Task(0, ())

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError):
            Task(0, (ChunkId("a", 0), ChunkId("a", 0)))


class TestFromDataset:
    def test_one_task_per_file(self):
        ds = uniform_dataset("d", 5, chunk_size=MB)
        tasks = tasks_from_dataset(ds)
        assert len(tasks) == 5
        assert [t.task_id for t in tasks] == [0, 1, 2, 3, 4]
        assert all(len(t.inputs) == 1 for t in tasks)

    def test_multi_chunk_file_has_all_chunks(self):
        ds = dataset_from_sizes("d", [3 * MB], chunk_size=MB)
        tasks = tasks_from_dataset(ds)
        assert len(tasks) == 1
        assert len(tasks[0].inputs) == 3


class TestFromDatasets:
    def test_zip_shape(self):
        d1 = uniform_dataset("a", 4, chunk_size=MB)
        d2 = uniform_dataset("b", 4, chunk_size=MB)
        d3 = uniform_dataset("c", 4, chunk_size=MB)
        tasks = tasks_from_datasets([d1, d2, d3])
        assert len(tasks) == 4
        assert all(len(t.inputs) == 3 for t in tasks)
        # Task i reads the i-th file of every dataset.
        assert tasks[2].inputs[0].file == "a/part-00002"
        assert tasks[2].inputs[1].file == "b/part-00002"
        assert tasks[2].inputs[2].file == "c/part-00002"

    def test_count_mismatch_rejected(self):
        d1 = uniform_dataset("a", 4, chunk_size=MB)
        d2 = uniform_dataset("b", 5, chunk_size=MB)
        with pytest.raises(ValueError, match="differing file counts"):
            tasks_from_datasets([d1, d2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tasks_from_datasets([])


class TestTotals:
    def test_total_task_bytes(self):
        d1 = dataset_from_sizes("a", [MB, 2 * MB])
        tasks = tasks_from_dataset(d1)
        sizes = {c.id: c.size for c in d1.iter_chunks()}
        assert total_task_bytes(tasks, sizes) == 3 * MB
