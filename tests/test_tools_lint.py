"""Tests for `opass-lint` (repro.tools): rules, suppressions, config, CLI.

Fixture snippets live in ``tests/data/lint/`` as violating/clean pairs —
``opsNNN_bad.py`` must trip exactly its rule, ``opsNNN_ok.py`` must be
clean.  A ``# opass-lint: module=...`` directive in each fixture places
it inside the package whose scope the rule targets.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.api import JSON_SCHEMA_VERSION, lint_file, lint_paths, lint_source
from repro.tools.checks import RULES
from repro.tools.config import (
    ConfigError,
    DEFAULT_LAYERS,
    LintConfig,
    config_from_table,
    load_config,
)
from repro.tools.lint import EXIT_ERROR, EXIT_OK, EXIT_VIOLATIONS, main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint"

ALL_RULES = ("OPS001", "OPS002", "OPS003", "OPS004", "OPS005", "OPS006")


def rules_in(report):
    return {v.rule for v in report.violations}


class TestFixturePairs:
    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_bad_fixture_trips_exactly_its_rule(self, rule):
        report = lint_file(FIXTURES / f"{rule.lower()}_bad.py")
        assert rules_in(report) == {rule}, report.render()

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_clean_fixture_is_clean(self, rule):
        report = lint_file(FIXTURES / f"{rule.lower()}_ok.py")
        assert report.ok, report.render()

    def test_kernel_regression_fixture(self):
        """OPS005 catches scalar pop(0)/remove regressions in the
        vectorized kernels; the masked-array idiom stays clean."""
        bad = lint_file(FIXTURES / "ops005_kernel_bad.py")
        assert rules_in(bad) == {"OPS005"}, bad.render()
        assert len(bad.violations) == 2, bad.render()
        ok = lint_file(FIXTURES / "ops005_kernel_ok.py")
        assert ok.ok, ok.render()

    def test_bad_fixtures_flag_every_occurrence(self):
        # ops005_bad has four distinct banned patterns, one finding each
        report = lint_file(FIXTURES / "ops005_bad.py")
        assert len(report.violations) == 4, report.render()
        # ops001_bad: stdlib import + shuffle call + three numpy misuses
        report = lint_file(FIXTURES / "ops001_bad.py")
        assert len(report.violations) == 5, report.render()


class TestRuleDetails:
    def test_ops001_allows_injected_generator(self):
        report = lint_source(
            "def f(seed):\n"
            "    import numpy as np\n"
            "    return np.random.default_rng(seed)\n",
            module="repro.simulate.x",
        )
        assert report.ok, report.render()

    def test_ops002_allowlisted_module_is_exempt(self):
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        flagged = lint_source(source, module="repro.simulate.engine")
        exempt = lint_source(source, module="repro.simulate.perf")
        assert rules_in(flagged) == {"OPS002"}
        assert exempt.ok

    def test_ops002_out_of_scope_package_is_exempt(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        report = lint_source(source, module="repro.experiments.x")
        assert report.ok, report.render()

    def test_ops003_setcomp_over_set_is_exempt(self):
        # a set built from a set is closed under reordering
        report = lint_source(
            "def f(s: set):\n    return {x + 1 for x in s}\n",
            module="repro.core.x",
        )
        assert report.ok, report.render()

    def test_ops003_self_attribute_inference(self):
        report = lint_source(
            "class P:\n"
            "    def __init__(self):\n"
            "        self._pending = set()\n"
            "    def order(self):\n"
            "        return [t for t in self._pending]\n",
            module="repro.core.x",
        )
        assert rules_in(report) == {"OPS003"}, report.render()

    def test_ops004_ordering_compares_are_fine(self):
        report = lint_source(
            "def f(sim):\n    return sim.now >= 1.5 or sim.now < 0.5\n",
            module="repro.simulate.x",
        )
        assert report.ok, report.render()

    def test_ops005_remove_allow_is_configurable(self):
        source = "def f(self, flow):\n    self._registry.remove(flow)\n"
        default = lint_source(source, module="repro.simulate.x")
        custom = lint_source(
            source,
            module="repro.simulate.x",
            config=LintConfig(remove_allow=("_registry",)),
        )
        assert rules_in(default) == {"OPS005"}
        assert custom.ok

    def test_ops006_layering_both_directions(self):
        up = lint_source(
            "from repro.experiments.dynamic import x\n", module="repro.dfs.y"
        )
        down = lint_source(
            "from repro.dfs.chunk import ChunkId\n", module="repro.experiments.y"
        )
        assert rules_in(up) == {"OPS006"}
        assert down.ok

    def test_ops006_relative_imports_resolve(self):
        report = lint_source(
            "from ..simulate.runner import Wait\n", module="repro.core.policy"
        )
        assert rules_in(report) == {"OPS006"}, report.render()

    def test_ops006_nothing_imports_tools(self):
        report = lint_source(
            "from repro.tools.api import lint_paths\n", module="repro.cli"
        )
        assert rules_in(report) == {"OPS006"}


class TestSuppressions:
    SOURCE = (
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.default_rng(7){pragma}\n"
    )

    def test_valid_suppression_moves_violation_aside(self):
        report = lint_source(
            self.SOURCE.format(pragma="  # opass: ignore[OPS001] -- fixed demo seed"),
            module="repro.simulate.x",
        )
        assert report.ok
        assert [v.rule for v in report.suppressed] == ["OPS001"]
        assert report.suppressed[0].reason == "fixed demo seed"

    def test_missing_reason_is_ops000(self):
        report = lint_source(
            self.SOURCE.format(pragma="  # opass: ignore[OPS001]"),
            module="repro.simulate.x",
        )
        assert rules_in(report) == {"OPS000", "OPS001"}, report.render()

    def test_unknown_rule_id_is_ops000(self):
        report = lint_source(
            self.SOURCE.format(pragma="  # opass: ignore[OPS999] -- nope"),
            module="repro.simulate.x",
        )
        assert "OPS000" in rules_in(report)

    def test_suppression_only_covers_listed_rules(self):
        report = lint_source(
            self.SOURCE.format(pragma="  # opass: ignore[OPS002] -- wrong rule"),
            module="repro.simulate.x",
        )
        assert rules_in(report) == {"OPS001"}

    def test_multi_rule_suppression(self):
        source = (
            "import time\n"
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(1), time.time()  "
            "# opass: ignore[OPS001,OPS002] -- fixture exercising both\n"
        )
        report = lint_source(source, module="repro.simulate.x")
        assert report.ok, report.render()
        assert {v.rule for v in report.suppressed} == {"OPS001", "OPS002"}


class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path / "pyproject.toml")
        assert config.layers == DEFAULT_LAYERS

    def test_repo_pyproject_parses(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.layers["core"] < config.layers["simulate"]
        assert "repro.simulate.perf" in config.wallclock_allow
        assert "_alloc" in config.remove_allow

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            config_from_table({"wallclock-alow": ["x"]})

    def test_bad_layers_rejected(self):
        with pytest.raises(ConfigError, match="layers"):
            config_from_table({"layers": {"core": "low"}})

    def test_layers_override_changes_verdict(self):
        source = "from repro.simulate.engine import Simulation\n"
        flat = config_from_table({"layers": {"core": 9, "simulate": 2}})
        report = lint_source(source, module="repro.core.x", config=flat)
        assert report.ok

    def test_pyproject_table_round_trip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.opass-lint]\n"
            'wallclock-allow = ["repro.simulate.bench"]\n'
            "[tool.opass-lint.layers]\n"
            "core = 1\n"
            "simulate = 2\n"
        )
        config = load_config(pyproject)
        assert config.wallclock_allow == ("repro.simulate.bench",)
        assert config.layers == {"core": 1, "simulate": 2}


class TestReportAndCli:
    def test_json_schema(self):
        report = lint_file(FIXTURES / "ops004_bad.py")
        data = json.loads(report.to_json())
        assert data["version"] == JSON_SCHEMA_VERSION
        assert data["tool"] == "opass-lint"
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert data["counts"] == {"OPS004": 3}
        for violation in data["violations"]:
            assert set(violation) == {"file", "line", "col", "rule", "message"}
            assert violation["rule"] in RULES
        assert data["suppressed"] == []

    def test_json_records_suppressions_with_reasons(self):
        report = lint_file(FIXTURES / "ops001_ok.py")
        data = json.loads(report.to_json())
        assert data["ok"] is True
        assert len(data["suppressed"]) == 1
        entry = data["suppressed"][0]
        assert entry["suppressed"] is True
        assert entry["reason"]

    def test_cli_exit_zero_on_clean(self, capsys):
        assert main([str(FIXTURES / "ops003_ok.py")]) == EXIT_OK
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_cli_exit_nonzero_with_rule_id_on_bad_fixture(self, rule, capsys):
        code = main([str(FIXTURES / f"{rule.lower()}_bad.py")])
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATIONS
        assert rule in out

    def test_cli_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist.py"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_cli_bad_config_is_usage_error(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.opass-lint]\nbogus-key = [1]\n")
        code = main(
            ["--config", str(pyproject), str(FIXTURES / "ops003_ok.py")]
        )
        assert code == EXIT_ERROR
        assert "config error" in capsys.readouterr().err

    def test_cli_json_format_and_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main(
            [
                "--format",
                "json",
                "--output",
                str(out_file),
                str(FIXTURES / "ops006_bad.py"),
            ]
        )
        assert code == EXIT_VIOLATIONS
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out_file.read_text())
        assert printed == written
        assert printed["counts"] == {"OPS006": 1}

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule in ("OPS000", *ALL_RULES):
            assert rule in out


class TestWholeTree:
    def test_src_is_clean_at_merge_time(self):
        """The repo's own acceptance gate: src/ lints clean."""
        report = lint_paths([REPO_ROOT / "src"])
        assert report.ok, report.render()
        assert report.files_checked > 70

    def test_every_suppression_in_src_has_a_reason(self):
        report = lint_paths([REPO_ROOT / "src"])
        assert report.suppressed, "expected documented suppressions in src/"
        for entry in report.suppressed:
            assert entry.reason and len(entry.reason) > 10, entry.render()
