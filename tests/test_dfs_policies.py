"""Unit tests for replica-selection policies."""

import numpy as np
import pytest

from repro.dfs.chunk import ChunkId
from repro.dfs.policies import FirstListed, LeastLoaded, RandomRemote


CID = ChunkId("f", 0)


class TestRandomRemote:
    def test_picks_from_replicas(self, rng):
        policy = RandomRemote()
        for _ in range(50):
            assert policy.choose(CID, (3, 5, 7), 0, rng) in (3, 5, 7)

    def test_roughly_uniform(self, rng):
        policy = RandomRemote()
        picks = [policy.choose(CID, (1, 2, 3), 0, rng) for _ in range(3000)]
        counts = np.bincount(picks, minlength=4)[1:]
        assert (counts > 800).all()

    def test_empty_replicas_rejected(self, rng):
        with pytest.raises(ValueError):
            RandomRemote().choose(CID, (), 0, rng)


class TestFirstListed:
    def test_deterministic(self, rng):
        policy = FirstListed()
        assert all(policy.choose(CID, (4, 2, 9), 0, rng) == 4 for _ in range(10))

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            FirstListed().choose(CID, (), 0, rng)


class TestLeastLoaded:
    def test_round_robins_over_equal_load(self, rng):
        policy = LeastLoaded()
        picks = [policy.choose(CID, (1, 2, 3), 0, rng) for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_prefers_lightly_loaded(self, rng):
        policy = LeastLoaded()
        # Load node 1 heavily via a different replica set.
        for _ in range(5):
            policy.choose(CID, (1,), 0, rng)
        assert policy.choose(CID, (1, 2), 0, rng) == 2

    def test_reset_clears_state(self, rng):
        policy = LeastLoaded()
        policy.choose(CID, (1, 2), 0, rng)
        policy.reset()
        assert policy.choose(CID, (1, 2), 0, rng) == 1

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            LeastLoaded().choose(CID, (), 0, rng)
