"""Tests for failure injection and the runner's retry path."""

import pytest

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.simulate import FaultPlan, NodeFailure, ParallelReadRun, StaticSource
from repro.simulate.faults import NodeRecovery


def build_run(nodes=6, chunks=18, seed=4, replication=3):
    spec = ClusterSpec.homogeneous(nodes)
    fs = DistributedFileSystem(spec, replication=replication, seed=seed)
    fs.put_dataset(uniform_dataset("d", chunks, chunk_size=16 * MB))
    placement = ProcessPlacement.one_per_node(nodes)
    tasks = tasks_from_dataset(fs.dataset("d"))
    assignment = rank_interval_assignment(chunks, nodes)
    run = ParallelReadRun(fs, placement, tasks, StaticSource(assignment), seed=seed)
    return run, fs


class TestEvents:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            NodeFailure(-1.0, 0)
        with pytest.raises(ValueError):
            NodeRecovery(-0.5, 0)

    def test_plan_builder_chains(self):
        plan = FaultPlan().fail(1.0, 2).recover(5.0, 2)
        assert len(plan.failures) == 1
        assert len(plan.recoveries) == 1

    def test_attach_after_start_rejected(self):
        run, _ = build_run()
        run.sim.schedule(0.5, lambda: None)
        run.sim.run()
        with pytest.raises(RuntimeError):
            FaultPlan().fail(1.0, 0).attach(run)


class TestFailureDuringRun:
    def test_all_tasks_complete_despite_failure(self):
        run, fs = build_run()
        FaultPlan().fail(0.1, 0).attach(run)
        result = run.run()
        assert result.tasks_completed == 18
        assert len(result.records) == 18
        assert not fs.cluster.is_active(0)

    def test_inflight_reads_retried(self):
        """Failing a node at t=0.1 (mid-first-wave) forces retries."""
        found = False
        for victim in range(6):
            run, fs = build_run()
            FaultPlan().fail(0.1, victim).attach(run)
            result = run.run()
            assert result.tasks_completed == 18
            if result.read_retries > 0:
                found = True
                break
        assert found, "no failure produced a retry across all victims"

    def test_no_completed_read_served_by_dead_node_after_failure(self):
        run, fs = build_run()
        FaultPlan().fail(0.1, 3).attach(run)
        result = run.run()
        for rec in result.records:
            if rec.end_time > 0.1:
                # Reads completing after the failure either were already
                # streaming from another node or were retried elsewhere.
                assert rec.server_node != 3 or rec.issue_time < 0.1

    def test_retried_reads_counted_once_in_locality(self):
        run, fs = build_run()
        FaultPlan().fail(0.1, 0).attach(run)
        result = run.run()
        assert result.local_bytes + result.remote_bytes == 18 * 16 * MB

    def test_recovery_allows_serving_again(self):
        run, fs = build_run()
        FaultPlan().fail(0.05, 1).recover(0.3, 1).attach(run)
        result = run.run()
        assert result.tasks_completed == 18
        assert fs.cluster.is_active(1)

    def test_failure_run_comparable_to_clean_run(self):
        """Same seed and layout: the faulty run completes the same work in
        a similar time envelope (retries restart reads, but re-resolution
        can also land on a less contended replica, so the makespan may move
        slightly either way — it must not blow up or lose work)."""
        run_a, _ = build_run(seed=11)
        clean = run_a.run()
        run_b, _ = build_run(seed=11)
        FaultPlan().fail(0.1, 0).attach(run_b)
        faulty = run_b.run()
        assert faulty.tasks_completed == clean.tasks_completed
        assert faulty.makespan < clean.makespan * 2 + 5.0


class TestEngineCancellation:
    def test_cancel_prevents_completion(self):
        from repro.simulate import Resource, Simulation

        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        done = []
        flow = sim.start_flow(100, ["r"], lambda f: done.append(1))
        sim.schedule(1.0, lambda: sim.cancel_flow(flow))
        sim.run()
        assert done == []
        assert sim.active_flows == 0

    def test_cancel_unknown_flow_raises(self):
        from repro.simulate import Resource, Simulation

        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        flow = sim.start_flow(10, ["r"], lambda f: None)
        sim.run()
        with pytest.raises(KeyError):
            sim.cancel_flow(flow)

    def test_cancel_frees_bandwidth(self):
        from repro.simulate import Resource, Simulation

        sim = Simulation()
        sim.add_resource(Resource("r", 10.0))
        done = []
        victim = sim.start_flow(1000, ["r"], lambda f: None)
        sim.start_flow(50, ["r"], lambda f: done.append(sim.now))
        sim.schedule(1.0, lambda: sim.cancel_flow(victim))
        sim.run()
        # First second shared (5 bytes/s -> 5 bytes moved), then full rate.
        assert done[0] == pytest.approx(1.0 + 45 / 10.0)
