"""Tests for the §IV-D dynamic scheduler (guided lists + stealing)."""

from collections import deque

import pytest

from repro.core.assignment import Assignment
from repro.core.bipartite import ProcessPlacement, build_locality_graph
from repro.core.dynamic import plan_dynamic
from repro.core.tasks import Task
from repro.dfs.chunk import MB, ChunkId


@pytest.fixture
def graph():
    """3 processes; tasks 0-5; each task's chunk on one node."""
    locations = {
        ChunkId(f"c{i}", 0): (i % 3,) for i in range(6)
    }
    sizes = {cid: (int(cid.file[1]) + 1) * MB for cid in locations}
    tasks = [Task(i, (ChunkId(f"c{i}", 0),)) for i in range(6)]
    return build_locality_graph(
        tasks, locations, sizes, ProcessPlacement.one_per_node(3)
    )


@pytest.fixture
def assignment():
    return Assignment({0: [0, 3], 1: [1, 4], 2: [2, 5]})


class TestPlanConstruction:
    def test_lists_follow_assignment(self, graph, assignment):
        plan = plan_dynamic(graph, assignment, order="as_assigned")
        # The guided lists are head-consumed deques (O(1) dispatch).
        assert plan.lists == {0: deque([0, 3]), 1: deque([1, 4]), 2: deque([2, 5])}

    def test_locality_order_sorts_by_colocated_bytes(self, graph, assignment):
        plan = plan_dynamic(graph, assignment, order="locality")
        # Task 3's chunk (4 MB) on node 0 outweighs task 0's (1 MB).
        assert plan.lists[0] == deque([3, 0])

    def test_invalid_order(self, graph, assignment):
        with pytest.raises(ValueError):
            plan_dynamic(graph, assignment, order="nope")

    def test_remaining(self, graph, assignment):
        plan = plan_dynamic(graph, assignment)
        assert plan.remaining == 6


class TestDispatch:
    def test_own_list_first(self, graph, assignment):
        plan = plan_dynamic(graph, assignment, order="as_assigned")
        assert plan.next_task(0) == 0
        assert plan.next_task(0) == 3
        assert plan.steals == 0

    def test_steal_from_longest_list(self, graph, assignment):
        plan = plan_dynamic(graph, assignment, order="as_assigned")
        plan.next_task(0)
        plan.next_task(0)  # rank 0's list empty now
        # Both donors have length 2; tie breaks to lower rank (1).
        task = plan.next_task(0)
        assert task in (1, 4)
        assert plan.steals == 1
        assert plan.remaining == 3

    def test_steal_picks_max_colocated(self, graph):
        # Rank 0's list empty; rank 1 holds tasks 0 (on node 0, 1 MB) and
        # 3 (on node 0, 4 MB): rank 0 steals 3, its larger co-located task.
        assignment = Assignment({0: [], 1: [0, 3, 1], 2: [2]})
        plan = plan_dynamic(graph, assignment, order="as_assigned")
        task = plan.next_task(0)
        assert task == 3
        assert plan.steals == 1

    def test_exhaustion_returns_none(self, graph, assignment):
        plan = plan_dynamic(graph, assignment)
        for _ in range(6):
            assert plan.next_task(0) is not None
        assert plan.next_task(0) is None
        assert plan.next_task(1) is None
        assert plan.remaining == 0

    def test_every_task_dispatched_once(self, graph, assignment):
        plan = plan_dynamic(graph, assignment)
        seen = []
        rank = 0
        while True:
            t = plan.next_task(rank)
            if t is None:
                break
            seen.append(t)
            rank = (rank + 1) % 3
        assert sorted(seen) == list(range(6))
        assert plan.dispatched == 6

    def test_dispatched_local_bytes_tracked(self, graph, assignment):
        plan = plan_dynamic(graph, assignment, order="as_assigned")
        plan.next_task(0)  # task 0, on node 0: +1 MB
        assert plan.dispatched_local_bytes == MB

    def test_unknown_rank_rejected(self, graph, assignment):
        plan = plan_dynamic(graph, assignment)
        with pytest.raises(KeyError):
            plan.next_task(9)
