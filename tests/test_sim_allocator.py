"""Unit tests for the incremental max-min allocator.

The allocator must return *bit-for-bit* the same rates as the pure
reference :func:`repro.simulate.flows.allocate_rates` — exact ``==``
assertions throughout, no ``approx``.
"""

import pytest

from repro.simulate.allocator import IncrementalAllocator
from repro.simulate.flows import Flow, allocate_rates, verify_allocation
from repro.simulate.resources import Resource


def make_alloc(**capacities):
    alloc = IncrementalAllocator()
    for name, cap in capacities.items():
        alloc.register(name, cap)
    return alloc


def reference(flows, capacities):
    return allocate_rates(flows, {k: float(v) for k, v in capacities.items()})


class TestLifecycle:
    def test_register_duplicate_rejected(self):
        alloc = make_alloc(r=10)
        with pytest.raises(ValueError, match="duplicate"):
            alloc.register("r", 5)

    def test_add_unknown_resource_rejected(self):
        alloc = make_alloc(r=10)
        with pytest.raises(KeyError, match="unknown resource"):
            alloc.add(Flow(1, ("x",)))

    def test_double_add_rejected(self):
        alloc = make_alloc(r=10)
        f = Flow(1, ("r",))
        alloc.add(f)
        with pytest.raises(ValueError, match="already tracked"):
            alloc.add(f)

    def test_remove_untracked_rejected(self):
        alloc = make_alloc(r=10)
        with pytest.raises(KeyError, match="not tracked"):
            alloc.remove(Flow(1, ("r",)))

    def test_concurrency_counts_follow_add_remove(self):
        alloc = make_alloc(a=10, b=10)
        f1, f2 = Flow(1, ("a", "b")), Flow(1, ("a",))
        alloc.add(f1)
        alloc.add(f2)
        assert alloc.concurrency("a") == 2
        assert alloc.concurrency("b") == 1
        alloc.remove(f1)
        assert alloc.concurrency("a") == 1
        assert alloc.concurrency("b") == 0
        assert alloc.active_flows == 1

    def test_empty_solve(self):
        assert make_alloc(r=10).solve() == {}


class TestExactEquivalence:
    """Mirror the reference allocator's unit cases with exact equality."""

    def test_single_flow_full_capacity(self):
        alloc = make_alloc(r=10)
        f = Flow(100, ("r",))
        alloc.add(f)
        assert alloc.solve() == reference([f], dict(r=10))
        assert alloc.solve()[f] == 10.0

    def test_equal_split(self):
        alloc = make_alloc(r=20)
        flows = [Flow(100, ("r",)) for _ in range(4)]
        for f in flows:
            alloc.add(f)
        assert alloc.solve() == reference(flows, dict(r=20))

    def test_classic_three_flow_maxmin(self):
        alloc = make_alloc(a=10, b=4)
        f1, f2, f3 = Flow(100, ("a",)), Flow(100, ("b",)), Flow(100, ("a", "b"))
        for f in (f1, f2, f3):
            alloc.add(f)
        rates = alloc.solve()
        assert rates == reference([f1, f2, f3], dict(a=10, b=4))
        assert rates[f2] == pytest.approx(2)
        assert rates[f3] == pytest.approx(2)
        assert rates[f1] == pytest.approx(8)

    def test_rate_caps(self):
        alloc = make_alloc(r=30)
        capped = Flow(100, ("r",), rate_cap=2.0)
        free1, free2 = Flow(100, ("r",)), Flow(100, ("r",))
        for f in (capped, free1, free2):
            alloc.add(f)
        rates = alloc.solve()
        assert rates == reference([capped, free1, free2], dict(r=30))
        assert rates[capped] == 2.0

    def test_concurrency_penalty_resources(self):
        res = Resource("d", 100.0, concurrency_penalty=0.5)
        alloc = IncrementalAllocator()
        alloc.register("d", res)
        flows = [Flow(10, ("d",)) for _ in range(3)]
        for f in flows:
            alloc.add(f)
        rates = alloc.solve()
        assert rates == allocate_rates(flows, {"d": res})
        # eff = 100 / (1 + 0.5*2) = 50, split 3 ways
        assert rates[flows[0]] == pytest.approx(50 / 3)

    def test_solve_after_interleaved_add_remove(self):
        alloc = make_alloc(a=10, b=4, c=7)
        f1 = Flow(100, ("a", "b"))
        f2 = Flow(100, ("b", "c"), rate_cap=1.5)
        f3 = Flow(100, ("a",))
        f4 = Flow(100, ("c",))
        for f in (f1, f2, f3, f4):
            alloc.add(f)
        alloc.remove(f2)
        alloc.add(f2b := Flow(50, ("b", "c"), rate_cap=1.5))
        alloc.remove(f3)
        active = [f1, f4, f2b]
        rates = alloc.solve()
        assert rates == reference(active, dict(a=10, b=4, c=7))
        verify_allocation(active, {k: float(v) for k, v in dict(a=10, b=4, c=7).items()}, rates)

    def test_resolve_is_stable(self):
        """solve() twice with no changes returns identical rates."""
        alloc = make_alloc(a=10, b=4)
        flows = [Flow(100, ("a", "b")), Flow(100, ("a",), rate_cap=3.0)]
        for f in flows:
            alloc.add(f)
        assert alloc.solve() == alloc.solve()

    def test_last_iterations_reported(self):
        alloc = make_alloc(a=10, b=4)
        for f in (Flow(100, ("a",)), Flow(100, ("a", "b"))):
            alloc.add(f)
        alloc.solve()
        assert alloc.last_iterations >= 1
