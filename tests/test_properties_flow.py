"""Property-based tests for the max-flow solvers.

Invariants checked on random graphs:
* both solvers compute the same flow value, matching networkx;
* flow conservation at every internal vertex;
* capacity constraints on every edge;
* max-flow equals min-cut capacity (strong duality).
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flownetwork import FlowNetwork


@st.composite
def flow_graphs(draw):
    """A random digraph with integer capacities plus (source, sink)."""
    n = draw(st.integers(min_value=2, max_value=10))
    max_edges = n * (n - 1)
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=0, max_size=max_edges, unique=True)
    )
    caps = draw(
        st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return n, list(zip(chosen, caps))


def _build(n, edges):
    net = FlowNetwork(n)
    handles = []
    for (u, v), c in edges:
        handles.append(((u, v), net.add_edge(u, v, c)))
    return net, handles


@given(flow_graphs())
@settings(max_examples=60, deadline=None)
def test_solvers_agree_with_networkx(graph):
    n, edges = graph
    net, _ = _build(n, edges)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for (u, v), c in edges:
        if g.has_edge(u, v):
            g[u][v]["capacity"] += c
        else:
            g.add_edge(u, v, capacity=c)
    expected = nx.maximum_flow_value(g, 0, n - 1)
    assert net.dinic(0, n - 1) == expected
    net.reset()
    assert net.edmonds_karp(0, n - 1) == expected


@given(flow_graphs())
@settings(max_examples=60, deadline=None)
def test_flow_conservation_and_capacity(graph):
    n, edges = graph
    net, handles = _build(n, edges)
    total = net.dinic(0, n - 1)
    net_out = [0] * n
    for (u, v), handle in handles:
        f = net.flow_on(handle)
        assert 0 <= f  # no negative flow
        # flow_on never exceeds the edge's original capacity
        cap = dict(edges_sum(edges)).get((u, v))
        net_out[u] += f
        net_out[v] -= f
    # Conservation: zero at internal vertices; +total at source, -total at sink.
    assert net_out[0] == total
    assert net_out[n - 1] == -total
    for v in range(1, n - 1):
        assert net_out[v] == 0


def edges_sum(edges):
    acc = {}
    for (u, v), c in edges:
        acc[(u, v)] = acc.get((u, v), 0) + c
    return acc.items()


@given(flow_graphs())
@settings(max_examples=60, deadline=None)
def test_per_edge_capacity_respected(graph):
    n, edges = graph
    net, handles = _build(n, edges)
    net.dinic(0, n - 1)
    for i, ((u, v), handle) in enumerate(handles):
        cap = edges[i][1]
        assert net.flow_on(handle) <= cap


@given(flow_graphs())
@settings(max_examples=40, deadline=None)
def test_max_flow_equals_min_cut(graph):
    n, edges = graph
    net, handles = _build(n, edges)
    total = net.dinic(0, n - 1)
    reachable = net.min_cut_reachable(0)
    cut_capacity = sum(
        c for (u, v), c in edges if u in reachable and v not in reachable
    )
    assert total == cut_capacity
