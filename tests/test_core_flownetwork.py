"""Tests for the max-flow solvers, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.core.flownetwork import FlowNetwork


def _to_networkx(net: FlowNetwork) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(net.num_vertices))
    for u, edges in enumerate(net.adj):
        for e in edges:
            if e.original_cap > 0:
                # Parallel edges collapse by summing capacity.
                if g.has_edge(u, e.to):
                    g[u][e.to]["capacity"] += e.original_cap
                else:
                    g.add_edge(u, e.to, capacity=e.original_cap)
    return g


def _random_network(rng: np.random.Generator, n: int, p: float) -> FlowNetwork:
    net = FlowNetwork(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                net.add_edge(u, v, int(rng.integers(1, 20)))
    return net


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 7)
        assert net.dinic(0, 1) == 7

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 4)
        assert net.edmonds_karp(0, 2) == 4

    def test_parallel_paths_sum(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(1, 3, 3)
        net.add_edge(0, 2, 5)
        net.add_edge(2, 3, 5)
        assert net.dinic(0, 3) == 8

    def test_disconnected_zero(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(2, 3, 3)
        assert net.dinic(0, 3) == 0

    def test_cancellation_path(self):
        """The classic case needing a flow-cancelling augmenting path."""
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(0, 2, 1)
        net.add_edge(1, 2, 1)
        net.add_edge(1, 3, 1)
        net.add_edge(2, 3, 1)
        assert net.dinic(0, 3) == 2

    def test_zero_capacity_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 0)
        assert net.dinic(0, 1) == 0


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(2).add_edge(1, 1, 5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork(2).add_edge(0, 1, -1)

    def test_float_capacity_rejected(self):
        with pytest.raises(TypeError):
            FlowNetwork(2).add_edge(0, 1, 1.5)

    def test_vertex_range(self):
        with pytest.raises(ValueError):
            FlowNetwork(2).add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            FlowNetwork(0)

    def test_same_source_sink(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            net.dinic(0, 0)

    def test_unknown_algorithm(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            net.max_flow(0, 1, algorithm="simplex")


class TestFlowQueries:
    def test_flow_on_edges(self):
        net = FlowNetwork(3)
        h1 = net.add_edge(0, 1, 10)
        h2 = net.add_edge(1, 2, 4)
        net.dinic(0, 2)
        assert net.flow_on(h1) == 4
        assert net.flow_on(h2) == 4

    def test_reset_restores_capacity(self):
        net = FlowNetwork(2)
        h = net.add_edge(0, 1, 5)
        assert net.dinic(0, 1) == 5
        net.reset()
        assert net.flow_on(h) == 0
        assert net.edmonds_karp(0, 1) == 5

    def test_min_cut_partition(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 4)
        net.dinic(0, 2)
        reachable = net.min_cut_reachable(0)
        assert 0 in reachable
        assert 2 not in reachable
        # Cut capacity equals max flow (here the 1→2 edge).
        assert reachable == {0, 1}


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        net = _random_network(rng, n=12, p=0.3)
        g = _to_networkx(net)
        expected = nx.maximum_flow_value(g, 0, 11) if g.number_of_edges() else 0
        assert net.dinic(0, 11) == expected
        net.reset()
        assert net.edmonds_karp(0, 11) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_bipartite_matching_graphs(self, seed):
        """The exact network shape single_data builds: s→P→F→t, unit F caps."""
        rng = np.random.default_rng(100 + seed)
        m, n = 5, 15
        net = FlowNetwork(m + n + 2)
        s, t = 0, m + n + 1
        g = nx.DiGraph()
        for r in range(m):
            net.add_edge(s, 1 + r, 3)
            g.add_edge(s, 1 + r, capacity=3)
        for task in range(n):
            net.add_edge(1 + m + task, t, 1)
            g.add_edge(1 + m + task, t, capacity=1)
            for r in rng.choice(m, size=2, replace=False):
                net.add_edge(1 + int(r), 1 + m + task, 1)
                g.add_edge(1 + int(r), 1 + m + task, capacity=1)
        expected = nx.maximum_flow_value(g, s, t)
        assert net.dinic(s, t) == expected

    def test_dinic_and_ek_agree_on_larger_graph(self):
        rng = np.random.default_rng(77)
        net1 = _random_network(rng, n=30, p=0.15)
        rng = np.random.default_rng(77)
        net2 = _random_network(rng, n=30, p=0.15)
        assert net1.dinic(0, 29) == net2.edmonds_karp(0, 29)


class TestVectorizedBFS:
    """The numpy frontier BFS replays the scalar FIFO BFS exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_levels_match_scalar_on_virgin_graph(self, seed):
        rng = np.random.default_rng(200 + seed)
        net = _random_network(rng, n=25, p=0.2)
        scalar = net._bfs_levels(0, 24)
        scalar_levels = list(net._level)
        buf = [0] * net.num_vertices
        vec = net._bfs_levels_vec(0, 24, buf)
        assert (vec is None) == (scalar is None)
        assert buf == scalar_levels

    @pytest.mark.parametrize("seed", range(6))
    def test_levels_match_scalar_on_residual_graph(self, seed):
        rng = np.random.default_rng(250 + seed)
        net = _random_network(rng, n=25, p=0.25)
        net.dinic(0, 24)  # leave a saturated residual state behind
        scalar = net._bfs_levels(0, 24)
        scalar_levels = list(net._level)
        buf = [0] * net.num_vertices
        vec = net._bfs_levels_vec(0, 24, buf)
        assert (vec is None) == (scalar is None)
        assert buf == scalar_levels

    @pytest.mark.parametrize("seed", range(6))
    def test_dinic_bit_identical_with_vector_bfs(self, seed, monkeypatch):
        import repro.core.flownetwork as fn

        rng = np.random.default_rng(300 + seed)
        net_scalar = _random_network(rng, n=20, p=0.25)
        rng = np.random.default_rng(300 + seed)
        net_vector = _random_network(rng, n=20, p=0.25)
        flow_scalar = net_scalar.dinic(0, 19)
        monkeypatch.setattr(fn, "VECTOR_MIN_VERTICES", 1)
        flow_vector = net_vector.dinic(0, 19)
        assert flow_vector == flow_scalar
        # Residual capacities identical => every per-handle flow identical.
        assert net_vector._cap == net_scalar._cap

    def test_large_bipartite_uses_vector_path(self):
        # m ranks, n tasks: m + n + 2 = 622 vertices >= VECTOR_MIN_VERTICES,
        # so dinic takes the numpy BFS by default; edmonds_karp (scalar
        # BFS throughout) is the oracle.
        from repro.core.flownetwork import VECTOR_MIN_VERTICES

        rng = np.random.default_rng(7)
        m, n = 20, 600
        assert m + n + 2 >= VECTOR_MIN_VERTICES
        net_d = FlowNetwork(m + n + 2)
        net_e = FlowNetwork(m + n + 2)
        s, t = 0, m + n + 1
        for net in (net_d, net_e):
            rng = np.random.default_rng(7)
            for r in range(m):
                net.add_edge(s, 1 + r, 30)
            for task in range(n):
                net.add_edge(1 + m + task, t, 1)
                for r in rng.choice(m, size=2, replace=False):
                    net.add_edge(1 + int(r), 1 + m + task, 1)
        assert net_d.dinic(s, t) == net_e.edmonds_karp(s, t)

    def test_csr_invalidated_by_edge_adds(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net._ensure_csr()
        assert net._csr_ptr is not None
        net.add_edge(1, 2, 3)
        assert net._csr_ptr is None
        net.add_edges([(2, 3, 3)])
        assert net._csr_ptr is None
        assert net.dinic(0, 3) == 3
