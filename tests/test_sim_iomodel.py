"""Tests for the read cost model."""

import pytest

from repro.dfs.chunk import MB, Chunk, ChunkId
from repro.dfs.cluster import ClusterSpec
from repro.dfs.filesystem import ReadPlan
from repro.simulate.iomodel import read_cost, uncontended_read_time
from repro.simulate.resources import disk, nic_rx, nic_tx


@pytest.fixture
def spec():
    return ClusterSpec.homogeneous(
        4,
        disk_bw=100.0,
        nic_bw=200.0,
        seek_latency=0.01,
        remote_latency=0.05,
        remote_stream_bw=40.0,
    )


def _plan(reader, server):
    chunk = Chunk(ChunkId("f", 0), 1000)
    return ReadPlan(chunk=chunk, reader_node=reader, server_node=server)


class TestReadCost:
    def test_local_cost(self, spec):
        cost = read_cost(_plan(1, 1), spec)
        assert cost.latency == pytest.approx(0.01)
        assert cost.path == (disk(1),)
        assert cost.size == 1000
        assert cost.rate_cap is None

    def test_remote_cost(self, spec):
        cost = read_cost(_plan(0, 2), spec)
        assert cost.latency == pytest.approx(0.06)
        assert cost.path == (disk(2), nic_tx(2), nic_rx(0))
        assert cost.rate_cap == pytest.approx(40.0)


class TestUncontendedTime:
    def test_local(self, spec):
        t = uncontended_read_time(_plan(1, 1), spec)
        assert t == pytest.approx(0.01 + 1000 / 100.0)

    def test_remote_capped_by_stream(self, spec):
        t = uncontended_read_time(_plan(0, 2), spec)
        assert t == pytest.approx(0.06 + 1000 / 40.0)

    def test_remote_slower_than_local(self, spec):
        assert uncontended_read_time(_plan(0, 2), spec) > uncontended_read_time(
            _plan(1, 1), spec
        )

    def test_remote_bottleneck_without_cap(self):
        spec = ClusterSpec.homogeneous(
            2, disk_bw=10.0, nic_bw=5.0, remote_stream_bw=1000.0,
            seek_latency=0.0, remote_latency=0.0,
        )
        t = uncontended_read_time(_plan(0, 1), spec)
        assert t == pytest.approx(1000 / 5.0)
