"""Unit tests for replica placement policies."""

import numpy as np
import pytest

from repro.dfs.chunk import MB, uniform_dataset
from repro.dfs.cluster import ClusterSpec
from repro.dfs.placement import (
    HdfsWriterLocalPlacement,
    RandomPlacement,
    SkewedPlacement,
)


@pytest.fixture
def spec():
    return ClusterSpec.homogeneous(12, nodes_per_rack=4)


@pytest.fixture
def dataset():
    return uniform_dataset("d", 40, chunk_size=MB)


class TestRandomPlacement:
    def test_replicas_distinct_nodes(self, spec, dataset, rng):
        layout = RandomPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng
        )
        for nodes in layout.values():
            assert len(set(nodes)) == 3

    def test_every_chunk_placed(self, spec, dataset, rng):
        layout = RandomPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng
        )
        assert set(layout) == {c.id for c in dataset.iter_chunks()}

    def test_replication_clamped_to_candidates(self, spec, dataset, rng):
        layout = RandomPlacement().place_dataset(dataset, spec, [0, 1], 3, rng)
        for nodes in layout.values():
            assert len(nodes) == 2

    def test_respects_candidate_subset(self, spec, dataset, rng):
        candidates = [2, 5, 7, 9]
        layout = RandomPlacement().place_dataset(dataset, spec, candidates, 3, rng)
        for nodes in layout.values():
            assert set(nodes) <= set(candidates)

    def test_marginal_probability_r_over_m(self, spec, rng):
        """Each node holds a given chunk with probability ~ r/m (paper §III)."""
        ds = uniform_dataset("big", 4000, chunk_size=MB)
        layout = RandomPlacement().place_dataset(ds, spec, list(range(12)), 3, rng)
        counts = np.zeros(12)
        for nodes in layout.values():
            for n in nodes:
                counts[n] += 1
        frac = counts / 4000
        assert np.allclose(frac, 3 / 12, atol=0.03)

    def test_zero_replication_rejected(self, spec, dataset, rng):
        with pytest.raises(ValueError):
            RandomPlacement().place_dataset(dataset, spec, list(range(12)), 0, rng)

    def test_empty_candidates_rejected(self, spec, dataset, rng):
        with pytest.raises(ValueError):
            RandomPlacement().place_dataset(dataset, spec, [], 3, rng)


class TestHdfsWriterLocalPlacement:
    def test_first_replica_on_writer(self, spec, dataset, rng):
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng, writer_node=5
        )
        for nodes in layout.values():
            assert nodes[0] == 5

    def test_second_replica_other_rack(self, spec, dataset, rng):
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng, writer_node=0
        )
        for nodes in layout.values():
            assert spec.rack_of(nodes[1]) != spec.rack_of(nodes[0])

    def test_third_replica_same_rack_as_second(self, spec, dataset, rng):
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng, writer_node=0
        )
        for nodes in layout.values():
            assert spec.rack_of(nodes[2]) == spec.rack_of(nodes[1])

    def test_distinct_nodes(self, spec, dataset, rng):
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng, writer_node=3
        )
        for nodes in layout.values():
            assert len(set(nodes)) == 3

    def test_no_writer_falls_back_to_random_first(self, spec, dataset, rng):
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, spec, list(range(12)), 3, rng
        )
        firsts = {nodes[0] for nodes in layout.values()}
        assert len(firsts) > 1  # not pinned to one node

    def test_single_rack_cluster(self, dataset, rng):
        flat = ClusterSpec.homogeneous(6)
        layout = HdfsWriterLocalPlacement().place_dataset(
            dataset, flat, list(range(6)), 3, rng, writer_node=2
        )
        for nodes in layout.values():
            assert len(set(nodes)) == 3
            assert nodes[0] == 2


class TestSkewedPlacement:
    def test_excluded_nodes_get_nothing(self, spec, dataset, rng):
        policy = SkewedPlacement(excluded_fraction=0.25)
        layout = policy.place_dataset(dataset, spec, list(range(12)), 3, rng)
        used = {n for nodes in layout.values() for n in nodes}
        # 25% of 12 = 3 highest-numbered nodes excluded.
        assert used <= set(range(9))

    def test_bias_skews_low_ids(self, spec, rng):
        ds = uniform_dataset("big", 2000, chunk_size=MB)
        policy = SkewedPlacement(excluded_fraction=0.0, bias=3.0)
        layout = policy.place_dataset(ds, spec, list(range(12)), 3, rng)
        counts = np.zeros(12)
        for nodes in layout.values():
            for n in nodes:
                counts[n] += 1
        assert counts[0] > counts[11] * 1.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SkewedPlacement(excluded_fraction=1.0)
        with pytest.raises(ValueError):
            SkewedPlacement(bias=-1)

    def test_all_excluded_falls_back(self, spec, dataset, rng):
        # With one candidate nothing can be excluded (eligible never empty).
        policy = SkewedPlacement(excluded_fraction=0.5)
        layout = policy.place_dataset(dataset, spec, [4], 3, rng)
        for nodes in layout.values():
            assert nodes == (4,)

    def test_replicas_distinct(self, spec, dataset, rng):
        layout = SkewedPlacement(excluded_fraction=0.25, bias=1.0).place_dataset(
            dataset, spec, list(range(12)), 3, rng
        )
        for nodes in layout.values():
            assert len(set(nodes)) == len(nodes) == 3
