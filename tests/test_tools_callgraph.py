"""Tests for the call-graph/summary engine behind `opass-verify`.

These exercise the resolution machinery directly: cyclic call graphs
must reach a fixed point, unresolvable method calls must fall back to
dynamic dispatch over same-named methods, and ``TYPE_CHECKING`` imports
must be erased from the runtime dependency graph.
"""

from __future__ import annotations

import pytest

from repro.tools.callgraph import build_project, parse_module
from repro.tools.summaries import resolve_summaries, summarize_module


def project_of(*sources: tuple[str, str]):
    """Build (project, flat summaries) from ``(module, source)`` pairs."""
    project = build_project(
        [(f"{module.replace('.', '/')}.py", text, module) for module, text in sources]
    )
    local = {}
    for decl in project.modules.values():
        for name, summary in summarize_module(decl).items():
            local[f"{decl.module}.{name}"] = summary
    return project, resolve_summaries(project, local)


class TestResolution:
    def test_cross_module_call_resolves(self):
        project, ps = project_of(
            (
                "repro.core.a",
                "from repro.core.b import helper\n"
                "def top(x):\n"
                "    return helper(x)\n",
            ),
            ("repro.core.b", "def helper(x):\n    return x\n"),
        )
        [rc] = ps.resolved["repro.core.a.top"]
        assert [t.key for t in rc.targets] == ["repro.core.b.helper"]
        # return flow composes: top returns its own parameter via helper
        assert 0 in ps.return_params["repro.core.a.top"]

    def test_cycle_reaches_fixed_point(self):
        project, ps = project_of(
            (
                "repro.core.even",
                "from repro.core import odd\n"
                "def is_even(n, acc):\n"
                "    acc.append(n)\n"
                "    return odd.is_odd(n - 1, acc)\n",
            ),
            (
                "repro.core.odd",
                "from repro.core import even\n"
                "def is_odd(n, acc):\n"
                "    return even.is_even(n - 1, acc)\n",
            ),
        )
        assert ps.rounds > 0  # converged, did not spin forever
        # mutation of acc propagates around the cycle into both summaries
        assert 1 in ps.mutates["repro.core.even.is_even"]
        assert 1 in ps.mutates["repro.core.odd.is_odd"]

    def test_dynamic_dispatch_fallback_by_method_name(self):
        project, ps = project_of(
            (
                "repro.dfs.nodes",
                "class DataNode:\n"
                "    def serve(self, n):\n"
                "        self.load += n\n",
            ),
            (
                "repro.core.driver",
                "def drive(thing, n):\n"
                "    thing.serve(n)\n",  # receiver type unknown
            ),
        )
        [rc] = ps.resolved["repro.core.driver.drive"]
        assert [t.key for t in rc.targets] == ["repro.dfs.nodes.DataNode.serve"]
        # the receiver param inherits the mutation transitively
        assert 0 in ps.mutates["repro.core.driver.drive"]

    def test_annotated_receiver_beats_dynamic_dispatch(self):
        project, ps = project_of(
            (
                "repro.dfs.nodes",
                "class DataNode:\n"
                "    def serve(self, n):\n"
                "        self.load += n\n"
                "class Logger:\n"
                "    def serve(self, n):\n"
                "        return n\n",
            ),
            (
                "repro.core.driver",
                "from repro.dfs.nodes import Logger\n"
                "def drive(thing: Logger, n):\n"
                "    thing.serve(n)\n",
            ),
        )
        [rc] = ps.resolved["repro.core.driver.drive"]
        assert [t.key for t in rc.targets] == ["repro.dfs.nodes.Logger.serve"]
        assert 0 not in ps.mutates["repro.core.driver.drive"]


class TestParsing:
    def test_type_checking_imports_are_not_runtime_deps(self):
        decl = parse_module(
            "from typing import TYPE_CHECKING\n"
            "from repro.dfs.cluster import ClusterSpec\n"
            "if TYPE_CHECKING:\n"
            "    from repro.simulate.engine import Engine\n"
            "def f(e):\n"
            "    return e\n",
            path="src/repro/core/x.py",
        )
        assert "repro.dfs.cluster" in decl.deps
        assert not any(d.startswith("repro.simulate") for d in decl.deps)
        # the alias still exists for annotation resolution
        assert decl.resolve_local("Engine") == "repro.simulate.engine.Engine"

    def test_module_directive_overrides_path(self):
        decl = parse_module(
            "# opass-lint: module=repro.core.fake\nX = 1\n", path="whatever.py"
        )
        assert decl.module == "repro.core.fake"

    def test_relative_import_resolution(self):
        decl = parse_module(
            "from ..dfs.cluster import ClusterSpec\n",
            path="src/repro/simulate/x.py",
        )
        assert "repro.dfs.cluster" in decl.deps

    def test_closure_includes_transitive_deps(self):
        project = build_project(
            [
                ("repro/core/a.py", "from repro.core.b import f\n", "repro.core.a"),
                ("repro/core/b.py", "from repro.core.c import g\n", "repro.core.b"),
                ("repro/core/c.py", "def g():\n    return 1\n", "repro.core.c"),
            ]
        )
        assert project.closure_of("repro.core.a") == {
            "repro.core.a",
            "repro.core.b",
            "repro.core.c",
        }


class TestSummaryFacts:
    def test_fresh_container_breaks_alias(self):
        # building a dict *from* a param then mutating it is not a
        # mutation of the param (the dict-comprehension false-aliasing bug)
        project, ps = project_of(
            (
                "repro.core.m",
                "def f(quotas):\n"
                "    d = {k: v for k, v in quotas.items()}\n"
                "    d['x'] = 1\n"
                "    return d\n",
            )
        )
        assert ps.mutates["repro.core.m.f"] == frozenset()

    def test_boolop_keeps_alias(self):
        # `a or b` returns an operand — mutating the result mutates a param
        project, ps = project_of(
            (
                "repro.core.m",
                "def f(a, b):\n"
                "    c = a or b\n"
                "    c.append(1)\n",
            )
        )
        assert ps.mutates["repro.core.m.f"] == frozenset({0, 1})
