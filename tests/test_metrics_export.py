"""Tests for result export."""

import csv
import json

import pytest

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB
from repro.metrics.export import (
    READ_RECORD_FIELDS,
    records_to_rows,
    run_summary,
    write_records_csv,
    write_run_json,
    write_series_csv,
)
from repro.simulate import ParallelReadRun, StaticSource


@pytest.fixture
def result():
    fs = DistributedFileSystem(ClusterSpec.homogeneous(4), seed=6)
    fs.put_dataset(uniform_dataset("d", 8, chunk_size=4 * MB))
    placement = ProcessPlacement.one_per_node(4)
    tasks = tasks_from_dataset(fs.dataset("d"))
    return ParallelReadRun(
        fs, placement, tasks, StaticSource(rank_interval_assignment(8, 4)), seed=6
    ).run()


class TestRecords:
    def test_rows_sorted_by_completion(self, result):
        rows = records_to_rows(result)
        assert len(rows) == 8
        ends = [r["end_time"] for r in rows]
        assert ends == sorted(ends)
        assert set(rows[0]) == set(READ_RECORD_FIELDS)

    def test_csv_round_trip(self, result, tmp_path):
        path = write_records_csv(result, tmp_path / "reads.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 8
        assert rows[0].keys() == set(READ_RECORD_FIELDS)
        assert float(rows[0]["duration"]) > 0


class TestSummary:
    def test_fields(self, result):
        s = run_summary(result)
        assert s["tasks_completed"] == 8
        assert s["local_bytes"] + s["remote_bytes"] == 8 * 4 * MB
        assert "served_mb_per_node" not in s

    def test_with_nodes(self, result):
        s = run_summary(result, num_nodes=4)
        assert len(s["served_mb_per_node"]) == 4
        assert sum(s["served_mb_per_node"]) == pytest.approx(32.0)

    def test_json_round_trip(self, result, tmp_path):
        path = write_run_json(result, tmp_path / "run.json", num_nodes=4)
        data = json.loads(path.read_text())
        assert data["reads"] == 8
        assert data["io_time"]["min"] <= data["io_time"]["avg"]


class TestSeries:
    def test_write_and_read(self, tmp_path):
        path = write_series_csv(
            tmp_path / "fig.csv", {"base": [1.0, 2.0], "opass": [0.5, 0.5]}
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["index", "base", "opass"]
        assert rows[1] == ["0", "1.0", "0.5"]
        assert len(rows) == 3

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="lengths differ"):
            write_series_csv(tmp_path / "x.csv", {"a": [1], "b": [1, 2]})

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {})
