"""Property-based tests for incremental re-matching."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    optimize_single_data,
    rematch_incremental,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.dfs.chunk import MB


def _build(m: int, n: int, seed: int):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    fs.put_dataset(uniform_dataset("d", n, chunk_size=4 * MB))
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(fs.dataset("d"))
    return fs, placement, tasks


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=6, max_value=32),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=25, deadline=None)
def test_incremental_valid_and_kept_tasks_stay(m, n, seed, victim):
    """After any single node's replicas vanish: the repair is valid, kept
    tasks keep their owner, and moved ∪ kept partitions the task set."""
    victim = victim % m
    fs, placement, tasks = _build(m, n, seed)
    graph = graph_from_filesystem(fs, tasks, placement)
    base = optimize_single_data(graph, seed=seed)
    old_owner = base.assignment.process_of()

    fs.namenode.drop_node_replicas(victim)
    new_graph = graph_from_filesystem(fs, tasks, placement)
    result = rematch_incremental(new_graph, base.assignment, seed=seed)

    result.assignment.validate(n, quotas=equal_quotas(n, m))
    new_owner = result.assignment.process_of()
    assert result.kept_tasks | result.moved_tasks == set(range(n))
    assert not (result.kept_tasks & result.moved_tasks)
    for t in result.kept_tasks:
        assert new_owner[t] == old_owner[t]
    for t in result.moved_tasks:
        assert new_owner[t] != old_owner[t]


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=6, max_value=32),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_incremental_noop_when_nothing_changed(m, n, seed):
    fs, placement, tasks = _build(m, n, seed)
    graph = graph_from_filesystem(fs, tasks, placement)
    base = optimize_single_data(graph, seed=seed)
    result = rematch_incremental(graph, base.assignment, seed=seed)
    assert result.churn == 0
    assert result.assignment.tasks_of == base.assignment.tasks_of


@given(
    st.integers(min_value=4, max_value=8),
    st.integers(min_value=8, max_value=32),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=15, deadline=None)
def test_incremental_churn_bounded_by_displacement(m, n, seed):
    """Churn cannot exceed the displaced set: tasks that stayed local and
    within quota never move."""
    fs, placement, tasks = _build(m, n, seed)
    graph = graph_from_filesystem(fs, tasks, placement)
    base = optimize_single_data(graph, seed=seed)
    fs.namenode.drop_node_replicas(0)
    new_graph = graph_from_filesystem(fs, tasks, placement)

    # Upper bound: tasks whose owner lost co-location under the new graph.
    owner = base.assignment.process_of()
    displaced_bound = sum(
        1 for t in range(n) if new_graph.edge_weight(owner[t], t) == 0
    )
    result = rematch_incremental(new_graph, base.assignment, seed=seed)
    assert result.churn <= displaced_bound
