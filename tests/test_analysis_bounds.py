"""Tests for the bottleneck makespan bounds."""

import numpy as np
import pytest

from repro.analysis import (
    expected_server_bound,
    makespan_bounds,
    reader_bound,
    server_bound_from_served,
)
from repro.core import optimize_single_data, rank_interval_assignment
from repro.experiments import build_single_data_graph, run_single_data_comparison


@pytest.fixture(scope="module")
def env():
    fs, placement, tasks, graph = build_single_data_graph(16, seed=2)
    return fs, placement, tasks, graph


class TestReaderBound:
    def test_full_local_assignment_bound_is_disk_time(self, env):
        fs, _, tasks, graph = env
        opass = optimize_single_data(graph, seed=2)
        assert opass.full_matching
        b = reader_bound(opass.assignment, graph, fs.spec)
        # 10 chunks x 64 MB / 70 MB/s per process.
        assert b == pytest.approx(10 * 64e6 / fs.spec.node(0).disk_bw, rel=1e-9)

    def test_remote_heavy_assignment_has_larger_bound(self, env):
        fs, _, tasks, graph = env
        base = rank_interval_assignment(graph.num_tasks, graph.num_processes)
        opass = optimize_single_data(graph, seed=2)
        assert reader_bound(base, graph, fs.spec) > reader_bound(
            opass.assignment, graph, fs.spec
        )


class TestServerBound:
    def test_post_hoc_bound_from_arrays(self, env):
        fs, *_ = env
        served = np.zeros(16)
        served[3] = 700e6
        b = server_bound_from_served(served, fs.spec)
        assert b == pytest.approx(700e6 / fs.spec.node(3).disk_bw)

    def test_post_hoc_bound_from_dict(self, env):
        fs, *_ = env
        b = server_bound_from_served({0: 140e6, 1: 70e6}, fs.spec)
        assert b == pytest.approx(2.0)

    def test_expected_bound_full_local(self, env):
        fs, _, _, graph = env
        opass = optimize_single_data(graph, seed=2)
        b = expected_server_bound(opass.assignment, graph, fs.spec)
        # Each node serves its own 10 chunks.
        assert b == pytest.approx(10 * 64e6 / fs.spec.node(0).disk_bw, rel=1e-9)


class TestBoundsHold:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_simulated_makespan_never_beats_bound(self, seed):
        fs, placement, tasks, graph = build_single_data_graph(8, seed=seed)
        cmp = run_single_data_comparison(8, seed=seed)
        base = rank_interval_assignment(graph.num_tasks, graph.num_processes)
        opass = optimize_single_data(graph, seed=seed)
        base_b = makespan_bounds(base, graph, fs.spec)
        opass_b = makespan_bounds(opass.assignment, graph, fs.spec)
        assert cmp.base.makespan >= base_b.bound * 0.999
        assert cmp.opass.makespan >= opass_b.bound * 0.999

    def test_opass_saturates_its_bound(self):
        """A full matching meets the bound up to per-read seek latency."""
        fs, placement, tasks, graph = build_single_data_graph(16, seed=2)
        cmp = run_single_data_comparison(16, seed=2)
        opass = optimize_single_data(graph, seed=2)
        bound = makespan_bounds(opass.assignment, graph, fs.spec).bound
        latency_total = 10 * fs.spec.seek_latency
        assert cmp.opass.makespan <= bound + latency_total + 1e-6

    def test_baseline_far_above_bound(self):
        """The baseline's contention losses show up as slack over the bound."""
        fs, placement, tasks, graph = build_single_data_graph(16, seed=2)
        cmp = run_single_data_comparison(16, seed=2)
        base = rank_interval_assignment(graph.num_tasks, graph.num_processes)
        bound = makespan_bounds(base, graph, fs.spec).bound
        assert cmp.base.makespan > 1.5 * bound
