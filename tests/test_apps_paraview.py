"""Tests for the ParaView MultiBlock application model."""

import pytest

from repro.apps.paraview import (
    MultiBlockMetaFile,
    ParaViewConfig,
    ParaViewMultiBlockReader,
)
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.workloads import paraview_multiblock_series


@pytest.fixture
def env():
    spec = ClusterSpec.homogeneous(8)
    fs = DistributedFileSystem(spec, seed=29)
    series = paraview_multiblock_series(40)
    fs.put_dataset(series)
    return fs, ProcessPlacement.one_per_node(8), series


class TestMetaFile:
    def test_from_dataset(self, env):
        _, _, series = env
        meta = MultiBlockMetaFile.from_dataset(series)
        assert meta.num_pieces == 40
        assert meta.pieces[0] == series.files[0].name


class TestConfig:
    def test_defaults_valid(self):
        c = ParaViewConfig()
        assert c.parse_bw > 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ParaViewConfig(parse_bw=0)
        with pytest.raises(ValueError):
            ParaViewConfig(render_time_per_step=-1)


class TestAssignment:
    def test_stock_reader_uses_rank_intervals(self, env):
        fs, placement, series = env
        reader = ParaViewMultiBlockReader(fs, placement, series, use_opass=False)
        a = reader.read_xml_data()
        assert a.tasks_of[0] == [0, 1, 2, 3, 4]
        assert a.tasks_of[7] == [35, 36, 37, 38, 39]

    def test_opass_reader_improves_locality(self, env):
        from repro.core import graph_from_filesystem, locality_fraction

        fs, placement, series = env
        stock = ParaViewMultiBlockReader(fs, placement, series, use_opass=False)
        opass = ParaViewMultiBlockReader(fs, placement, series, use_opass=True)
        graph = graph_from_filesystem(fs, stock.tasks, placement)
        assert locality_fraction(opass.read_xml_data(), graph) > locality_fraction(
            stock.read_xml_data(), graph
        )


class TestRender:
    def test_all_pieces_read(self, env):
        fs, placement, series = env
        result = ParaViewMultiBlockReader(fs, placement, series).render(seed=1)
        assert result.run.tasks_completed == 40
        assert result.reader_call_times.shape == (40,)
        assert result.steps == 5

    def test_call_time_includes_parse(self, env):
        fs, placement, series = env
        config = ParaViewConfig(parse_bw=1e6, render_time_per_step=0.0)  # 1 MB/s: slow parse
        result = ParaViewMultiBlockReader(
            fs, placement, series, config=config
        ).render(seed=1)
        # Pieces are ~56 MB: parse alone is ~56 s per call.
        assert result.min_call_time > 50.0

    def test_render_time_extends_total(self, env):
        fs, placement, series = env
        fast = ParaViewMultiBlockReader(
            fs, placement, series,
            config=ParaViewConfig(render_time_per_step=0.0),
        ).render(seed=1)
        fs.reset_counters()
        slow = ParaViewMultiBlockReader(
            fs, placement, series,
            config=ParaViewConfig(render_time_per_step=3.0),
        ).render(seed=1)
        # 5 rendering steps -> at least +15 s.
        assert slow.total_execution_time >= fast.total_execution_time + 15.0 - 1e-6

    def test_opass_lowers_variance_and_total(self, env):
        fs, placement, series = env
        stock = ParaViewMultiBlockReader(fs, placement, series, use_opass=False).render(seed=1)
        fs.reset_counters()
        opass = ParaViewMultiBlockReader(fs, placement, series, use_opass=True).render(seed=1)
        assert opass.std_call_time < stock.std_call_time
        assert opass.avg_call_time < stock.avg_call_time
        assert opass.total_execution_time < stock.total_execution_time

    def test_stats_consistent(self, env):
        fs, placement, series = env
        r = ParaViewMultiBlockReader(fs, placement, series).render(seed=1)
        assert r.min_call_time <= r.avg_call_time <= r.max_call_time
