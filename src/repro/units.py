"""Dimension markers for simulation quantities.

The simulator mixes three physical dimensions — byte counts, simulated
seconds, and transfer rates — in plain ``int``/``float`` variables.  A
bytes value handed to a parameter expecting bytes/sec type-checks fine
and produces silently wrong curves, so the dimensions are declared
explicitly with :data:`typing.Annotated` markers and enforced statically
by ``opass-verify`` (rule OPS102, :mod:`repro.tools.interproc`).

Two spellings are supported and equivalent to the analyzer:

* the aliases below for the common base types::

      def read_time(size: Bytes, bw: BytesPerSec) -> Seconds: ...

* an inline ``Annotated`` when the base type differs::

      remaining: Annotated[float, BYTES]

At runtime the markers are inert: ``Annotated[float, BYTES]`` *is*
``float`` to every consumer, including mypy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated


@dataclass(frozen=True, slots=True)
class Unit:
    """A dimension tag carried inside ``Annotated[...]`` metadata."""

    name: str


#: Byte counts (chunk sizes, co-located bytes, residual transfer amounts).
BYTES = Unit("bytes")
#: Simulated-time durations and instants.
SECONDS = Unit("seconds")
#: Transfer rates: disk/NIC bandwidths, per-stream ceilings, flow rates.
BYTES_PER_SEC = Unit("bytes_per_sec")
#: Dimensionless cardinalities: node/task/replica counts, concurrency.
COUNT = Unit("count")

Bytes = Annotated[int, BYTES]
Seconds = Annotated[float, SECONDS]
BytesPerSec = Annotated[float, BYTES_PER_SEC]
Count = Annotated[int, COUNT]

__all__ = [
    "BYTES",
    "BYTES_PER_SEC",
    "COUNT",
    "SECONDS",
    "Bytes",
    "BytesPerSec",
    "Count",
    "Seconds",
    "Unit",
]
