"""ASCII rendering of the paper's tables and figure series.

Benchmarks print their reproduced rows through these helpers so the output
reads like the paper's figures: aligned columns, one row per configuration,
series rendered as sparkline-style number strips.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width table."""
    norm_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float) or isinstance(cell, np.floating):
                cells.append(float_fmt.format(float(cell)))
            else:
                cells.append(str(cell))
        norm_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in norm_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in norm_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str,
    values: Iterable[float],
    *,
    fmt: str = "{:.2f}",
    max_items: int = 24,
) -> str:
    """One labelled numeric strip (a figure series), elided in the middle."""
    vals = [float(v) for v in values]
    if len(vals) <= max_items:
        body = " ".join(fmt.format(v) for v in vals)
    else:
        head = max_items // 2
        tail = max_items - head
        body = (
            " ".join(fmt.format(v) for v in vals[:head])
            + " … "
            + " ".join(fmt.format(v) for v in vals[-tail:])
        )
    return f"{label}: {body}"


def format_histogram(
    values: Iterable[float],
    *,
    bins: int = 10,
    width: int = 40,
    label_fmt: str = "{:.2f}",
) -> str:
    """A textual histogram (Figure 1(b)-style distribution view)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(empty)"
    counts, edges = np.histogram(arr, bins=bins)
    top = counts.max() if counts.max() > 0 else 1
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / top))
        lo = label_fmt.format(edges[i])
        hi = label_fmt.format(edges[i + 1])
        lines.append(f"[{lo:>8}, {hi:>8}) {c:>6d} {bar}")
    return "\n".join(lines)


def paper_vs_measured(
    rows: Iterable[tuple[str, object, object]],
    *,
    title: str | None = None,
) -> str:
    """The EXPERIMENTS.md-style comparison: metric | paper | measured."""
    return format_table(
        ["metric", "paper", "measured"],
        [(name, paper, measured) for name, paper, measured in rows],
        title=title,
    )
