"""Textual rendering of tables, series and histograms for benchmark output."""

from .tables import format_histogram, format_series, format_table, paper_vs_measured

__all__ = [
    "format_histogram",
    "format_series",
    "format_table",
    "paper_vs_measured",
]
