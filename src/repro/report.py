"""One-shot reproduction report generator.

``opass report -o report.md`` runs every paper experiment at a chosen
scale and writes a self-contained markdown report with paper-vs-measured
tables — a regenerable EXPERIMENTS.md.  All experiment logic comes from
:mod:`repro.experiments`; this module only formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import experiments as exp
from .analysis import figure3_series, paper_figure3_series, section3b_summary

PAPER_FIG3 = {64: "81.09%", 128: "21.43%", 256: "1.64%", 512: "0.46%"}


@dataclass(frozen=True)
class ReportConfig:
    """Scale knobs for one report run."""

    num_nodes: int = 64
    seed: int = 0
    paraview_seeds: tuple[int, ...] = (0, 1, 2)
    include_extensions: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 4:
            raise ValueError("report needs at least 4 nodes")
        if not self.paraview_seeds:
            raise ValueError("need at least one ParaView seed")


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _fig3_section() -> str:
    printed = {r.num_nodes: r.prob_more_than_5 for r in paper_figure3_series()}
    corrected = {r.num_nodes: r.prob_more_than_5 for r in figure3_series()}
    rows = [
        [m, PAPER_FIG3[m], f"{printed[m]:.2%}", f"{corrected[m]:.2%}"]
        for m in (64, 128, 256, 512)
    ]
    s = section3b_summary()
    return (
        "## Figure 3 + §III (analytical)\n\n"
        + _md_table(
            ["m", "paper P(X>5)", "reproduced (r=1 arithmetic)", "corrected (r=3 formula)"],
            rows,
        )
        + "\n\n"
        + f"§III-B: E[nodes serving ≤1 chunk] = {s.nodes_at_most_1:.1f} "
        + "(paper: 11, via its 512× typo for m=128); "
        + f"E[nodes serving >8] = {s.nodes_more_than_8:.1f}.\n"
    )


def _single_data_section(cfg: ReportConfig) -> str:
    cmp = exp.run_single_data_comparison(cfg.num_nodes, seed=cfg.seed)
    b, o = cmp.base.io_stats(), cmp.opass.io_stats()
    rows = [
        ["w/o Opass", f"{b['avg']:.2f}", f"{b['max']:.2f}", f"{b['min']:.2f}",
         f"{cmp.base.locality_fraction:.0%}",
         f"{cmp.base_served_mb.max():.0f}", f"{cmp.base_served_mb.min():.0f}"],
        ["with Opass", f"{o['avg']:.2f}", f"{o['max']:.2f}", f"{o['min']:.2f}",
         f"{cmp.opass.locality_fraction:.0%}",
         f"{cmp.opass_served_mb.max():.0f}", f"{cmp.opass_served_mb.min():.0f}"],
    ]
    return (
        f"## Figures 7/8 (single-data, {cfg.num_nodes} nodes)\n\n"
        + _md_table(
            ["method", "avg io (s)", "max io (s)", "min io (s)",
             "locality", "max MB/node", "min MB/node"],
            rows,
        )
        + f"\n\nPaper: Opass flat ~0.9 s and ideal-share serving; baseline "
        + f"max/min grows with cluster size.  Measured improvement: "
        + f"{b['avg'] / o['avg']:.1f}× avg I/O.\n"
    )


def _multi_data_section(cfg: ReportConfig) -> str:
    cmp = exp.run_multi_data_comparison(
        num_nodes=cfg.num_nodes, num_tasks=cfg.num_nodes * 10, seed=cfg.seed
    )
    return (
        f"## Figures 9/10 (multi-data, {cfg.num_nodes} nodes)\n\n"
        + _md_table(
            ["method", "avg io (s)", "locality"],
            [
                ["w/o Opass", f"{cmp.base.result.io_stats()['avg']:.2f}",
                 f"{cmp.base.result.locality_fraction:.0%}"],
                ["with Opass", f"{cmp.opass.result.io_stats()['avg']:.2f}",
                 f"{cmp.opass.result.locality_fraction:.0%}"],
            ],
        )
        + f"\n\nPaper: ~2× improvement, partial locality.  Measured: "
        + f"{cmp.io_improvement:.1f}×.\n"
    )


def _dynamic_section(cfg: ReportConfig) -> str:
    cmp = exp.run_dynamic_comparison(
        num_nodes=cfg.num_nodes, num_fragments=cfg.num_nodes * 10, seed=cfg.seed
    )
    return (
        f"## Figure 11 (dynamic, {cfg.num_nodes} nodes)\n\n"
        + _md_table(
            ["method", "avg io (s)", "locality", "makespan (s)"],
            [
                ["default dynamic", f"{cmp.base.result.io_stats()['avg']:.2f}",
                 f"{cmp.base.result.locality_fraction:.0%}",
                 f"{cmp.base.result.makespan:.1f}"],
                ["Opass dynamic", f"{cmp.opass.result.io_stats()['avg']:.2f}",
                 f"{cmp.opass.result.locality_fraction:.0%}",
                 f"{cmp.opass.result.makespan:.1f}"],
            ],
        )
        + f"\n\nPaper: 2.7× improvement.  Measured: {cmp.io_improvement:.1f}×.\n"
    )


def _paraview_section(cfg: ReportConfig) -> str:
    out = exp.run_paraview_repeated(
        num_nodes=cfg.num_nodes,
        num_datasets=cfg.num_nodes * 10,
        seeds=cfg.paraview_seeds,
    )
    m = out.metrics
    return (
        f"## Figure 12 / §V-B (ParaView, {cfg.num_nodes} nodes, "
        f"{len(cfg.paraview_seeds)} runs)\n\n"
        + _md_table(
            ["metric", "paper", "measured"],
            [
                ["avg call w/o Opass", "5.48 s",
                 f"{m['stock_avg_call'].mean:.2f} ± {m['stock_avg_call'].std:.2f} s"],
                ["avg call with Opass", "3.07 s",
                 f"{m['opass_avg_call'].mean:.2f} ± {m['opass_avg_call'].std:.2f} s"],
                ["total w/o Opass", "~167 s",
                 f"{m['stock_total'].mean:.0f} ± {m['stock_total'].std:.0f} s"],
                ["total with Opass", "~98 s",
                 f"{m['opass_total'].mean:.0f} ± {m['opass_total'].std:.0f} s"],
            ],
        )
        + "\n"
    )


def _overhead_section(cfg: ReportConfig) -> str:
    o = exp.measure_matching_overhead(cfg.num_nodes, seed=cfg.seed)
    return (
        "## §V-C overhead\n\n"
        f"Matching wall-clock {o.matching_seconds * 1000:.1f} ms vs "
        f"{o.access_seconds:.1f} s simulated data access = "
        f"{o.overhead_fraction:.2%} (paper: < 1 %).\n"
    )


def _extensions_section(cfg: ReportConfig) -> str:
    """Analytical extensions: hotspot prediction and bandwidth bounds."""
    from .analysis import hotspot_summary, makespan_bounds
    from .core import optimize_single_data, rank_interval_assignment

    n = cfg.num_nodes * 10
    hs = hotspot_summary(n, 3, cfg.num_nodes)
    fs, placement, tasks, graph = exp.build_single_data_graph(
        cfg.num_nodes, seed=cfg.seed
    )
    base = rank_interval_assignment(n, cfg.num_nodes)
    opass = optimize_single_data(graph, seed=cfg.seed).assignment
    base_bound = makespan_bounds(base, graph, fs.spec).bound
    opass_bound = makespan_bounds(opass, graph, fs.spec).bound
    return (
        "## Extensions (analytical)\n\n"
        + _md_table(
            ["metric", "value"],
            [
                ["E[hottest node] (extreme-value model)",
                 f"{hs.expected_max:.1f} chunks = "
                 f"{hs.overload_factor:.1f}x the ideal share"],
                ["baseline makespan lower bound", f"{base_bound:.1f} s"],
                ["Opass makespan lower bound", f"{opass_bound:.1f} s "
                 "(Opass saturates this to within ~1%)"],
            ],
        )
        + "\n"
    )


def generate_report(cfg: ReportConfig | None = None) -> str:
    """Run every experiment and return the markdown report."""
    cfg = cfg if cfg is not None else ReportConfig()
    sections = [
        "# Opass reproduction report\n",
        f"Scale: {cfg.num_nodes} nodes, seed {cfg.seed}.  All numbers are "
        "regenerated by `opass report`; shapes (who wins, by what factor) "
        "are the reproduction target — see EXPERIMENTS.md for commentary.\n",
        _fig3_section(),
        _single_data_section(cfg),
        _multi_data_section(cfg),
        _dynamic_section(cfg),
        _paraview_section(cfg),
        _overhead_section(cfg),
    ]
    if cfg.include_extensions:
        sections.append(_extensions_section(cfg))
    return "\n".join(sections)
