"""Master/worker (dynamic-assignment) execution driver.

The mpiBLAST pattern (§IV-D, §V-A3): a master process hands tasks to slave
processes as they go idle.  The dispatch policy is pluggable:

* :class:`repro.core.DefaultDynamicPolicy` — locality-oblivious FIFO or
  random dispatch (the paper's baseline);
* :class:`repro.core.DynamicPlan` — Opass's guided per-worker lists with
  locality-aware stealing.

The master's control messages are modelled as free (the paper's scheduling
overhead discussion, §V-C, measures matching cost separately); the data
plane runs on the flow simulator via :class:`ParallelReadRun`, whose
``TaskSource`` protocol both policies implement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bipartite import ProcessPlacement
from ..core.dynamic import DynamicPlan
from ..core.tasks import Task
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ComputeModel, ParallelReadRun, RunResult, TaskSource


@dataclass(frozen=True)
class MasterWorkerOutcome:
    """A dynamic run plus dispatcher statistics."""

    result: RunResult
    steals: int
    dispatched: int


def irregular_compute_model(
    mean: float,
    *,
    cv: float = 0.5,
    seed: int | np.random.Generator = 0,
) -> ComputeModel:
    """A lognormal per-task compute-time model.

    Gene-comparison style workloads have task times that "vary greatly and
    are difficult to predict"; a lognormal with coefficient of variation
    ``cv`` is a standard stand-in for such heavy-ish tails.  The model's own
    RNG is seeded independently of the runner so the same compute times can
    be replayed under different dispatch policies.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if mean == 0:
        return lambda rank, task, _rng: 0.0
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean) - sigma2 / 2.0
    sigma = float(np.sqrt(sigma2))

    def model(rank: int, task: int, _rng: np.random.Generator) -> float:
        return float(rng.lognormal(mu, sigma))

    return model


def run_master_worker(
    fs: DistributedFileSystem,
    placement: ProcessPlacement,
    tasks: list[Task],
    policy: TaskSource,
    *,
    compute_time: ComputeModel | float | None = None,
    seed: int | np.random.Generator = 0,
) -> MasterWorkerOutcome:
    """Execute a dynamic run: idle workers pull tasks from ``policy``."""
    run = ParallelReadRun(
        fs,
        placement,
        tasks,
        policy,
        compute_time=compute_time,
        seed=seed,
    )
    result = run.run()
    steals = policy.steals if isinstance(policy, DynamicPlan) else 0
    dispatched = (
        policy.dispatched if isinstance(policy, DynamicPlan) else result.tasks_completed
    )
    return MasterWorkerOutcome(result=result, steals=steals, dispatched=dispatched)
