"""A simulated MPI-like communicator.

The paper's applications are MPI programs (MPICH on Marmot).  They use MPI
for three things Opass cares about: knowing their rank and size, being
pinned to cluster nodes, and synchronising.  :class:`SimComm` provides that
surface — mirroring mpi4py's lowercase API (``send``/``recv``/``bcast``/
``barrier``) — over in-memory mailboxes so application logic written against
it reads like real MPI code and can be unit-tested deterministically.

This communicator models *control-plane* messaging (task assignments,
completion notices), which the paper treats as free relative to data
movement; the data plane is the flow simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..core.bipartite import ProcessPlacement

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class SimComm:
    """Rank/size bookkeeping plus in-memory point-to-point mailboxes."""

    placement: ProcessPlacement
    _mailboxes: dict[int, deque[tuple[int, int, Any]]] = field(default_factory=dict)
    _barrier_count: int = 0
    barriers_completed: int = 0

    def __post_init__(self) -> None:
        self._mailboxes = {r: deque() for r in range(self.placement.num_processes)}

    @property
    def size(self) -> int:
        return self.placement.num_processes

    def node_of(self, rank: int) -> int:
        return self.placement.node_of(rank)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    # -- point-to-point -------------------------------------------------------

    def send(self, obj: Any, dest: int, *, source: int, tag: int = 0) -> None:
        """Deliver ``obj`` to ``dest``'s mailbox (non-blocking, in order)."""
        self._check_rank(dest)
        self._check_rank(source)
        self._mailboxes[dest].append((source, tag, obj))

    def recv(self, *, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Pop the first matching message for ``rank``.

        Raises ``LookupError`` if no matching message is queued (simulated
        programs must not block — drivers sequence sends before receives).
        """
        self._check_rank(rank)
        box = self._mailboxes[rank]
        for i, (src, t, obj) in enumerate(box):
            if (source == ANY_SOURCE or src == source) and (tag == ANY_TAG or t == tag):
                del box[i]
                return obj
        raise LookupError(f"no message for rank {rank} (source={source}, tag={tag})")

    def probe(self, *, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        self._check_rank(rank)
        return any(
            (source == ANY_SOURCE or src == source) and (tag == ANY_TAG or t == tag)
            for src, t, _ in self._mailboxes[rank]
        )

    def pending(self, rank: int) -> int:
        self._check_rank(rank)
        return len(self._mailboxes[rank])

    # -- collectives -------------------------------------------------------------

    def bcast(self, obj: Any, *, root: int = 0) -> None:
        """Root sends ``obj`` to every other rank."""
        self._check_rank(root)
        for rank in range(self.size):
            if rank != root:
                self.send(obj, rank, source=root, tag=ANY_TAG + 1)

    def barrier_arrive(self, rank: int) -> bool:
        """Register arrival; True when this arrival completes the barrier."""
        self._check_rank(rank)
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            self.barriers_completed += 1
            return True
        return False
