"""Shared-memory worker pool for parallel component solves.

:class:`ComponentSolvePool` maps a batch of dirty flow–resource
components (in the lowered flat-array form of
:mod:`repro.simulate.vectorized`) onto persistent fork workers.  The
numeric payload travels through one ``multiprocessing.shared_memory``
block — the parent packs each component's ``(lens, fr_flat, eff,
caps)`` arrays into the block, workers attach read-only views with
``np.frombuffer`` and write the solved rates back in place, and only
tiny offset tables and iteration counts cross the control pipes.  No
Flow or Resource object is ever pickled.

The workers run :func:`repro.simulate.vectorized.solve_arrays` — the
exact kernels the in-process path dispatches to — so pooled and serial
solves are byte-identical and the engine's event replay is unchanged
with the pool on or off.  On the engine side the returned rates are
scattered straight into the slot-indexed rate column of
:class:`repro.simulate.flowtable.FlowTable` (the allocator's ``out``
array *is* the table's rate array), so a pooled solve feeds the
vectorised settle/predict passes without any per-flow re-packing.

A dispatch round-trip has a fixed cost (pipe wakeup + scheduling), so
the pool advertises a measured :attr:`min_flows` work threshold,
calibrated from ping round-trips at construction; the component
allocator solves smaller dirty sets in-process.  Construct with
``min_flows=0`` to force dispatch (the identity tests do).

This module sits in the :mod:`repro.parallel` layer, *above*
:mod:`repro.simulate` in the layering DAG: the engine never imports it
— a pool instance is handed to ``Simulation(parallel=...)`` as a duck
object (``min_flows``, ``solve_batch``, ``last_dispatch_wall``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..simulate.vectorized import Lowered, solve_arrays

__all__ = ["ComponentSolvePool"]

_ITEM = 8  # bytes per element; every wire array is int64 or float64

#: calibration bounds for the measured dispatch threshold
_MIN_FLOWS_FLOOR = 32
_MIN_FLOWS_CEIL = 65536
#: assumed serial solve cost per flow when converting the measured
#: round-trip time into a break-even flow count
_SERIAL_COST_PER_FLOW_S = 2e-6


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's block without adopting cleanup duty.

    Attaching registers the segment with this process's resource
    tracker (fixed only in Python 3.13's ``track=False``); unregister
    it so worker exit neither unlinks the live block nor warns about a
    "leak" the parent owns.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def _solve_descs(shm: shared_memory.SharedMemory, descs) -> list[int]:
    """Solve each described component in place; return iteration counts.

    All numpy views of the block live and die inside this frame, so the
    caller can later ``shm.close()`` without tripping the exported-
    pointer guard.
    """
    buf = shm.buf
    iters: list[int] = []
    for off_lens, nflows, off_fr, npath, off_eff, nres, off_caps in descs:
        lens = np.frombuffer(buf, np.int64, nflows, off_lens)
        fr_flat = np.frombuffer(buf, np.int64, npath, off_fr)
        eff = np.frombuffer(buf, np.float64, nres, off_eff)
        caps = np.frombuffer(buf, np.float64, nflows, off_caps)
        rates, n_iter = solve_arrays(lens, fr_flat, eff, caps)
        # Rates overwrite the caps slot: same dtype and length, and caps
        # are dead once the component is solved.
        np.frombuffer(buf, np.float64, nflows, off_caps)[:] = rates  # opass: ignore[OPS202] -- rates reuse the dead caps slot: same dtype, length and offset
        iters.append(n_iter)
    return iters


def _worker_main(conn) -> None:
    """Worker loop: attach the block, solve assigned components in place."""
    shm: shared_memory.SharedMemory | None = None
    shm_name: str | None = None
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "solve":
                _, name, descs = msg
                if name != shm_name:
                    if shm is not None:
                        shm.close()
                    shm = _attach(name)
                    shm_name = name
                conn.send(_solve_descs(shm, descs))
            elif cmd == "ping":
                conn.send("pong")
            else:  # "exit"
                break
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class ComponentSolvePool:
    """Persistent fork workers solving lowered components over shared memory.

    Parameters
    ----------
    workers:
        Process count; defaults to ``os.cpu_count()``.
    min_flows:
        Dispatch threshold (total multi-flow-component flows in the dirty
        set below which the caller should solve in-process).  ``None``
        calibrates it from measured ping round-trips; ``0`` forces every
        batch through the workers (identity testing).
    """

    def __init__(self, workers: int | None = None, *,
                 min_flows: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be positive")
        ctx = mp.get_context("fork")
        self._procs = []
        self._conns = []
        for _ in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        self.workers = workers
        # Single-slot box so the finalizer can reach the current block
        # without referencing ``self`` (which would make it immortal).
        self._shm_box: list[shared_memory.SharedMemory | None] = [None]
        self._closed = False
        self.last_dispatch_wall = 0.0
        # weakref.finalize also fires at interpreter exit, so orphaned
        # pools cannot leak workers or the shared block.
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns, self._shm_box
        )
        if min_flows is None:
            min_flows = self._calibrate()
        self.min_flows = min_flows

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ComponentSolvePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- calibration ---------------------------------------------------------

    def _calibrate(self, rounds: int = 5) -> int:
        """Break-even flow count from the fastest measured ping round-trip."""
        best = float("inf")
        conn = self._conns[0]
        for _ in range(rounds):
            t0 = time.perf_counter()
            conn.send(("ping",))
            conn.recv()
            rtt = time.perf_counter() - t0
            if rtt < best:
                best = rtt
        flows = int(best / _SERIAL_COST_PER_FLOW_S)
        return max(_MIN_FLOWS_FLOOR, min(_MIN_FLOWS_CEIL, flows))

    # -- dispatch ------------------------------------------------------------

    def _block(self, nbytes: int) -> shared_memory.SharedMemory:
        """The shared block, grown geometrically when the batch outgrows it."""
        shm = self._shm_box[0]
        if shm is None or shm.size < nbytes:
            if shm is not None:
                shm.close()
                shm.unlink()
            size = 1 << max(16, (nbytes - 1).bit_length())
            shm = shared_memory.SharedMemory(create=True, size=size)
            self._shm_box[0] = shm
        return shm

    def solve_batch(self, lowered: list[Lowered]) -> list[tuple[list[float], int]]:
        """Solve every component; results keep the input order.

        Packs the batch into the shared block, assigns workers contiguous
        component ranges balanced by flow count, and reads the rates back
        from the block once every worker reports in.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if not lowered:
            return []
        t0 = time.perf_counter()
        # -- pack ------------------------------------------------------------
        descs: list[tuple[int, int, int, int, int, int, int]] = []
        off = 0
        sizes: list[tuple[int, int]] = []
        for low in lowered:
            npath = sum(len(ids) for ids in low.fr)
            sizes.append((npath, low.nres))
            off += (low.nflows + npath + low.nres + low.nflows) * _ITEM
        shm = self._block(off)
        buf = shm.buf
        off = 0
        for low, (npath, nres) in zip(lowered, sizes):
            nflows = low.nflows
            off_lens = off
            off_fr = off_lens + nflows * _ITEM
            off_eff = off_fr + npath * _ITEM
            off_caps = off_eff + nres * _ITEM
            off = off_caps + nflows * _ITEM
            lens = np.frombuffer(buf, np.int64, nflows, off_lens)
            fr_flat = np.frombuffer(buf, np.int64, npath, off_fr)
            pos = 0
            for fi, ids in enumerate(low.fr):
                lens[fi] = len(ids)
                fr_flat[pos : pos + len(ids)] = ids
                pos += len(ids)
            np.frombuffer(buf, np.float64, nres, off_eff)[:] = low.eff
            np.frombuffer(buf, np.float64, nflows, off_caps)[:] = low.caps
            descs.append((off_lens, nflows, off_fr, npath, off_eff, nres, off_caps))
        # -- assign contiguous ranges balanced by flow count -----------------
        total = sum(low.nflows for low in lowered)
        nw = min(self.workers, len(lowered))
        share = total / nw
        bounds = [0]
        acc = 0.0
        for i, low in enumerate(lowered):
            acc += low.nflows
            if acc >= share * len(bounds) and len(bounds) < nw:
                bounds.append(i + 1)
        bounds.append(len(lowered))
        busy = []
        try:
            for w in range(nw):
                lo, hi = bounds[w], bounds[w + 1]
                if lo == hi:
                    continue
                self._conns[w].send(("solve", shm.name, descs[lo:hi]))
                busy.append(w)
            iters: list[int] = [0] * len(lowered)
            for w in busy:
                lo, hi = bounds[w], bounds[w + 1]
                iters[lo:hi] = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            # A worker died mid-dispatch (EOFError on recv, BrokenPipeError
            # on send).  Surface a clean error instead of hanging on the
            # remaining recvs, and tear the pool down so the shared block
            # is unlinked even on this abnormal path.  The packing views
            # must die first or the block's mapping stays pinned by this
            # frame (which outlives the raise inside the traceback).
            del buf, lens, fr_flat
            dead = [
                (p.pid, p.exitcode) for p in self._procs if not p.is_alive()
            ]
            self.close()
            raise RuntimeError(
                f"pool worker died mid-dispatch (pid, exitcode: {dead}); "
                "pool closed and shared memory released"
            ) from exc
        # -- unpack ----------------------------------------------------------
        results: list[tuple[list[float], int]] = []
        for low, desc, n_iter in zip(lowered, descs, iters):
            rates = np.frombuffer(buf, np.float64, low.nflows, desc[6]).tolist()
            results.append((rates, n_iter))
        del buf
        self.last_dispatch_wall = time.perf_counter() - t0
        return results


def _shutdown(procs, conns, shm_box) -> None:
    """Finalizer body: ask workers to exit, reap them, free the block."""
    for conn in conns:
        try:
            conn.send(("exit",))
        except (OSError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    shm = shm_box[0]
    if shm is not None:
        shm_box[0] = None
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:
            # A crashed dispatch frame may still hold numpy views of the
            # block.  The name is already unlinked above; the mapping is
            # freed once those views die.
            pass
