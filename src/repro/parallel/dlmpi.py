"""DL-MPI-style data-locality query interface.

The paper builds on the authors' earlier DL-MPI work ("Dl-mpi: Enabling
data locality computation for MPI-based data-intensive applications"),
which gives each MPI process an API to ask the underlying distributed file
system what data is local to it.  Opass's graph builder consumes the whole
layout centrally; this module provides the per-process view that an
MPI-rank programming model would use, so applications can be written
against the same queries DL-MPI exposes:

* ``local_chunks(rank)`` — chunks with a replica on the rank's node;
* ``is_local(rank, chunk)`` / ``local_bytes(rank)``;
* ``locality_map(chunks)`` — per-rank partition of an input list into
  local and remote chunks (the scatter/gather helper DL-MPI builds on).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bipartite import ProcessPlacement
from ..dfs.chunk import ChunkId
from ..dfs.filesystem import DistributedFileSystem


@dataclass(frozen=True)
class LocalitySplit:
    """One process's view of an input list."""

    rank: int
    local: tuple[ChunkId, ...]
    remote: tuple[ChunkId, ...]

    @property
    def locality_ratio(self) -> float:
        total = len(self.local) + len(self.remote)
        return len(self.local) / total if total else 1.0


class DataLocalityQuery:
    """Per-rank locality queries over a live file system."""

    def __init__(self, fs: DistributedFileSystem, placement: ProcessPlacement) -> None:
        self.fs = fs
        self.placement = placement
        # node -> set of chunk ids, built once from DataNode inventories.
        self._node_chunks = {
            nid: set(dn.chunk_ids) for nid, dn in fs.datanodes.items()
        }

    def refresh(self) -> None:
        """Re-read inventories (after a rebalance or failure)."""
        self._node_chunks = {
            nid: set(dn.chunk_ids) for nid, dn in self.fs.datanodes.items()
        }

    def _node_of(self, rank: int) -> int:
        return self.placement.node_of(rank)

    def is_local(self, rank: int, chunk_id: ChunkId) -> bool:
        """True iff a replica of the chunk sits on the rank's node."""
        return chunk_id in self._node_chunks.get(self._node_of(rank), ())

    def local_chunks(self, rank: int) -> list[ChunkId]:
        """All chunks with a replica on the rank's node (sorted)."""
        return sorted(self._node_chunks.get(self._node_of(rank), ()), key=str)

    def local_bytes(self, rank: int) -> int:
        """Total bytes stored on the rank's node."""
        node = self._node_of(rank)
        return self.fs.datanodes[node].stored_bytes

    def split(self, rank: int, chunks: list[ChunkId]) -> LocalitySplit:
        """Partition an input list into this rank's local/remote chunks."""
        local, remote = [], []
        for cid in chunks:
            (local if self.is_local(rank, cid) else remote).append(cid)
        return LocalitySplit(rank=rank, local=tuple(local), remote=tuple(remote))

    def locality_map(self, chunks: list[ChunkId]) -> dict[int, LocalitySplit]:
        """Every rank's split of the same input list."""
        return {
            rank: self.split(rank, chunks)
            for rank in range(self.placement.num_processes)
        }

    def best_rank_for(self, chunk_id: ChunkId) -> list[int]:
        """Ranks co-located with the chunk (the candidates Opass matches)."""
        replicas = self.fs.namenode.locations_of(chunk_id)
        ranks_on = self.placement.ranks_on_node()
        out: list[int] = []
        for node in replicas:
            out.extend(ranks_on.get(node, ()))
        return sorted(out)
