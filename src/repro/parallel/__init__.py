"""MPI-like parallel execution substrate: communicator + SPMD/master-worker drivers."""

from .comm import ANY_SOURCE, ANY_TAG, SimComm
from .dlmpi import DataLocalityQuery, LocalitySplit
from .master_worker import (
    MasterWorkerOutcome,
    irregular_compute_model,
    run_master_worker,
)
from .pool import ComponentSolvePool
from .spmd import SpmdOutcome, run_opass_single, run_rank_interval, run_static

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ComponentSolvePool",
    "DataLocalityQuery",
    "LocalitySplit",
    "MasterWorkerOutcome",
    "SimComm",
    "SpmdOutcome",
    "irregular_compute_model",
    "run_master_worker",
    "run_opass_single",
    "run_rank_interval",
    "run_static",
]
