"""SPMD (static-assignment) execution driver.

The §V-A1 experiment shape: every process computes its own task interval up
front (ParaView-style rank arithmetic, or an Opass matching handed to it),
then all processes stream through their lists in parallel, reading each
task's inputs from the file system.  This module packages that pattern as a
single call returning the run result plus assignment-quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment, locality_fraction
from ..core.bipartite import LocalityGraph, ProcessPlacement, graph_from_filesystem
from ..core.baselines import rank_interval_assignment
from ..core.single_data import optimize_single_data
from ..core.tasks import Task
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ComputeModel, ParallelReadRun, RunResult, StaticSource


@dataclass(frozen=True)
class SpmdOutcome:
    """A static run plus the assignment that produced it."""

    assignment: Assignment
    result: RunResult
    planned_locality: float

    @property
    def achieved_locality(self) -> float:
        return self.result.locality_fraction


def run_static(
    fs: DistributedFileSystem,
    placement: ProcessPlacement,
    tasks: list[Task],
    assignment: Assignment,
    *,
    graph: LocalityGraph | None = None,
    compute_time: ComputeModel | float | None = None,
    barrier: bool = False,
    barrier_compute_time: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> SpmdOutcome:
    """Execute a precomputed assignment SPMD-style and score it."""
    if graph is None:
        graph = graph_from_filesystem(fs, tasks, placement)
    run = ParallelReadRun(
        fs,
        placement,
        tasks,
        StaticSource(assignment),
        compute_time=compute_time,
        barrier=barrier,
        barrier_compute_time=barrier_compute_time,
        seed=seed,
    )
    result = run.run()
    return SpmdOutcome(
        assignment=assignment,
        result=result,
        planned_locality=locality_fraction(assignment, graph),
    )


def run_rank_interval(
    fs: DistributedFileSystem,
    placement: ProcessPlacement,
    tasks: list[Task],
    **kwargs,
) -> SpmdOutcome:
    """The paper's baseline: ParaView's rank-interval static assignment."""
    assignment = rank_interval_assignment(len(tasks), placement.num_processes)
    return run_static(fs, placement, tasks, assignment, **kwargs)


def run_opass_single(
    fs: DistributedFileSystem,
    placement: ProcessPlacement,
    tasks: list[Task],
    *,
    opass_seed: int | np.random.Generator = 0,
    **kwargs,
) -> SpmdOutcome:
    """Opass: flow-matched static assignment over the same tasks."""
    graph = graph_from_filesystem(fs, tasks, placement)
    result = optimize_single_data(graph, seed=opass_seed)
    return run_static(fs, placement, tasks, result.assignment, graph=graph, **kwargs)
