"""Quota shaping for heterogeneous clusters (§IV-D setting).

The paper's dynamic scheduler targets "a better load balance in the
heterogeneous computing environment" but still seeds it with an
equal-share matching ("we assume that each process will process the same
amount of data").  When node speeds are known, a better prior is to size
each process's quota proportionally to its node's throughput, then run the
same matching machinery.  These helpers compute such quotas and the
end-to-end speed-aware plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs.cluster import ClusterSpec
from .bipartite import LocalityGraph, ProcessPlacement
from .dynamic import DynamicPlan, plan_dynamic
from .single_data import SingleDataResult, optimize_single_data


def proportional_quotas(weights: list[float], num_tasks: int) -> list[int]:
    """Integer quotas proportional to ``weights`` summing to ``num_tasks``.

    Largest-remainder (Hamilton) apportionment: exact totals, every quota
    within one of its real share, deterministic tie-breaking by rank.
    """
    if num_tasks < 0:
        raise ValueError("num_tasks must be non-negative")
    if not weights:
        raise ValueError("need at least one weight")
    w = np.asarray(weights, dtype=float)
    if (w < 0).any() or w.sum() == 0:
        raise ValueError("weights must be non-negative with a positive sum")
    shares = w / w.sum() * num_tasks
    floors = np.floor(shares).astype(int)
    remainder = num_tasks - int(floors.sum())
    # Hand the leftover tasks to the largest fractional parts.
    order = np.argsort(-(shares - floors), kind="stable")
    quotas = floors.copy()
    for i in range(remainder):
        quotas[order[i]] += 1
    return [int(q) for q in quotas]


def node_speed_weights(
    spec: ClusterSpec,
    placement: ProcessPlacement,
    *,
    speeds: dict[int, float] | None = None,
) -> list[float]:
    """Per-rank weights from node throughput.

    ``speeds`` overrides per-node relative speeds (e.g. measured task
    rates); by default a node's disk bandwidth is the proxy, split evenly
    among the ranks it hosts.
    """
    ranks_on = placement.ranks_on_node()
    weights = []
    for rank in range(placement.num_processes):
        node = placement.node_of(rank)
        raw = speeds[node] if speeds is not None else spec.node(node).disk_bw
        if raw < 0:
            raise ValueError(f"negative speed for node {node}")
        weights.append(raw / len(ranks_on[node]))
    return weights


@dataclass(frozen=True)
class HeterogeneousPlan:
    """A speed-aware matching plus its dynamic guided lists."""

    quotas: list[int]
    matching: SingleDataResult
    plan: DynamicPlan


def plan_heterogeneous(
    graph: LocalityGraph,
    spec: ClusterSpec,
    *,
    speeds: dict[int, float] | None = None,
    seed: int | np.random.Generator = 0,
) -> HeterogeneousPlan:
    """Speed-weighted Opass: quotas ∝ node speed, then matching + lists."""
    weights = node_speed_weights(spec, graph.placement, speeds=speeds)
    quotas = proportional_quotas(weights, graph.num_tasks)
    matching = optimize_single_data(graph, quotas=quotas, seed=seed)
    return HeterogeneousPlan(
        quotas=quotas,
        matching=matching,
        plan=plan_dynamic(graph, matching.assignment),
    )
