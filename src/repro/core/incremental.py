"""Incremental re-matching — the paper's §V-C future work.

"As the problem size becomes extremely large, the matching method may not
be scalable.  We leave this problem as a future work."  This module is
that future work: when the layout changes a little (a node fails, a few
chunks move, a node joins), recompute only what changed instead of solving
the whole flow problem again.

Approach: diff the old and new locality graphs; tasks whose assigned
process kept its co-location, and processes whose quota is unchanged, keep
their assignment.  Only *displaced* tasks (assignment no longer local, or
owner over-quota after the change) re-enter a restricted matching over the
residual quotas.  The result is exactly feasible, the churn (number of
tasks that moved) is reported, and quality is within the restricted
optimum of the full rematch.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from .assignment import Assignment, equal_quotas
from .bipartite import LocalityGraph
from .single_data import optimize_single_data

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IncrementalResult:
    """Outcome of an incremental rematch."""

    assignment: Assignment
    kept_tasks: frozenset[int]
    moved_tasks: frozenset[int]

    @property
    def churn(self) -> int:
        """Tasks whose owner changed."""
        return len(self.moved_tasks)


def rematch_incremental(
    new_graph: LocalityGraph,
    previous: Assignment,
    *,
    quotas: list[int] | None = None,
    seed: int | np.random.Generator = 0,
) -> IncrementalResult:
    """Repair ``previous`` against a changed locality graph.

    A task keeps its owner iff the owner still has positive co-location
    with it under the new graph and stays within quota.  Everything else —
    tasks that lost their locality, tasks of over-quota owners (lowest
    co-location evicted first), and tasks that were never local — is
    rematched by the flow optimizer against the residual quotas.

    Churn is therefore bounded by the number of affected tasks, and the
    kept portion of the assignment is untouched (no gratuitous moves).
    """
    m, n = new_graph.num_processes, new_graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)
    if len(quotas) != m:
        raise ValueError("quota list length != process count")
    if sum(quotas) < n:
        raise ValueError(f"total quota {sum(quotas)} < {n} tasks")

    old_owner = previous.process_of()
    if set(old_owner) != set(range(n)):
        raise ValueError("previous assignment does not cover the task set")

    # Phase 1: keep every still-local task, respecting quotas (evict the
    # least-local extras of over-quota owners).
    kept: dict[int, list[int]] = {r: [] for r in range(m)}
    displaced: list[int] = []
    for rank in range(m):
        mine = [t for t in previous.tasks_of.get(rank, [])]
        local_mine = [t for t in mine if new_graph.edge_weight(rank, t) > 0]
        nonlocal_mine = [t for t in mine if new_graph.edge_weight(rank, t) == 0]
        displaced.extend(nonlocal_mine)
        local_mine.sort(key=lambda t: (-new_graph.edge_weight(rank, t), t))
        kept[rank] = local_mine[: quotas[rank]]
        displaced.extend(local_mine[quotas[rank] :])
    displaced.sort()

    if not displaced:
        assignment = Assignment({r: list(ts) for r, ts in kept.items()})
        assignment.validate(n, quotas=quotas)
        return IncrementalResult(
            assignment=assignment,
            kept_tasks=frozenset(range(n)),
            moved_tasks=frozenset(),
        )

    # Phase 2: restricted matching of the displaced tasks over residual
    # quotas.  Build a sub-graph reindexed to the displaced tasks.
    residual = [quotas[r] - len(kept[r]) for r in range(m)]
    sub_index = {t: i for i, t in enumerate(displaced)}
    sub_tasks = [new_graph.tasks[t] for t in displaced]
    # Reuse optimize_single_data by constructing a LocalityGraph view.
    from .tasks import Task

    reindexed = [
        Task(task_id=i, inputs=sub_tasks[i].inputs) for i in range(len(sub_tasks))
    ]
    sub_colocated: dict[int, dict[int, int]] = {r: {} for r in range(m)}
    sub_task_ranks: dict[int, list[int]] = {}
    for t in displaced:
        i = sub_index[t]
        ranks = new_graph.ranks_of_task(t)
        sub_task_ranks[i] = list(ranks)
        for r in ranks:
            sub_colocated[r][i] = new_graph.edge_weight(r, t)
    sub_graph = LocalityGraph(
        placement=new_graph.placement,
        tasks=reindexed,
        sizes=dict(new_graph.sizes),
        colocated=sub_colocated,
        task_ranks=sub_task_ranks,
    )
    sub_result = optimize_single_data(sub_graph, quotas=residual, seed=seed)

    assignment = Assignment({r: list(ts) for r, ts in kept.items()})
    for rank, sub_ids in sub_result.assignment.tasks_of.items():
        for i in sub_ids:
            assignment.assign(rank, displaced[i])
    assignment.validate(n, quotas=quotas)

    new_owner = assignment.process_of()
    moved = frozenset(t for t in range(n) if new_owner[t] != old_owner[t])
    logger.info(
        "incremental rematch: %d displaced, %d moved, %d kept",
        len(displaced), len(moved), n - len(moved),
    )
    return IncrementalResult(
        assignment=assignment,
        kept_tasks=frozenset(range(n)) - moved,
        moved_tasks=moved,
    )
