"""Assignment value type, validation and quality scoring.

An :class:`Assignment` maps every task to exactly one process.  Scoring
functions measure the two quantities Opass optimizes: the fraction of data
readable locally, and the balance of serve load across nodes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from .bipartite import LocalityGraph


def equal_quotas(num_tasks: int, num_processes: int) -> list[int]:
    """Per-process task quotas: n/m each, remainder interleaved.

    The paper assumes "parallel processes usually need to be assigned an
    equal number of tasks".  When m does not divide n we use the same
    remainder distribution as the ParaView rank-interval formula
    (``floor((i+1)·n/m) − floor(i·n/m)``) so Opass's quota vector matches
    the baseline's per-rank loads exactly and comparisons are apples to
    apples.  All quotas differ by at most one.
    """
    if num_tasks < 0:
        raise ValueError("num_tasks must be non-negative")
    if num_processes <= 0:
        raise ValueError("num_processes must be positive")
    return [
        (r + 1) * num_tasks // num_processes - r * num_tasks // num_processes
        for r in range(num_processes)
    ]


@dataclass
class Assignment:
    """tasks_of[rank] = ordered list of task ids assigned to that process."""

    tasks_of: dict[int, list[int]] = field(default_factory=dict)

    @classmethod
    def empty(cls, num_processes: int) -> "Assignment":
        return cls({r: [] for r in range(num_processes)})

    @property
    def num_processes(self) -> int:
        return len(self.tasks_of)

    @property
    def num_tasks(self) -> int:
        return sum(len(ts) for ts in self.tasks_of.values())

    def process_of(self) -> dict[int, int]:
        """Inverse map task_id → rank.  Raises on duplicate assignment."""
        owner: dict[int, int] = {}
        for rank, ts in self.tasks_of.items():
            for t in ts:
                if t in owner:
                    raise ValueError(f"task {t} assigned to ranks {owner[t]} and {rank}")
                owner[t] = rank
        return owner

    def assign(self, rank: int, task_id: int) -> None:
        self.tasks_of.setdefault(rank, []).append(task_id)

    def validate(
        self,
        num_tasks: int,
        *,
        quotas: list[int] | None = None,
        exact_quota: bool = False,
    ) -> None:
        """Check disjointness, coverage, and (optionally) quota adherence."""
        # Vectorized happy path: every task in [0, num_tasks) exactly once
        # (and quotas respected) proves in a few array ops.  Any failure
        # falls through to the scalar walk below, which reproduces the
        # precise per-task error messages.
        total = sum(len(ts) for ts in self.tasks_of.values())
        if total == num_tasks:
            quotas_ok = quotas is None or (
                len(quotas) == len(self.tasks_of)
                and all(
                    len(self.tasks_of.get(rank, [])) == quota
                    if exact_quota
                    else len(self.tasks_of.get(rank, [])) <= quota
                    for rank, quota in enumerate(quotas)
                )
            )
            if quotas_ok:
                if total == 0:
                    return
                arr = np.fromiter(
                    itertools.chain.from_iterable(self.tasks_of.values()),
                    np.int64,
                    total,
                )
                if (
                    int(arr.min()) >= 0
                    and int(arr.max()) < num_tasks
                    and int(np.bincount(arr, minlength=num_tasks).max()) <= 1
                ):
                    return
        owner = self.process_of()
        expected = set(range(num_tasks))
        got = set(owner)
        if got != expected:
            missing = sorted(expected - got)[:5]
            extra = sorted(got - expected)[:5]
            raise ValueError(f"bad task coverage; missing={missing} extra={extra}")
        if quotas is not None:
            if len(quotas) != len(self.tasks_of):
                raise ValueError("quota list length != process count")
            for rank, quota in enumerate(quotas):
                load = len(self.tasks_of.get(rank, []))
                if exact_quota and load != quota:
                    raise ValueError(f"rank {rank} has {load} tasks, quota {quota}")
                if not exact_quota and load > quota:
                    raise ValueError(f"rank {rank} has {load} tasks, over quota {quota}")


# -- scoring -------------------------------------------------------------------


def local_bytes(assignment: Assignment, graph: LocalityGraph) -> int:
    """Bytes of assigned task inputs co-located with their process."""
    total = 0
    for rank, tasks in assignment.tasks_of.items():
        for t in tasks:
            total += graph.edge_weight(rank, t)
    return total


def locality_fraction(assignment: Assignment, graph: LocalityGraph) -> float:
    """Fraction of all task bytes readable locally under this assignment."""
    total = graph.total_bytes()
    if total == 0:
        return 1.0
    return local_bytes(assignment, graph) / total


def fully_local_tasks(assignment: Assignment, graph: LocalityGraph) -> set[int]:
    """Tasks whose entire input is on the assigned process's node."""
    out = set()
    for rank, tasks in assignment.tasks_of.items():
        for t in tasks:
            if graph.edge_weight(rank, t) == graph.task_bytes(t):
                out.add(t)
    return out


def is_full_matching(assignment: Assignment, graph: LocalityGraph) -> bool:
    """Paper's "full matching": all needed data assigned to co-located processes."""
    return local_bytes(assignment, graph) == graph.total_bytes()


def load_in_tasks(assignment: Assignment) -> dict[int, int]:
    """Per-process task counts."""
    return {rank: len(ts) for rank, ts in assignment.tasks_of.items()}


def load_in_bytes(assignment: Assignment, graph: LocalityGraph) -> dict[int, int]:
    """Per-process assigned input bytes."""
    return {
        rank: sum(graph.task_bytes(t) for t in ts)
        for rank, ts in assignment.tasks_of.items()
    }
