"""Max-flow solvers (Ford–Fulkerson family), implemented from scratch.

The paper "employ[s] the standard max-flow algorithm, Ford-Fulkerson, to
compute the largest flow from s to t", relying on the cancellation property
of flow-augmenting paths.  We provide two implementations over the same
adjacency structure:

* :func:`edmonds_karp` — BFS-augmenting Ford–Fulkerson, O(V·E²): the
  textbook algorithm the paper cites;
* :func:`dinic` — level-graph blocking flows, O(V²·E) generally and
  O(E·√V) on unit-capacity bipartite networks: the production choice.

Capacities are integers, so the integral-flow theorem guarantees integral
optimal flows — which is what makes flow-based task assignment well defined.
``networkx`` is used only in the test suite as an independent oracle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class _Edge:
    """Half of an edge pair; ``cap`` is the residual capacity."""

    to: int
    cap: int
    rev: int  # index of the reverse edge in graph.adj[to]
    original_cap: int


@dataclass
class FlowNetwork:
    """A directed graph with integer capacities and residual bookkeeping."""

    num_vertices: int
    adj: list[list[_Edge]] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.adj = [[] for _ in range(self.num_vertices)]

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ValueError(f"vertex {v} out of range [0, {self.num_vertices})")

    def add_edge(self, u: int, v: int, capacity: int) -> tuple[int, int]:
        """Add edge u→v; returns ``(u, index)`` handle for flow queries."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not isinstance(capacity, int):
            raise TypeError("capacities must be integers (integral-flow theorem)")
        fwd = _Edge(to=v, cap=capacity, rev=len(self.adj[v]), original_cap=capacity)
        bwd = _Edge(to=u, cap=0, rev=len(self.adj[u]), original_cap=0)
        self.adj[u].append(fwd)
        self.adj[v].append(bwd)
        return (u, len(self.adj[u]) - 1)

    def flow_on(self, handle: tuple[int, int]) -> int:
        """Flow currently routed through the edge identified by ``handle``."""
        u, idx = handle
        edge = self.adj[u][idx]
        return edge.original_cap - edge.cap

    def reset(self) -> None:
        """Zero all flow (restore residual capacities)."""
        for edges in self.adj:
            for e in edges:
                e.cap = e.original_cap

    # -- Edmonds–Karp ---------------------------------------------------------

    def edmonds_karp(self, source: int, sink: int) -> int:
        """Max flow via shortest augmenting paths (BFS)."""
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        flow = 0
        while True:
            parent: list[tuple[int, int] | None] = [None] * self.num_vertices
            parent[source] = (source, -1)
            queue = deque([source])
            while queue and parent[sink] is None:
                u = queue.popleft()
                for idx, e in enumerate(self.adj[u]):
                    if e.cap > 0 and parent[e.to] is None:
                        parent[e.to] = (u, idx)
                        queue.append(e.to)
            if parent[sink] is None:
                return flow
            # Find bottleneck along the path.
            bottleneck = None
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                cap = self.adj[u][idx].cap
                bottleneck = cap if bottleneck is None else min(bottleneck, cap)
                v = u
            assert bottleneck is not None and bottleneck > 0
            # Augment (this is the paper's cancellation mechanism: pushing on
            # a reverse edge cancels a previous assignment).
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                edge = self.adj[u][idx]
                edge.cap -= bottleneck
                self.adj[v][edge.rev].cap += bottleneck
                v = u
            flow += bottleneck

    # -- Dinic ---------------------------------------------------------------

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        level = [-1] * self.num_vertices
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.adj[u]:
                if e.cap > 0 and level[e.to] < 0:
                    level[e.to] = level[u] + 1
                    queue.append(e.to)
        return level if level[sink] >= 0 else None

    def _dfs_blocking(
        self, u: int, sink: int, pushed: int, level: list[int], it: list[int]
    ) -> int:
        if u == sink:
            return pushed
        while it[u] < len(self.adj[u]):
            e = self.adj[u][it[u]]
            if e.cap > 0 and level[e.to] == level[u] + 1:
                d = self._dfs_blocking(e.to, sink, min(pushed, e.cap), level, it)
                if d > 0:
                    e.cap -= d
                    self.adj[e.to][e.rev].cap += d
                    return d
            it[u] += 1
        return 0

    def dinic(self, source: int, sink: int) -> int:
        """Max flow via Dinic's level-graph blocking flows."""
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        flow = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return flow
            it = [0] * self.num_vertices
            while True:
                pushed = self._dfs_blocking(source, sink, _INF, level, it)
                if pushed == 0:
                    break
                flow += pushed

    def max_flow(self, source: int, sink: int, *, algorithm: str = "dinic") -> int:
        """Dispatch to a solver by name ('dinic' or 'edmonds_karp')."""
        if algorithm == "dinic":
            return self.dinic(source, sink)
        if algorithm == "edmonds_karp":
            return self.edmonds_karp(source, sink)
        raise ValueError(f"unknown max-flow algorithm {algorithm!r}")

    # -- Min cut ----------------------------------------------------------------

    def min_cut_reachable(self, source: int) -> set[int]:
        """Vertices reachable from ``source`` in the residual graph.

        Valid after a max-flow computation; the (reachable, unreachable)
        partition is a minimum s-t cut.
        """
        self._check_vertex(source)
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.adj[u]:
                if e.cap > 0 and e.to not in seen:
                    seen.add(e.to)
                    queue.append(e.to)
        return seen


_INF = 1 << 62
