"""Max-flow solvers (Ford–Fulkerson family), implemented from scratch.

The paper "employ[s] the standard max-flow algorithm, Ford-Fulkerson, to
compute the largest flow from s to t", relying on the cancellation property
of flow-augmenting paths.  We provide two implementations over the same
adjacency structure:

* :func:`edmonds_karp` — BFS-augmenting Ford–Fulkerson, O(V·E²): the
  textbook algorithm the paper cites;
* :func:`dinic` — level-graph blocking flows, O(V²·E) generally and
  O(E·√V) on unit-capacity bipartite networks: the production choice.

Capacities are integers, so the integral-flow theorem guarantees integral
optimal flows — which is what makes flow-based task assignment well defined.
``networkx`` is used only in the test suite as an independent oracle.

Storage is array-backed (PR 5): edges live in flat parallel lists
``_to``/``_cap``/``_orig`` with the usual xor-pairing (edge ``e`` and its
reverse ``e ^ 1``), and per-vertex adjacency holds plain edge ids.  Dinic
runs iteratively with the current-arc optimisation over reusable
level/iterator scratch buffers, replaying the recursive reference
implementation decision-for-decision (same edge scan order, same
iterator-advance rule on dead ends, same restart-from-source after every
augmentation) so augmenting paths — and therefore flows on every handle —
are bit-for-bit unchanged.  ``adj`` remains available as a read-only view
for tests and debugging.

On graphs with at least :data:`VECTOR_MIN_VERTICES` vertices, Dinic's
level BFS runs as a frontier-synchronous numpy kernel over a lazily
built CSR mirror of the adjacency.  BFS levels are exact shortest
distances, independent of queue order, so the kernel's levels — and
therefore every downstream DFS decision — match the scalar FIFO BFS
exactly.
"""

from __future__ import annotations

import operator
from collections import deque

import numpy as np

from .perf import SchedPerf

#: Vertex count at and above which Dinic's level BFS runs on the numpy
#: frontier kernel.  Below it the Python BFS wins (the arrays' fixed
#: setup cost outweighs the per-edge savings on small graphs).
VECTOR_MIN_VERTICES = 512


class _EdgeView:
    """Read-only view of one directed edge (for ``adj`` compatibility)."""

    __slots__ = ("_net", "_eid")

    def __init__(self, net: "FlowNetwork", eid: int) -> None:
        self._net = net
        self._eid = eid

    @property
    def to(self) -> int:
        return self._net._to[self._eid]

    @property
    def cap(self) -> int:
        return self._net._cap[self._eid]

    @property
    def original_cap(self) -> int:
        return self._net._orig[self._eid]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"_EdgeView(to={self.to}, cap={self.cap}, "
            f"original_cap={self.original_cap})"
        )


class FlowNetwork:
    """A directed graph with integer capacities and residual bookkeeping."""

    __slots__ = (
        "num_vertices",
        "_to",
        "_cap",
        "_orig",
        "_adj",
        "_level",
        "_it",
        "_virgin",
        "_virgin_levels",
        "_virgin_solves",
        "_csr_ptr",
        "_csr_eids",
        "_to_np",
        "_orig_np",
    )

    def __init__(self, num_vertices: int) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = num_vertices
        self._to: list[int] = []
        self._cap: list[int] = []
        self._orig: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(num_vertices)]
        # Scratch buffers reused across solves (allocated once per network).
        self._level: list[int] = []
        self._it: list[int] = []
        # True while every residual capacity equals its original value; the
        # first BFS of a solve on a virgin network is a pure function of
        # the topology, so its levels are memoised per (source, sink).
        self._virgin = True
        self._virgin_levels: dict[tuple[int, int], list[int]] = {}
        # Full solve memo: the solvers are deterministic, so a solve that
        # starts from the virgin state always ends with the same residual
        # capacities and flow value.  max_flow() records that end state per
        # (source, sink, algorithm) and replays it on repeat solves after a
        # reset() — bit-identical to re-running the solver.
        self._virgin_solves: dict[tuple[int, int, str], tuple[list[int], int]] = {}
        # CSR mirror of the adjacency (built lazily, invalidated by edge
        # adds) for the numpy frontier BFS on large graphs.
        self._csr_ptr: "np.ndarray | None" = None
        self._csr_eids: "np.ndarray | None" = None
        self._to_np: "np.ndarray | None" = None
        # Original capacities as numpy (rebuilt when edge adds grow _orig).
        self._orig_np: "np.ndarray | None" = None

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ValueError(f"vertex {v} out of range [0, {self.num_vertices})")

    def add_edge(self, u: int, v: int, capacity: int) -> tuple[int, int]:
        """Add edge u→v; returns ``(u, index)`` handle for flow queries."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not isinstance(capacity, int):
            raise TypeError("capacities must be integers (integral-flow theorem)")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._orig.append(capacity)
        self._to.append(u)
        self._cap.append(0)
        self._orig.append(0)
        self._adj[u].append(eid)
        self._adj[v].append(eid + 1)
        self._virgin_levels.clear()
        self._virgin_solves.clear()
        self._csr_ptr = None
        return (u, len(self._adj[u]) - 1)

    def add_edges(
        self, edges: list[tuple[int, int, int]]
    ) -> list[tuple[int, int]]:
        """Bulk-append trusted ``(u, v, capacity)`` edges.

        Semantically identical to calling :meth:`add_edge` per element —
        same edge ids, same handles, in input order — but the per-edge
        validation is elided, so callers must pass in-range vertices and
        non-negative integer capacities (the network builders do, straight
        from a validated CSR).
        """
        to, cap, orig, adj = self._to, self._cap, self._orig, self._adj
        handles: list[tuple[int, int]] = []
        append_handle = handles.append
        eid = len(to)
        for u, v, capacity in edges:
            row = adj[u]
            append_handle((u, len(row)))
            row.append(eid)
            to.append(v)
            cap.append(capacity)
            orig.append(capacity)
            adj[v].append(eid + 1)
            to.append(u)
            cap.append(0)
            orig.append(0)
            eid += 2
        self._virgin_levels.clear()
        self._virgin_solves.clear()
        self._csr_ptr = None
        return handles

    @property
    def adj(self) -> list[list[_EdgeView]]:
        """Per-vertex edge views (read-only; for tests and debugging)."""
        return [[_EdgeView(self, eid) for eid in row] for row in self._adj]

    def _edge_id(self, handle: tuple[int, int]) -> int:
        u, idx = handle
        return self._adj[u][idx]

    def edge_to(self, handle: tuple[int, int]) -> int:
        """Head vertex of the edge identified by ``handle``."""
        return self._to[self._edge_id(handle)]

    def flow_on(self, handle: tuple[int, int]) -> int:
        """Flow currently routed through the edge identified by ``handle``."""
        eid = self._edge_id(handle)
        return self._orig[eid] - self._cap[eid]

    def flows_on(self, handles: list[tuple[int, int]]) -> list[int]:
        """Per-handle flows, in order (bulk :meth:`flow_on`)."""
        adj, cap, orig = self._adj, self._cap, self._orig
        out = []
        append = out.append
        for u, idx in handles:
            eid = adj[u][idx]
            append(orig[eid] - cap[eid])
        return out

    def edge_ids(self, handles: list[tuple[int, int]]) -> "np.ndarray":
        """Resolve handles to internal edge ids (for bulk numpy queries).

        Edge ids are stable for the life of the network, so callers that
        query the same handles every solve resolve them once and reuse
        the array with :meth:`flows_on_eids`.
        """
        adj = self._adj
        return np.fromiter(
            (adj[u][idx] for u, idx in handles), np.int64, len(handles)
        )

    def flows_on_eids(self, eids: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`flows_on` over pre-resolved edge ids."""
        orig = self._orig_np
        if orig is None or len(orig) != len(self._orig):
            orig = self._orig_np = np.array(self._orig, dtype=np.int64)
        cap = np.array(self._cap, dtype=np.int64)
        return orig[eids] - cap[eids]

    def flow_probe(self, handles: list[tuple[int, int]]):
        """Build a reusable bulk-flow query for a fixed handle set.

        Returns a zero-argument callable producing the same int64 array
        as :meth:`flows_on_eids` over these handles' edge ids, but with
        the handle resolution, original capacities, and residual-list
        selector all precomputed — the per-call work is one C-speed
        gather of the residuals.  Valid until edges are added (the
        residual list object itself is never rebound, only mutated).
        """
        eids = self.edge_ids(handles)
        if len(eids) == 0:
            empty = np.zeros(0, np.int64)
            return lambda: empty.copy()
        orig_sel = np.array([self._orig[e] for e in eids], dtype=np.int64)
        cap = self._cap
        if len(eids) == 1:
            e = int(eids[0])
            return lambda: orig_sel - cap[e]
        getter = operator.itemgetter(*eids.tolist())
        return lambda: orig_sel - np.array(getter(cap), dtype=np.int64)

    def reset(self) -> None:
        """Zero all flow (restore residual capacities)."""
        self._cap[:] = self._orig
        self._virgin = True

    # -- Edmonds–Karp ---------------------------------------------------------

    def edmonds_karp(
        self, source: int, sink: int, *, perf: SchedPerf | None = None
    ) -> int:
        """Max flow via shortest augmenting paths (BFS)."""
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        adj, to, cap = self._adj, self._to, self._cap
        flow = 0
        while True:
            # parent[v] = edge id used to reach v (-1 unseen, -2 the source).
            parent = [-1] * self.num_vertices
            parent[source] = -2
            queue = deque([source])
            while queue and parent[sink] == -1:
                u = queue.popleft()
                for eid in adj[u]:
                    v = to[eid]
                    if cap[eid] > 0 and parent[v] == -1:
                        parent[v] = eid
                        queue.append(v)
            if parent[sink] == -1:
                return flow
            # Find bottleneck along the path.
            bottleneck = None
            v = sink
            while v != source:
                eid = parent[v]
                c = cap[eid]
                bottleneck = c if bottleneck is None else min(bottleneck, c)
                v = to[eid ^ 1]
            assert bottleneck is not None and bottleneck > 0
            # Augment (this is the paper's cancellation mechanism: pushing on
            # a reverse edge cancels a previous assignment).
            v = sink
            while v != source:
                eid = parent[v]
                cap[eid] -= bottleneck
                cap[eid ^ 1] += bottleneck
                v = to[eid ^ 1]
            flow += bottleneck
            self._virgin = False
            if perf is not None:
                perf.augmentations += 1

    # -- Dinic ---------------------------------------------------------------

    def _ensure_csr(self) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """CSR mirror of the adjacency for the numpy BFS (built lazily).

        ``ptr``/``eids`` are the standard row-pointer/flat-edge-id pair;
        ``to_np`` mirrors ``_to``.  All three are topology-only (residual
        capacities are re-read each BFS), so the mirror stays valid until
        the next edge add.
        """
        ptr = self._csr_ptr
        if ptr is not None:
            return ptr, self._csr_eids, self._to_np
        adj = self._adj
        counts = np.fromiter((len(row) for row in adj), np.int64, len(adj))
        ptr = np.empty(len(adj) + 1, np.int64)
        ptr[0] = 0
        np.cumsum(counts, out=ptr[1:])
        eids = np.fromiter(
            (e for row in adj for e in row), np.int64, int(ptr[-1])
        )
        to_np = np.fromiter(self._to, np.int64, len(self._to))
        self._csr_ptr, self._csr_eids, self._to_np = ptr, eids, to_np
        return ptr, eids, to_np

    def _bfs_levels_vec(
        self, source: int, sink: int, level: list[int]
    ) -> list[int] | None:
        """Frontier-synchronous numpy BFS; levels identical to the FIFO BFS.

        BFS levels are exact shortest-path distances in the admissible
        (positive-residual) graph, and shortest distances do not depend on
        the order vertices leave the queue — so expanding the whole
        frontier at once assigns every vertex the same level the scalar
        FIFO loop would.
        """
        ptr, eids, to_np = self._ensure_csr()
        cap = np.fromiter(self._cap, np.int64, len(self._cap))
        lvl = np.full(self.num_vertices, -1, np.int64)
        lvl[source] = 0
        frontier = np.array([source], np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            starts = ptr[frontier]
            counts = ptr[frontier + 1] - starts
            total = int(counts.sum())  # opass: reassoc-ok -- int64 sum, exact
            if total == 0:
                break
            # Gather every out-edge of the frontier in one shot: for each
            # frontier vertex f, the slots [offsets, offsets+counts) of
            # ``idx`` walk eids[starts[f] : starts[f]+counts[f]].
            ends = np.cumsum(counts)
            offsets = np.repeat(ends - counts, counts)
            idx = np.arange(total, dtype=np.int64) - offsets
            idx += np.repeat(starts, counts)
            es = eids[idx]
            es = es[cap[es] > 0]
            vs = to_np[es]
            vs = vs[lvl[vs] < 0]
            if vs.size == 0:
                break
            fresh = np.unique(vs)
            lvl[fresh] = depth
            frontier = fresh
        level[:] = lvl.tolist()
        return level if level[sink] >= 0 else None

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        n = self.num_vertices
        level = self._level
        if len(level) != n:
            level = self._level = [-1] * n
        if n >= VECTOR_MIN_VERTICES:
            return self._bfs_levels_vec(source, sink, level)
        # Slice-assignment resets at C speed (vs a Python loop).
        level[:] = [-1] * n
        level[source] = 0
        adj, to, cap = self._adj, self._to, self._cap
        queue = deque([source])
        pop = queue.popleft
        push = queue.append
        while queue:
            u = pop()
            lu = level[u] + 1
            for eid in adj[u]:
                v = to[eid]
                if cap[eid] > 0 and level[v] < 0:
                    level[v] = lu
                    push(v)
        return level if level[sink] >= 0 else None

    def _first_phase_levels(self, source: int, sink: int) -> list[int] | None:
        """Levels for a solve's first BFS, memoised while the network is
        virgin (all residual capacities at their original values): they
        are a pure function of the topology, so repeated reset()+solve
        cycles on a reused network skip the pass entirely."""
        if not self._virgin:
            return self._bfs_levels(source, sink)
        memo = self._virgin_levels
        key = (source, sink)
        if key in memo:
            return memo[key]
        level = self._bfs_levels(source, sink)
        memo[key] = None if level is None else level.copy()
        return memo[key]

    def dinic(
        self, source: int, sink: int, *, perf: SchedPerf | None = None
    ) -> int:
        """Max flow via Dinic's level-graph blocking flows (iterative).

        Replays the recursive formulation exactly: a persistent per-vertex
        current-arc iterator, advanced when an edge is inadmissible or its
        subtree is exhausted, left untouched on the vertices of a found
        path; after every augmentation the search restarts from the source
        with the iterators intact.
        """
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        adj, to, cap = self._adj, self._to, self._cap
        it = self._it
        if len(it) != self.num_vertices:
            it = self._it = [0] * self.num_vertices
        flow = 0
        phases = 0
        augmentations = 0
        while True:
            # The first phase's BFS sees the virgin capacities, so its
            # levels come from the per-(source, sink) memo; once flow is
            # pushed _virgin drops and later phases BFS normally.
            level = self._first_phase_levels(source, sink)
            phases += 1
            if level is None:
                if perf is not None:
                    perf.bfs_phases += phases
                    perf.augmentations += augmentations
                return flow
            it[:] = [0] * self.num_vertices
            stack = [source]
            while stack:
                u = stack[-1]
                row = adj[u]
                deg = len(row)
                iu = it[u]
                target = level[u] + 1
                while iu < deg:
                    eid = row[iu]
                    if cap[eid] > 0 and level[to[eid]] == target:
                        break
                    iu += 1
                it[u] = iu
                if iu == deg:
                    # Subtree exhausted: back out and advance the parent's
                    # current arc (the recursive child returning 0).
                    stack.pop()
                    if stack:
                        it[stack[-1]] += 1
                    continue
                v = to[row[iu]]
                if v != sink:
                    stack.append(v)
                    continue
                # Augmenting path found: its edges are adj[w][it[w]], one per
                # stacked vertex, in path order (the last is row[iu]).
                path_eids = [adj[w][it[w]] for w in stack]
                bottleneck = min(cap[e] for e in path_eids)
                for e in path_eids:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                flow += bottleneck
                augmentations += 1
                self._virgin = False
                # Restart from the source with iterators intact, exactly as
                # the recursion unwinds after a positive push.
                stack = [source]

    def max_flow(
        self,
        source: int,
        sink: int,
        *,
        algorithm: str = "dinic",
        perf: SchedPerf | None = None,
    ) -> int:
        """Dispatch to a solver by name ('dinic' or 'edmonds_karp').

        Solves from the virgin state (fresh network, or reused after
        :meth:`reset`) are memoised: the solvers are deterministic, so the
        first virgin solve's final residual capacities and flow value are
        recorded per (source, sink, algorithm) and replayed on repeats —
        the residual state and every per-handle flow come out bit-for-bit
        identical to re-running the solver.
        """
        if algorithm not in ("dinic", "edmonds_karp"):
            raise ValueError(f"unknown max-flow algorithm {algorithm!r}")
        virgin_at_start = self._virgin
        if virgin_at_start:
            memo = self._virgin_solves.get((source, sink, algorithm))
            if memo is not None:
                caps, flow = memo
                self._cap[:] = caps
                self._virgin = flow == 0
                if perf is not None:
                    perf.solve_replays += 1
                return flow
        if algorithm == "dinic":
            flow = self.dinic(source, sink, perf=perf)
        else:
            flow = self.edmonds_karp(source, sink, perf=perf)
        if virgin_at_start:
            self._virgin_solves[(source, sink, algorithm)] = (
                self._cap.copy(),
                flow,
            )
        return flow

    # -- Min cut ----------------------------------------------------------------

    def min_cut_reachable(self, source: int) -> set[int]:
        """Vertices reachable from ``source`` in the residual graph.

        Valid after a max-flow computation; the (reachable, unreachable)
        partition is a minimum s-t cut.
        """
        self._check_vertex(source)
        adj, to, cap = self._adj, self._to, self._cap
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for eid in adj[u]:
                v = to[eid]
                if cap[eid] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen


_INF = 1 << 62
