"""Flat CSR storage for the process↔task locality graph.

At the 1k-node / 10k-task scales the ROADMAP targets, the original
dict-of-dict locality graph (``colocated[rank][task] → bytes``) pays a
per-edge price in hashing, pointer chasing and allocation, and every
``edges_of_process`` call copies a whole row.  :class:`LocalityCSR`
stores the same bipartite graph as six flat integer lists — a compressed
sparse row form for each side:

* ``proc_ptr``/``proc_task``/``proc_weight`` — for process ``rank``, the
  half-open slice ``proc_ptr[rank]:proc_ptr[rank+1]`` lists its tasks
  and co-located byte weights;
* ``task_ptr``/``task_rank``/``task_weight`` — the transpose, for task
  ``task_id``.

Row order is load-bearing: the dict-based builder inserted each rank's
tasks in ascending task id (tasks are scanned ``0..n-1``), and the
matching network builders iterate rows in that insertion order, so the
CSR builder emits rows ascending by task id to reproduce the original
edge order — and therefore the original solver outputs — byte for byte.
:func:`csr_from_rows` preserves whatever row order its caller provides
for the same reason (dict-constructed graphs keep dict insertion order).

Built in one pass over the NameNode layout snapshot by
:func:`build_csr`; consumed by :mod:`repro.core.bipartite` (which keeps
the lazy dict mirrors for compatibility) and the matching kernels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: bipartite imports this module at runtime
    from ..dfs.chunk import ChunkId
    from .bipartite import ProcessPlacement
    from .tasks import Task


class LocalityCSR:
    """Both CSR half-views of the bipartite locality graph."""

    __slots__ = (
        "num_processes",
        "num_tasks",
        "proc_ptr",
        "proc_task",
        "proc_weight",
        "task_ptr",
        "task_rank",
        "task_weight",
    )

    def __init__(
        self,
        num_processes: int,
        num_tasks: int,
        proc_ptr: list[int],
        proc_task: list[int],
        proc_weight: list[int],
        task_ptr: list[int],
        task_rank: list[int],
        task_weight: list[int],
    ) -> None:
        self.num_processes = num_processes
        self.num_tasks = num_tasks
        self.proc_ptr = proc_ptr
        self.proc_task = proc_task
        self.proc_weight = proc_weight
        self.task_ptr = task_ptr
        self.task_rank = task_rank
        self.task_weight = task_weight

    @property
    def num_edges(self) -> int:
        return len(self.proc_task)

    def proc_slice(self, rank: int) -> tuple[int, int]:
        """Bounds of ``rank``'s row in ``proc_task``/``proc_weight``."""
        return self.proc_ptr[rank], self.proc_ptr[rank + 1]

    def task_slice(self, task_id: int) -> tuple[int, int]:
        """Bounds of ``task_id``'s row in ``task_rank``/``task_weight``."""
        return self.task_ptr[task_id], self.task_ptr[task_id + 1]

    def proc_row(self, rank: int) -> tuple[list[int], list[int]]:
        """Copies of one process row (task ids, weights) — test/debug aid."""
        lo, hi = self.proc_slice(rank)
        return self.proc_task[lo:hi], self.proc_weight[lo:hi]

    def task_row(self, task_id: int) -> tuple[list[int], list[int]]:
        """Copies of one task row (ranks, weights) — test/debug aid."""
        lo, hi = self.task_slice(task_id)
        return self.task_rank[lo:hi], self.task_weight[lo:hi]


def build_csr(
    tasks: list[Task],
    locations: dict[ChunkId, tuple[int, ...]],
    sizes: dict[ChunkId, int],
    placement: ProcessPlacement,
) -> LocalityCSR:
    """One-pass CSR construction from raw layout metadata.

    Scans the tasks once, in id order; for every input chunk replica on a
    process's node the (process, task) weight grows by the chunk size.
    Both CSR sides are filled during the same scan: the task side row is
    emitted directly (ranks ascending, matching the dict builder's
    ``sorted(seen_ranks)``), the process side accumulates per-rank rows
    that end up ascending by task id automatically.
    """
    ids = [t.task_id for t in tasks]
    if ids != list(range(len(tasks))):
        raise ValueError("task ids must be 0..n-1 in order")
    m = placement.num_processes
    n = len(tasks)
    ranks_on = placement.ranks_on_node()

    proc_rows_task: list[list[int]] = [[] for _ in range(m)]
    proc_rows_weight: list[list[int]] = [[] for _ in range(m)]
    task_ptr = [0] * (n + 1)
    task_rank: list[int] = []
    task_weight: list[int] = []

    empty: tuple[int, ...] = ()
    for task in tasks:
        acc: dict[int, int] = {}
        for cid in task.inputs:
            if cid not in locations:
                raise KeyError(f"no layout for chunk {cid}")
            if cid not in sizes:
                raise KeyError(f"no size for chunk {cid}")
            size = sizes[cid]
            for node in locations[cid]:
                for rank in ranks_on.get(node, empty):
                    acc[rank] = acc.get(rank, 0) + size
        tid = task.task_id
        for rank in sorted(acc):
            weight = acc[rank]
            task_rank.append(rank)
            task_weight.append(weight)
            proc_rows_task[rank].append(tid)
            proc_rows_weight[rank].append(weight)
        task_ptr[tid + 1] = len(task_rank)

    proc_ptr = [0] * (m + 1)
    for rank in range(m):
        proc_ptr[rank + 1] = proc_ptr[rank] + len(proc_rows_task[rank])
    proc_task: list[int] = []
    proc_weight: list[int] = []
    for rank in range(m):
        proc_task.extend(proc_rows_task[rank])
        proc_weight.extend(proc_rows_weight[rank])

    return LocalityCSR(
        num_processes=m,
        num_tasks=n,
        proc_ptr=proc_ptr,
        proc_task=proc_task,
        proc_weight=proc_weight,
        task_ptr=task_ptr,
        task_rank=task_rank,
        task_weight=task_weight,
    )


def csr_from_rows(
    num_processes: int,
    num_tasks: int,
    colocated: dict[int, dict[int, int]],
    task_ranks: dict[int, list[int]],
) -> LocalityCSR:
    """CSR form of a dict-of-dict graph, preserving row order exactly.

    Used for graphs constructed directly from dicts (the incremental
    rematcher's sub-graphs, hand-built test graphs).  Process rows keep
    the source dict's insertion order — the order ``edges_of_process``
    exposed and the network builders consumed — so solver outputs are
    unchanged.
    """
    proc_ptr = [0] * (num_processes + 1)
    proc_task: list[int] = []
    proc_weight: list[int] = []
    empty_row: dict[int, int] = {}
    for rank in range(num_processes):
        row = colocated.get(rank, empty_row)
        for task_id, weight in row.items():
            proc_task.append(task_id)
            proc_weight.append(weight)
        proc_ptr[rank + 1] = len(proc_task)

    task_ptr = [0] * (num_tasks + 1)
    task_rank: list[int] = []
    task_weight: list[int] = []
    empty_ranks: list[int] = []
    for task_id in range(num_tasks):
        for rank in task_ranks.get(task_id, empty_ranks):
            task_rank.append(rank)
            task_weight.append(colocated[rank][task_id])
        task_ptr[task_id + 1] = len(task_rank)

    return LocalityCSR(
        num_processes=num_processes,
        num_tasks=num_tasks,
        proc_ptr=proc_ptr,
        proc_task=proc_task,
        proc_weight=proc_weight,
        task_ptr=task_ptr,
        task_rank=task_rank,
        task_weight=task_weight,
    )
