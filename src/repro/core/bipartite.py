"""The process↔task locality graph (paper §IV-A, Figure 4).

Opass "retrieve[s] data distribution information from storage and build[s]
the locality relationship between processes and chunk files" as a bipartite
graph G = (P, F, E): an edge connects process ``p_i`` and task ``f_j`` iff
some of ``f_j``'s data is co-located with ``p_i``, with capacity equal to the
co-located byte count.

The graph is built purely from NameNode metadata
(:meth:`repro.dfs.DistributedFileSystem.layout_snapshot`), which is all Opass
is allowed to read — it "does not modify the design of HDFS".

Since PR 5 the edge set lives in a flat CSR (:mod:`repro.core.csr`) built
in one pass over the snapshot; the dict views (``colocated``,
``task_ranks``, ``edges_of_process``) are materialised lazily for
compatibility and expose exactly the rows the dict-based builder produced.
:func:`graph_from_filesystem` additionally memoises snapshot→graph builds
in a small LRU keyed by a cheap layout content token, so repeated
experiments over an unchanged cluster skip the rebuild entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..dfs.chunk import ChunkId
from ..dfs.filesystem import DistributedFileSystem
from .perf import SchedPerf, wall_clock
from .tasks import Task


@dataclass(frozen=True, slots=True)
class ProcessPlacement:
    """Where each parallel process (MPI rank) runs: rank → node id."""

    nodes: tuple[int, ...]  # nodes[rank] = node id

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("need at least one process")
        if any(n < 0 for n in self.nodes):
            raise ValueError("node ids must be non-negative")

    @classmethod
    def one_per_node(cls, num_nodes: int) -> "ProcessPlacement":
        """The paper's usual deployment: rank i on node i."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return cls(tuple(range(num_nodes)))

    @classmethod
    def k_per_node(cls, num_nodes: int, k: int) -> "ProcessPlacement":
        """k ranks on every node (block placement: ranks i*k..i*k+k-1 on node i)."""
        if num_nodes <= 0 or k <= 0:
            raise ValueError("num_nodes and k must be positive")
        return cls(tuple(i for i in range(num_nodes) for _ in range(k)))

    @property
    def num_processes(self) -> int:
        return len(self.nodes)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < len(self.nodes):
            raise KeyError(f"no rank {rank}")
        return self.nodes[rank]

    def ranks_on_node(self) -> dict[int, list[int]]:
        by_node: dict[int, list[int]] = {}
        for rank, node in enumerate(self.nodes):
            by_node.setdefault(node, []).append(rank)
        return by_node


class LocalityGraph:
    """Bipartite process↔task graph with co-located-bytes edge weights.

    The canonical storage is the CSR (:attr:`csr`); the historical dict
    views are materialised on first access and cached.  Constructible
    either from a CSR (the fast path used by :func:`build_locality_graph`)
    or from the original ``colocated``/``task_ranks`` dicts (sub-graphs,
    hand-built tests) — the two forms are interchangeable.
    """

    __slots__ = (
        "placement",
        "tasks",
        "sizes",
        "_csr",
        "_colocated",
        "_task_ranks",
        "_weight_maps",
        "_task_bytes",
        "_scratch",
    )

    def __init__(
        self,
        placement: ProcessPlacement,
        tasks: list[Task],
        sizes: dict[ChunkId, int],
        colocated: dict[int, dict[int, int]] | None = None,
        task_ranks: dict[int, list[int]] | None = None,
        csr: "LocalityCSR | None" = None,
    ) -> None:
        self.placement = placement
        self.tasks = tasks
        self.sizes = sizes
        self._csr = csr
        if csr is None and colocated is None and task_ranks is None:
            colocated, task_ranks = {}, {}
        self._colocated = colocated
        self._task_ranks = task_ranks
        self._weight_maps: list[dict[int, int]] | None = None
        self._task_bytes: list[int] | None = None
        self._scratch: dict[object, object] | None = None

    # -- representations ------------------------------------------------------

    @property
    def csr(self) -> "LocalityCSR":
        """The flat CSR form (built lazily for dict-constructed graphs)."""
        if self._csr is None:
            from .csr import csr_from_rows

            self._csr = csr_from_rows(
                self.num_processes,
                self.num_tasks,
                self._colocated if self._colocated is not None else {},
                self._task_ranks if self._task_ranks is not None else {},
            )
        return self._csr

    @property
    def colocated(self) -> dict[int, dict[int, int]]:
        """colocated[rank][task_id] = bytes of the task's inputs on rank's node."""
        if self._colocated is None:
            csr = self.csr
            ptr, tasks_, weights = csr.proc_ptr, csr.proc_task, csr.proc_weight
            mirror: dict[int, dict[int, int]] = {}
            for rank in range(csr.num_processes):
                row: dict[int, int] = {}
                for j in range(ptr[rank], ptr[rank + 1]):
                    row[tasks_[j]] = weights[j]
                mirror[rank] = row
            self._colocated = mirror
        return self._colocated

    @property
    def task_ranks(self) -> dict[int, list[int]]:
        """task_ranks[task_id] = ranks with an edge to the task (sorted)."""
        if self._task_ranks is None:
            csr = self.csr
            ptr, ranks = csr.task_ptr, csr.task_rank
            self._task_ranks = {
                t: ranks[ptr[t] : ptr[t + 1]] for t in range(csr.num_tasks)
            }
        return self._task_ranks

    @property
    def scratch(self) -> dict[object, object]:
        """Per-graph memo for solver-derived structures (flow networks).

        The graph's edge data is immutable after construction, so anything
        deterministically derived from it — e.g. the single-data flow
        network for a given quota vector — can be cached here and reused
        (after a :meth:`~repro.core.flownetwork.FlowNetwork.reset`) instead
        of being rebuilt on every solve.  Keys are namespaced tuples chosen
        by the solver module that owns the entry.
        """
        if self._scratch is None:
            self._scratch = {}
        return self._scratch

    # -- sizes -----------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return self.placement.num_processes

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        if self._csr is not None:
            return self._csr.num_edges
        colocated = self._colocated if self._colocated is not None else {}
        return sum(len(d) for d in colocated.values())

    # -- queries ---------------------------------------------------------------

    def edge_weight(self, rank: int, task_id: int) -> int:
        """Co-located bytes between a process and a task (0 if no edge)."""
        maps = self._weight_maps
        if maps is None:
            csr = self.csr
            ptr, tasks_, weights = csr.proc_ptr, csr.proc_task, csr.proc_weight
            maps = []
            for r in range(csr.num_processes):
                row: dict[int, int] = {}
                for j in range(ptr[r], ptr[r + 1]):
                    row[tasks_[j]] = weights[j]
                maps.append(row)
            self._weight_maps = maps
        if not 0 <= rank < len(maps):
            return 0
        return maps[rank].get(task_id, 0)

    def edges_of_process(self, rank: int) -> dict[int, int]:
        """task_id → co-located bytes for one process."""
        csr = self.csr
        lo, hi = csr.proc_ptr[rank], csr.proc_ptr[rank + 1]
        tasks_, weights = csr.proc_task, csr.proc_weight
        return {tasks_[j]: weights[j] for j in range(lo, hi)}

    def ranks_of_task(self, task_id: int) -> list[int]:
        csr = self.csr
        if not 0 <= task_id < csr.num_tasks:
            return []
        lo, hi = csr.task_ptr[task_id], csr.task_ptr[task_id + 1]
        return csr.task_rank[lo:hi]

    def task_bytes(self, task_id: int) -> int:
        cached = self._task_bytes
        if cached is None:
            sizes = self.sizes
            cached = [
                sum(sizes[cid] for cid in t.inputs) for t in self.tasks
            ]
            self._task_bytes = cached
        return cached[task_id]

    def total_bytes(self) -> int:
        return sum(self.task_bytes(t.task_id) for t in self.tasks)

    def local_bytes_of_process(self, rank: int) -> int:
        """d(p_i): total bytes stored on rank's node among all task inputs."""
        csr = self.csr
        lo, hi = csr.proc_ptr[rank], csr.proc_ptr[rank + 1]
        weights = csr.proc_weight
        return sum(weights[j] for j in range(lo, hi))


def build_locality_graph(
    tasks: list[Task],
    locations: dict[ChunkId, tuple[int, ...]],
    sizes: dict[ChunkId, int],
    placement: ProcessPlacement,
    *,
    perf: SchedPerf | None = None,
) -> LocalityGraph:
    """Construct the Figure-4 graph from raw layout metadata.

    For every task input chunk with a replica on a process's node, the
    (process, task) edge weight grows by the chunk size — the "amount of data
    associated with f_j that can be accessed locally by p_i".  One pass over
    the task list fills the CSR directly (see :mod:`repro.core.csr`).
    """
    from .csr import build_csr

    t0 = wall_clock() if perf is not None else 0.0
    csr = build_csr(tasks, locations, sizes, placement)
    graph = LocalityGraph(
        placement=placement,
        tasks=list(tasks),
        sizes=dict(sizes),
        csr=csr,
    )
    if perf is not None:
        perf.graph_builds += 1
        perf.graph_edges += csr.num_edges
        perf.graph_build_wall += wall_clock() - t0
    return graph


#: snapshot→graph memo for :func:`graph_from_filesystem`, LRU-evicted.
#: Keys combine the layout content token with the placement and the task
#: count; the (potentially long) task list itself is kept out of the key —
#: hashing 10k frozen dataclasses would cost more than the rebuild saves —
#: and is instead equality-verified on lookup (cheap: list compare
#: short-circuits on element identity).  In-memory only; cached graphs
#: are shared, which is safe because matching kernels are pure readers
#: (OPS103).
_GRAPH_CACHE: OrderedDict[tuple[int, tuple[int, ...], int], LocalityGraph] = (
    OrderedDict()
)

#: Maximum cached graphs; a handful covers the repeated-experiment loop
#: shapes in the benchmarks while bounding memory.
GRAPH_CACHE_CAPACITY = 8

_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_graph_cache() -> None:
    """Drop every cached snapshot→graph entry and zero the stats."""
    _GRAPH_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def graph_cache_stats() -> dict[str, int]:
    """Current cache occupancy and hit/miss counters."""
    return {
        "entries": len(_GRAPH_CACHE),
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
    }


def graph_from_filesystem(
    fs: DistributedFileSystem,
    tasks: list[Task],
    placement: ProcessPlacement,
    *,
    perf: SchedPerf | None = None,
    cache: bool = True,
) -> LocalityGraph:
    """Build the locality graph straight from a live file system's NameNode.

    Repeated calls with an unchanged layout, task list and placement return
    the cached graph instead of rebuilding.  The cache key uses the
    NameNode's incrementally maintained ``layout_token`` (identical by
    construction to :func:`repro.dfs.snapshot.layout_token` over the
    snapshot), so a hit costs O(1) — no snapshot copy, no map rescan.
    Pass ``cache=False`` to force a fresh build.
    """
    if cache:
        key = (fs.layout_token, placement.nodes, len(tasks))
        # List equality short-circuits on element identity (the common
        # case: callers re-pass the same Task objects every round), so
        # this verify costs microseconds, not a 10k-dataclass compare.
        hit = _GRAPH_CACHE.get(key)
        if hit is not None and hit.tasks == tasks:
            _GRAPH_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            if perf is not None:
                perf.cache_hits += 1
            return hit
        _CACHE_STATS["misses"] += 1
        if perf is not None:
            perf.cache_misses += 1
    locations = fs.layout_snapshot()
    sizes = {cid: fs.chunk(cid).size for t in tasks for cid in t.inputs}
    graph = build_locality_graph(tasks, locations, sizes, placement, perf=perf)
    if cache:
        _GRAPH_CACHE[key] = graph
        while len(_GRAPH_CACHE) > GRAPH_CACHE_CAPACITY:
            _GRAPH_CACHE.popitem(last=False)
    return graph
