"""The process↔task locality graph (paper §IV-A, Figure 4).

Opass "retrieve[s] data distribution information from storage and build[s]
the locality relationship between processes and chunk files" as a bipartite
graph G = (P, F, E): an edge connects process ``p_i`` and task ``f_j`` iff
some of ``f_j``'s data is co-located with ``p_i``, with capacity equal to the
co-located byte count.

The graph is built purely from NameNode metadata
(:meth:`repro.dfs.DistributedFileSystem.layout_snapshot`), which is all Opass
is allowed to read — it "does not modify the design of HDFS".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfs.chunk import ChunkId
from ..dfs.filesystem import DistributedFileSystem
from .tasks import Task


@dataclass(frozen=True, slots=True)
class ProcessPlacement:
    """Where each parallel process (MPI rank) runs: rank → node id."""

    nodes: tuple[int, ...]  # nodes[rank] = node id

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("need at least one process")
        if any(n < 0 for n in self.nodes):
            raise ValueError("node ids must be non-negative")

    @classmethod
    def one_per_node(cls, num_nodes: int) -> "ProcessPlacement":
        """The paper's usual deployment: rank i on node i."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return cls(tuple(range(num_nodes)))

    @classmethod
    def k_per_node(cls, num_nodes: int, k: int) -> "ProcessPlacement":
        """k ranks on every node (block placement: ranks i*k..i*k+k-1 on node i)."""
        if num_nodes <= 0 or k <= 0:
            raise ValueError("num_nodes and k must be positive")
        return cls(tuple(i for i in range(num_nodes) for _ in range(k)))

    @property
    def num_processes(self) -> int:
        return len(self.nodes)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < len(self.nodes):
            raise KeyError(f"no rank {rank}")
        return self.nodes[rank]

    def ranks_on_node(self) -> dict[int, list[int]]:
        by_node: dict[int, list[int]] = {}
        for rank, node in enumerate(self.nodes):
            by_node.setdefault(node, []).append(rank)
        return by_node


@dataclass
class LocalityGraph:
    """Bipartite process↔task graph with co-located-bytes edge weights."""

    placement: ProcessPlacement
    tasks: list[Task]
    sizes: dict[ChunkId, int]
    #: colocated[rank][task_id] = bytes of the task's inputs on rank's node
    colocated: dict[int, dict[int, int]] = field(default_factory=dict)
    #: task_ranks[task_id] = ranks with an edge to the task (sorted)
    task_ranks: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_processes(self) -> int:
        return self.placement.num_processes

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_edges(self) -> int:
        return sum(len(d) for d in self.colocated.values())

    def edge_weight(self, rank: int, task_id: int) -> int:
        """Co-located bytes between a process and a task (0 if no edge)."""
        return self.colocated.get(rank, {}).get(task_id, 0)

    def edges_of_process(self, rank: int) -> dict[int, int]:
        """task_id → co-located bytes for one process."""
        return dict(self.colocated.get(rank, {}))

    def ranks_of_task(self, task_id: int) -> list[int]:
        return list(self.task_ranks.get(task_id, []))

    def task_bytes(self, task_id: int) -> int:
        return sum(self.sizes[cid] for cid in self.tasks[task_id].inputs)

    def total_bytes(self) -> int:
        return sum(self.task_bytes(t.task_id) for t in self.tasks)

    def local_bytes_of_process(self, rank: int) -> int:
        """d(p_i): total bytes stored on rank's node among all task inputs."""
        return sum(self.colocated.get(rank, {}).values())


def build_locality_graph(
    tasks: list[Task],
    locations: dict[ChunkId, tuple[int, ...]],
    sizes: dict[ChunkId, int],
    placement: ProcessPlacement,
) -> LocalityGraph:
    """Construct the Figure-4 graph from raw layout metadata.

    For every task input chunk with a replica on a process's node, the
    (process, task) edge weight grows by the chunk size — the "amount of data
    associated with f_j that can be accessed locally by p_i".
    """
    ids = [t.task_id for t in tasks]
    if ids != list(range(len(tasks))):
        raise ValueError("task ids must be 0..n-1 in order")
    ranks_on = placement.ranks_on_node()
    colocated: dict[int, dict[int, int]] = {r: {} for r in range(placement.num_processes)}
    task_ranks: dict[int, list[int]] = {}
    for task in tasks:
        seen_ranks: set[int] = set()
        for cid in task.inputs:
            if cid not in locations:
                raise KeyError(f"no layout for chunk {cid}")
            if cid not in sizes:
                raise KeyError(f"no size for chunk {cid}")
            for node in locations[cid]:
                for rank in ranks_on.get(node, ()):
                    bucket = colocated[rank]
                    bucket[task.task_id] = bucket.get(task.task_id, 0) + sizes[cid]
                    seen_ranks.add(rank)
        task_ranks[task.task_id] = sorted(seen_ranks)
    return LocalityGraph(
        placement=placement,
        tasks=list(tasks),
        sizes=dict(sizes),
        colocated=colocated,
        task_ranks=task_ranks,
    )


def graph_from_filesystem(
    fs: DistributedFileSystem,
    tasks: list[Task],
    placement: ProcessPlacement,
) -> LocalityGraph:
    """Build the locality graph straight from a live file system's NameNode."""
    locations = fs.layout_snapshot()
    sizes = {cid: fs.chunk(cid).size for t in tasks for cid in t.inputs}
    return build_locality_graph(tasks, locations, sizes, placement)
