"""Data-processing tasks: the unit of assignment.

The paper "refer[s] to each operator on data partitions as a data processing
task".  A task names its input chunks; single-data tasks (§IV-B) have one
input file, multi-data tasks (§IV-C) have inputs drawn from several datasets
(e.g. human + mouse + chimpanzee gene files).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfs.chunk import ChunkId, Dataset


@dataclass(frozen=True, slots=True)
class Wait:
    """A task source's answer meaning "ask me again in ``seconds``".

    Used by delay-scheduling-style policies that would rather leave a
    worker idle briefly than hand it a remote task.  Lives here (not in
    the runner) because task sources are core-layer objects: the
    scheduling policies that return ``Wait`` must not depend on the
    simulator above them.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("wait must be positive")


@dataclass(frozen=True, slots=True)
class Task:
    """One data-processing operator and the chunks it must read."""

    task_id: int
    inputs: tuple[ChunkId, ...]

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if not self.inputs:
            raise ValueError("a task needs at least one input chunk")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError("duplicate input chunks in task")


def tasks_from_dataset(dataset: Dataset) -> list[Task]:
    """One task per file (the paper's single-data shape: file == chunk)."""
    tasks = []
    for i, meta in enumerate(dataset.files):
        tasks.append(Task(task_id=i, inputs=tuple(c.id for c in meta.chunks)))
    return tasks


def tasks_from_datasets(datasets: list[Dataset]) -> list[Task]:
    """Zip several datasets into multi-input tasks.

    Task ``i`` reads the ``i``-th file of every dataset — the paper's
    gene-comparison shape, where comparing genomes needs one input from each
    species' dataset.  All datasets must have the same number of files.
    """
    if not datasets:
        raise ValueError("need at least one dataset")
    counts = {len(ds.files) for ds in datasets}
    if len(counts) != 1:
        raise ValueError(f"datasets have differing file counts: {sorted(counts)}")
    (n,) = counts
    tasks = []
    for i in range(n):
        inputs: list[ChunkId] = []
        for ds in datasets:
            inputs.extend(c.id for c in ds.files[i].chunks)
        tasks.append(Task(task_id=i, inputs=tuple(inputs)))
    return tasks


def total_task_bytes(tasks: list[Task], sizes: dict[ChunkId, int]) -> int:
    """Net size of all data the task list reads."""
    return sum(sizes[cid] for t in tasks for cid in t.inputs)


def multi_pass_scan_tasks(dataset: Dataset, passes: int) -> list[Task]:
    """Tasks that scan every file once per pass (multi-query mpiBLAST).

    mpiBLAST scans the whole fragment set once per query batch: with Q
    batches over F fragments there are Q·F tasks, and each fragment's
    chunk is the input of Q distinct tasks.  Task ids are ordered pass-
    major: pass q's scan of file f is task ``q·F + f``.

    Because several tasks share a chunk, at most `replication` of them can
    be served locally at once — the regime where the matching must spread
    a chunk's scans over its replica holders.
    """
    if passes <= 0:
        raise ValueError("passes must be positive")
    base = tasks_from_dataset(dataset)
    tasks = []
    for q in range(passes):
        for t in base:
            tasks.append(Task(task_id=q * len(base) + t.task_id, inputs=t.inputs))
    return tasks
