"""Balanced serving of remote reads — the Opass+ extension.

The paper's §IV-B fallback assigns unmatched tasks randomly and leaves the
*serving replica* of every remote read to HDFS's uniform random choice,
which §III-B shows is itself a source of imbalance.  Since Opass already
has the block layout in hand, it can plan the remote reads too: choose
which replica holder serves each remote chunk such that the maximum
serving load is minimised.

The plan is a min-cost flow with convex per-node costs: chunk → each
replica holder (capacity 1), holder → sink through unit arcs of increasing
cost (1, 2, 3, …).  Convexity makes the optimal flow spread load as evenly
as the replica constraints allow — this is the classic reduction for
minimising maximum load (a flow saturating k unit arcs at a node pays
1+2+…+k, so total cost strictly prefers flatter load vectors).

The resulting plan plugs into the file system as a
:class:`PlannedReplicaChoice` read policy, so execution needs no changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs.chunk import ChunkId
from ..dfs.policies import RandomRemote, ReplicaChoicePolicy
from .mincostflow import MinCostFlowNetwork


@dataclass(frozen=True)
class RemoteBalanceResult:
    """A serving plan for a set of remote chunk reads."""

    server_of: dict[ChunkId, int]
    load_per_node: dict[int, int]
    max_load: int
    cost: int


def plan_remote_reads(
    chunk_ids: list[ChunkId],
    locations: dict[ChunkId, tuple[int, ...]],
) -> RemoteBalanceResult:
    """Choose a serving replica for every chunk, minimising load imbalance.

    ``locations`` must list at least one replica node per chunk.  Returns
    the per-chunk server and the resulting per-node load profile.
    """
    if not chunk_ids:
        return RemoteBalanceResult({}, {}, 0, 0)
    if len(set(chunk_ids)) != len(chunk_ids):
        raise ValueError("duplicate chunks in plan request")
    nodes = sorted({n for cid in chunk_ids for n in locations[cid]})
    if any(not locations[cid] for cid in chunk_ids):
        raise ValueError("every chunk needs at least one replica")
    node_index = {n: i for i, n in enumerate(nodes)}
    n_chunks, n_nodes = len(chunk_ids), len(nodes)

    # Vertices: 0 = s, 1..n_chunks = chunks, then nodes, last = t.
    s = 0
    chunk_base = 1
    node_base = 1 + n_chunks
    t = node_base + n_nodes
    net = MinCostFlowNetwork(t + 1)

    handles: dict[tuple[int, int], ChunkId] = {}
    for i, cid in enumerate(chunk_ids):
        net.add_edge(s, chunk_base + i, 1, 0)
        for node in locations[cid]:
            handle = net.add_edge(chunk_base + i, node_base + node_index[node], 1, 0)
            handles[handle] = cid
    # Convex load costs: serving the k-th chunk from a node costs k.
    # A node can serve at most all chunks, but arcs beyond the worst-case
    # even share are pointless; cap at n_chunks for correctness.
    for j in range(n_nodes):
        for k in range(1, n_chunks + 1):
            net.add_edge(node_base + j, t, 1, k)

    flow, cost = net.min_cost_flow(s, t)
    if flow != n_chunks:
        raise RuntimeError("remote balancing failed to route every chunk")

    server_of: dict[ChunkId, int] = {}
    for (u, idx), cid in handles.items():
        if net.flow_on((u, idx)) > 0:
            node = nodes[net.adj[u][idx].to - node_base]
            server_of[cid] = node
    load: dict[int, int] = {}
    for node in server_of.values():
        load[node] = load.get(node, 0) + 1
    return RemoteBalanceResult(
        server_of=server_of,
        load_per_node=load,
        max_load=max(load.values(), default=0),
        cost=cost,
    )


class PlannedReplicaChoice(ReplicaChoicePolicy):
    """Replica selection that follows a precomputed balanced plan.

    Chunks outside the plan fall back to the wrapped policy (uniform random
    by default, matching stock HDFS).
    """

    def __init__(
        self,
        plan: RemoteBalanceResult,
        fallback: ReplicaChoicePolicy | None = None,
    ) -> None:
        self._server_of = dict(plan.server_of)
        self._fallback = fallback if fallback is not None else RandomRemote()

    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        planned = self._server_of.get(chunk_id)
        if planned is not None and planned in replicas:
            return planned
        return self._fallback.choose(chunk_id, replicas, reader_node, rng)

    def reset(self) -> None:
        self._fallback.reset()
