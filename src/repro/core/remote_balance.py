"""Balanced serving of remote reads — the Opass+ extension.

The paper's §IV-B fallback assigns unmatched tasks randomly and leaves the
*serving replica* of every remote read to HDFS's uniform random choice,
which §III-B shows is itself a source of imbalance.  Since Opass already
has the block layout in hand, it can plan the remote reads too: choose
which replica holder serves each remote chunk such that the maximum
serving load is minimised.

The plan is a min-cost flow with convex per-node costs: chunk → each
replica holder (capacity 1), holder → sink through unit arcs of increasing
cost (1, 2, 3, …).  Convexity makes the optimal flow spread load as evenly
as the replica constraints allow — this is the classic reduction for
minimising maximum load (a flow saturating k unit arcs at a node pays
1+2+…+k, so total cost strictly prefers flatter load vectors).

A node's serving load can never exceed its in-degree (each chunk→node arc
has capacity 1), so the convex chain is pruned at the in-degree: the
dropped tail arcs could never carry flow, and because each node's chain is
emitted contiguously the arc scan order — hence every solver decision — is
unchanged.  This cuts the network from O(nodes·chunks) arcs to O(E).

For dynamic workloads (§IV-D) remote chunks arrive in batches as tasks
are dispatched; :class:`RemoteBalancePlanner` keeps one growing network
and re-plans each batch with :meth:`MinCostFlowNetwork.resolve`,
augmenting from the previous optimal flow instead of re-solving from
scratch.  The per-node load vector of a convex min-cost optimum is unique
(strict convexity), so the incremental plan's load profile and cost match
a from-scratch batch solve exactly.

The resulting plan plugs into the file system as a
:class:`PlannedReplicaChoice` read policy, so execution needs no changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs.chunk import ChunkId
from ..dfs.policies import RandomRemote, ReplicaChoicePolicy
from .mincostflow import MinCostFlowNetwork
from .perf import SchedPerf, wall_clock


@dataclass(frozen=True, slots=True)
class RemoteBalanceResult:
    """A serving plan for a set of remote chunk reads."""

    server_of: dict[ChunkId, int]
    load_per_node: dict[int, int]
    max_load: int
    cost: int


def plan_remote_reads(
    chunk_ids: list[ChunkId],
    locations: dict[ChunkId, tuple[int, ...]],
    *,
    perf: SchedPerf | None = None,
) -> RemoteBalanceResult:
    """Choose a serving replica for every chunk, minimising load imbalance.

    ``locations`` must list at least one replica node per chunk.  Returns
    the per-chunk server and the resulting per-node load profile.
    """
    if not chunk_ids:
        return RemoteBalanceResult({}, {}, 0, 0)
    if len(set(chunk_ids)) != len(chunk_ids):
        raise ValueError("duplicate chunks in plan request")
    nodes = sorted({n for cid in chunk_ids for n in locations[cid]})
    if any(not locations[cid] for cid in chunk_ids):
        raise ValueError("every chunk needs at least one replica")
    node_index = {n: i for i, n in enumerate(nodes)}
    n_chunks, n_nodes = len(chunk_ids), len(nodes)

    t0 = wall_clock() if perf is not None else 0.0
    # Vertices: 0 = s, 1..n_chunks = chunks, then nodes, last = t.
    s = 0
    chunk_base = 1
    node_base = 1 + n_chunks
    t = node_base + n_nodes
    net = MinCostFlowNetwork(t + 1)

    in_degree = [0] * n_nodes
    handles: dict[tuple[int, int], ChunkId] = {}
    for i, cid in enumerate(chunk_ids):
        net.add_edge(s, chunk_base + i, 1, 0)
        for node in locations[cid]:
            j = node_index[node]
            handle = net.add_edge(chunk_base + i, node_base + j, 1, 0)
            handles[handle] = cid
            in_degree[j] += 1
    # Convex load costs: serving the k-th chunk from a node costs k.  A
    # node's load is bounded by its in-degree (every inbound arc has
    # capacity 1), so arcs beyond that can never carry flow — prune them.
    for j in range(n_nodes):
        for k in range(1, in_degree[j] + 1):
            net.add_edge(node_base + j, t, 1, k)

    flow, cost = net.min_cost_flow(s, t, perf=perf)
    if flow != n_chunks:
        raise RuntimeError("remote balancing failed to route every chunk")

    server_of: dict[ChunkId, int] = {}
    for handle, cid in handles.items():
        if net.flow_on(handle) > 0:
            server_of[cid] = nodes[net.edge_to(handle) - node_base]
    load: dict[int, int] = {}
    for node in server_of.values():
        load[node] = load.get(node, 0) + 1
    if perf is not None:
        perf.solve_wall += wall_clock() - t0
    return RemoteBalanceResult(
        server_of=server_of,
        load_per_node=load,
        max_load=max(load.values(), default=0),
        cost=cost,
    )


class RemoteBalancePlanner:
    """Incrementally balanced remote serving over arriving chunk batches.

    Keeps one min-cost-flow network alive across batches: the node
    universe is fixed up front (vertices ``1..n``; source 0, sink
    ``n + 1``), each arriving chunk gets a fresh vertex via
    :meth:`MinCostFlowNetwork.add_vertex`, and each node's convex cost
    chain is topped up lazily as its in-degree grows (the next arc is
    always the costliest parallel, which is exactly the growth shape
    :meth:`MinCostFlowNetwork.resolve` supports).  The first batch runs a
    normal solve; later batches augment from the standing optimal flow.
    """

    def __init__(
        self,
        nodes: list[int],
        *,
        perf: SchedPerf | None = None,
    ) -> None:
        uniq = sorted(set(nodes))
        if not uniq:
            raise ValueError("need at least one servable node")
        if any(n < 0 for n in uniq):
            raise ValueError("node ids must be non-negative")
        self._nodes = uniq
        self._index = {n: j for j, n in enumerate(uniq)}
        self._s = 0
        self._t = len(uniq) + 1
        self._net = MinCostFlowNetwork(len(uniq) + 2)
        self._in_degree = [0] * len(uniq)
        self._convex = [0] * len(uniq)
        self._handles: list[tuple[ChunkId, tuple[int, int]]] = []
        self._chunks: set[ChunkId] = set()
        self._solved = False
        self._cost = 0
        self.perf = perf

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def extend(
        self,
        chunk_ids: list[ChunkId],
        locations: dict[ChunkId, tuple[int, ...]],
    ) -> RemoteBalanceResult:
        """Add a batch of remote chunks and return the cumulative plan."""
        perf = self.perf
        t0 = wall_clock() if perf is not None else 0.0
        net = self._net
        fresh = 0
        for cid in chunk_ids:
            if cid in self._chunks:
                raise ValueError(f"chunk {cid} already planned")
            replicas = locations[cid]
            if not replicas:
                raise ValueError("every chunk needs at least one replica")
            for node in replicas:
                if node not in self._index:
                    raise ValueError(f"replica node {node} outside planner universe")
            self._chunks.add(cid)
            cv = net.add_vertex()
            net.add_edge(self._s, cv, 1, 0)
            for node in replicas:
                j = self._index[node]
                self._handles.append((cid, net.add_edge(cv, 1 + j, 1, 0)))
                self._in_degree[j] += 1
            fresh += 1
        # Top the convex chains up to the new in-degrees (pruned as in
        # plan_remote_reads; each new arc is the costliest at its node).
        for j, deg in enumerate(self._in_degree):
            while self._convex[j] < deg:
                self._convex[j] += 1
                net.add_edge(1 + j, self._t, 1, self._convex[j])
        if fresh:
            if self._solved:
                flow, cost = net.resolve(self._s, self._t, perf=perf)
            else:
                flow, cost = net.min_cost_flow(self._s, self._t, perf=perf)
                self._solved = True
            if flow != fresh:
                raise RuntimeError("remote balancing failed to route every chunk")
            self._cost += cost
        if perf is not None:
            perf.solve_wall += wall_clock() - t0
        return self.result()

    def result(self) -> RemoteBalanceResult:
        """The cumulative plan over every chunk extended so far."""
        net = self._net
        server_of: dict[ChunkId, int] = {}
        for cid, handle in self._handles:
            if net.flow_on(handle) > 0:
                server_of[cid] = self._nodes[net.edge_to(handle) - 1]
        load: dict[int, int] = {}
        for node in server_of.values():
            load[node] = load.get(node, 0) + 1
        return RemoteBalanceResult(
            server_of=server_of,
            load_per_node=load,
            max_load=max(load.values(), default=0),
            cost=self._cost,
        )


class PlannedReplicaChoice(ReplicaChoicePolicy):
    """Replica selection that follows a precomputed balanced plan.

    Chunks outside the plan fall back to the wrapped policy (uniform random
    by default, matching stock HDFS).
    """

    def __init__(
        self,
        plan: RemoteBalanceResult,
        fallback: ReplicaChoicePolicy | None = None,
    ) -> None:
        self._server_of = dict(plan.server_of)
        self._fallback = fallback if fallback is not None else RandomRemote()

    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        planned = self._server_of.get(chunk_id)
        if planned is not None and planned in replicas:
            return planned
        return self._fallback.choose(chunk_id, replicas, reader_node, rng)

    def reset(self) -> None:
        self._fallback.reset()
