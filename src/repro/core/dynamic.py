"""Opass for dynamic parallel data access (paper §IV-D).

For irregular workloads (mpiBLAST-style master/worker), Opass precomputes a
matching-based assignment ``A*`` and uses it as a *guideline*:

1. before execution the scheduler computes per-worker task lists ``L_i``
   from the matching;
2. an idle worker ``i`` with non-empty ``L_i`` receives the next task from
   its own list;
3. an idle worker with an empty list *steals*: from the longest remaining
   list ``L_k``, take the task with the largest co-located data size with
   worker ``i``.

Step 3 preserves load balance in heterogeneous settings while losing as
little locality as possible.

Dispatching dynamically also means *remote* reads surface in batches (a
worker discovers its next task's inputs only when it receives the task).
:meth:`DynamicPlan.plan_remote_serving` keeps the Opass+ balanced-serving
extension live across those batches: each call feeds the newly remote
chunks to a standing :class:`~repro.core.remote_balance.RemoteBalancePlanner`,
which re-plans by augmenting the previous min-cost flow
(:meth:`~repro.core.mincostflow.MinCostFlowNetwork.resolve`) instead of
solving from scratch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..dfs.chunk import ChunkId
from .assignment import Assignment
from .bipartite import LocalityGraph
from .perf import SchedPerf
from .remote_balance import RemoteBalancePlanner, RemoteBalanceResult


@dataclass
class DynamicPlan:
    """Mutable runtime state of the §IV-D scheduler policy."""

    graph: LocalityGraph
    lists: dict[int, deque[int]]  # L_i, ordered; consumed from the front
    steals: int = 0
    dispatched: int = 0
    _dispatched_local_bytes: int = field(default=0, repr=False)
    _remote_planner: RemoteBalancePlanner | None = field(
        default=None, repr=False
    )

    @property
    def remaining(self) -> int:
        return sum(len(v) for v in self.lists.values())

    def next_task(self, rank: int) -> int | None:
        """The task the master should hand to idle worker ``rank``.

        Returns ``None`` when every list is empty (analysis finished).
        """
        if rank not in self.lists:
            raise KeyError(f"no plan for rank {rank}")
        own = self.lists[rank]
        if own:
            task = own.popleft()
        else:
            # Steal from the longest remaining list: pick the task there
            # with the largest co-located bytes with this worker.  One
            # enumerate scan finds the argmax so the victim is deleted by
            # index instead of a second O(n) remove() search.
            donors = [r for r, lst in self.lists.items() if lst]
            if not donors:
                return None
            longest = max(donors, key=lambda r: (len(self.lists[r]), -r))
            pool = self.lists[longest]
            best, task = max(
                enumerate(pool),
                key=lambda it: (self.graph.edge_weight(rank, it[1]), -it[1]),
            )
            del pool[best]
            self.steals += 1
        self.dispatched += 1
        self._dispatched_local_bytes += self.graph.edge_weight(rank, task)
        return task

    @property
    def dispatched_local_bytes(self) -> int:
        """Co-located bytes across all (worker, task) dispatches so far."""
        return self._dispatched_local_bytes

    def plan_remote_serving(
        self,
        chunk_ids: list[ChunkId],
        locations: dict[ChunkId, tuple[int, ...]],
        *,
        perf: SchedPerf | None = None,
    ) -> RemoteBalanceResult:
        """Extend the balanced remote-serving plan with newly remote chunks.

        The first call fixes the node universe to the plan's placement
        nodes and solves the serving flow; later calls augment it from the
        previous optimum, so a stream of dispatch-time batches costs one
        delta re-solve each instead of a from-scratch plan.  Returns the
        cumulative plan over every chunk seen so far.
        """
        if self._remote_planner is None:
            self._remote_planner = RemoteBalancePlanner(
                list(self.graph.placement.nodes), perf=perf
            )
        elif perf is not None:
            self._remote_planner.perf = perf
        return self._remote_planner.extend(chunk_ids, locations)


def plan_dynamic(
    graph: LocalityGraph,
    assignment: Assignment,
    *,
    order: str = "locality",
) -> DynamicPlan:
    """Build the guided lists ``L_i`` from a matching-based assignment.

    ``order`` controls within-list ordering: ``"locality"`` serves the most
    co-located tasks first (so late steals give away the least local work),
    ``"as_assigned"`` keeps the assignment's order.
    """
    if order not in ("locality", "as_assigned"):
        raise ValueError(f"unknown order {order!r}")
    lists: dict[int, deque[int]] = {}
    for rank in range(graph.num_processes):
        tasks = list(assignment.tasks_of.get(rank, []))
        if order == "locality":
            tasks.sort(key=lambda t: (-graph.edge_weight(rank, t), t))
        lists[rank] = deque(tasks)
    return DynamicPlan(graph=graph, lists=lists)
