"""Flow-based optimization of parallel single-data access (paper §IV-B).

Encodes the equal-share assignment problem as a flow network (Figure 5):

* source ``s`` → each process ``p_i`` with capacity = the process's quota;
* ``p_i`` → file ``f_j`` iff some of ``f_j`` is on ``p_i``'s node, with
  capacity = the file size (the co-located bytes);
* each file ``f_j`` → sink ``t`` with capacity = the file size.

A maximum s–t flow then yields the assignment with the maximum amount of
local reads; the Ford–Fulkerson family's flow-augmenting paths provide the
paper's cancellation/reassignment behaviour for free.  Because the maximum
matching "may be not a full matching" when data is unevenly distributed,
unmatched tasks are then distributed to below-quota processes (the paper
assigns them randomly; a least-loaded fallback is also provided).

Two capacity encodings are supported:

* ``"unit"`` — capacities counted in tasks (quota edges = task counts, file
  edges = 1).  Exact for the paper's benchmark where every chunk file has
  equal size; integral max-flow is a direct assignment.
* ``"bytes"`` — capacities in bytes, the paper's literal formulation
  (TotalSize/m per process).  With unequal file sizes the optimal flow may
  split a file across processes; the extraction step rounds each file to the
  process carrying the most of its flow, so locality is maximal up to
  rounding while quotas stay within one file size of the target.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from .assignment import Assignment, equal_quotas
from .bipartite import LocalityGraph
from .flownetwork import FlowNetwork
from .perf import SchedPerf, wall_clock

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class SingleDataResult:
    """Outcome of the flow-based optimizer."""

    assignment: Assignment
    max_flow: int
    full_matching: bool
    matched_tasks: frozenset[int]
    fallback_tasks: frozenset[int]

    @property
    def num_matched(self) -> int:
        return len(self.matched_tasks)


def _build_unit_network(
    graph: LocalityGraph, quotas: list[int]
) -> tuple[FlowNetwork, list[tuple[int, int, tuple[int, int]]]]:
    m, n = graph.num_processes, graph.num_tasks
    # Vertex ids: 0 = s, 1..m = processes, m+1..m+n = tasks, m+n+1 = t.
    net = FlowNetwork(m + n + 2)
    s, t = 0, m + n + 1
    csr = graph.csr
    ptr, row_task = csr.proc_ptr, csr.proc_task
    edges: list[tuple[int, int, int]] = [
        (s, 1 + rank, quotas[rank]) for rank in range(m)
    ]
    meta: list[tuple[int, int]] = []
    for rank in range(m):
        base = 1 + rank
        for j in range(ptr[rank], ptr[rank + 1]):
            task_id = row_task[j]
            meta.append((rank, task_id))
            edges.append((base, 1 + m + task_id, 1))
    edges.extend((1 + m + task_id, t, 1) for task_id in range(n))
    edge_handles = net.add_edges(edges)
    handles = [
        (rank, task_id, edge_handles[m + i])
        for i, (rank, task_id) in enumerate(meta)
    ]
    return net, handles


def _build_byte_network(
    graph: LocalityGraph, quotas_bytes: list[int]
) -> tuple[FlowNetwork, list[tuple[int, int, tuple[int, int]]]]:
    m, n = graph.num_processes, graph.num_tasks
    net = FlowNetwork(m + n + 2)
    s, t = 0, m + n + 1
    csr = graph.csr
    ptr, row_task, row_weight = csr.proc_ptr, csr.proc_task, csr.proc_weight
    edges: list[tuple[int, int, int]] = [
        (s, 1 + rank, quotas_bytes[rank]) for rank in range(m)
    ]
    meta: list[tuple[int, int]] = []
    for rank in range(m):
        base = 1 + rank
        for j in range(ptr[rank], ptr[rank + 1]):
            task_id = row_task[j]
            meta.append((rank, task_id))
            edges.append((base, 1 + m + task_id, row_weight[j]))
    edges.extend(
        (1 + m + task_id, t, graph.task_bytes(task_id)) for task_id in range(n)
    )
    edge_handles = net.add_edges(edges)
    handles = [
        (rank, task_id, edge_handles[m + i])
        for i, (rank, task_id) in enumerate(meta)
    ]
    return net, handles


def _fallback_distribute(
    assignment: Assignment,
    unmatched: list[int],
    quotas: list[int],
    rng: np.random.Generator,
    policy: str,
) -> None:
    """Give unmatched tasks to below-quota processes.

    ``"random"`` is the paper's choice ("we randomly assign unmatched tasks
    to each such process until all processes are matched"); ``"least_loaded"``
    picks the emptiest process first.
    """
    if not unmatched:
        return
    deficits = {
        rank: quotas[rank] - len(assignment.tasks_of.get(rank, []))
        for rank in range(len(quotas))
    }
    open_ranks = [r for r, d in deficits.items() if d > 0]
    if sum(deficits[r] for r in open_ranks) < len(unmatched):
        raise ValueError("quotas cannot absorb unmatched tasks")
    for task_id in unmatched:
        if policy == "random":
            rank = open_ranks[int(rng.integers(len(open_ranks)))]
        elif policy == "least_loaded":
            rank = min(open_ranks, key=lambda r: (len(assignment.tasks_of.get(r, [])), r))
        else:
            raise ValueError(f"unknown fallback policy {policy!r}")
        assignment.assign(rank, task_id)
        deficits[rank] -= 1
        if deficits[rank] == 0:
            # Order-preserving removal is required: the "random" policy
            # indexes open_ranks with rng draws, so a swap-pop would
            # change which rank each subsequent draw selects.  The list
            # is at most num_processes long and each rank leaves once.
            open_ranks.remove(rank)  # opass: ignore[OPS005] -- cold planner path; O(m) removal, each rank removed at most once, order must be stable for seeded rng reproducibility


def optimize_single_data(
    graph: LocalityGraph,
    *,
    quotas: list[int] | None = None,
    capacity_mode: str = "unit",
    algorithm: str = "dinic",
    fallback: str = "random",
    seed: int | np.random.Generator = 0,
    perf: SchedPerf | None = None,
) -> SingleDataResult:
    """Compute the Opass assignment for single-data (equal-share) access.

    Parameters
    ----------
    graph:
        The §IV-A locality graph.
    quotas:
        Tasks per process; defaults to the equal split (n/m with remainder
        over the low ranks).  Their sum must be ≥ the task count.
    capacity_mode:
        ``"unit"`` (task-count capacities) or ``"bytes"`` (the paper's
        TotalSize/m byte capacities).
    algorithm:
        Max-flow solver: ``"dinic"`` or ``"edmonds_karp"``.
    fallback:
        Distribution policy for tasks the maximum matching left unassigned:
        ``"random"`` (paper) or ``"least_loaded"``.
    """
    m, n = graph.num_processes, graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)
    if len(quotas) != m:
        raise ValueError("quota list length != process count")
    if any(q < 0 for q in quotas):
        raise ValueError("quotas must be non-negative")
    if sum(quotas) < n:
        raise ValueError(f"total quota {sum(quotas)} < {n} tasks")
    if fallback not in ("random", "least_loaded"):
        raise ValueError(f"unknown fallback policy {fallback!r}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if capacity_mode not in ("unit", "bytes"):
        raise ValueError(f"unknown capacity_mode {capacity_mode!r}")
    # The network is a pure function of (graph, mode, quotas), so repeated
    # solves over a cached graph reuse it: reset() restores the original
    # capacities and the solver replays bit-for-bit on the same arrays.
    scratch_key = ("single_data_net", capacity_mode, tuple(quotas))
    cached = graph.scratch.get(scratch_key)
    if cached is not None:
        net, handles, handle_list, harr = cached  # type: ignore[misc]
        net.reset()
    else:
        if capacity_mode == "unit":
            net, handles = _build_unit_network(graph, quotas)
        else:
            # Byte quota proportional to the task quota; for the common
            # equal case this is ceil(TotalSize/m) per process, the
            # paper's TotalSize/m.
            total_bytes = graph.total_bytes()
            quota_sum = sum(quotas)
            quotas_bytes = [-(-total_bytes * q // quota_sum) for q in quotas]
            net, handles = _build_byte_network(graph, quotas_bytes)
        handle_list = [h for _, _, h in handles]
        # Handle metadata for the vectorized extraction: a precompiled
        # bulk-flow probe plus flat rank/task arrays, built once per
        # network and reused by every later solve.
        harr = (
            net.flow_probe(handle_list),
            np.fromiter((r for r, _, _ in handles), np.int64, len(handles)),
            np.fromiter((t for _, t, _ in handles), np.int64, len(handles)),
        )
        graph.scratch[scratch_key] = (net, handles, handle_list, harr)

    s, t = 0, m + n + 1
    t0 = wall_clock() if perf is not None else 0.0
    max_flow = net.max_flow(s, t, algorithm=algorithm, perf=perf)
    if perf is not None:
        perf.solves += 1
        perf.solve_wall += wall_clock() - t0

    # Extract the integral assignment: a task is matched to the process
    # carrying (the most of) its flow.
    assignment = Assignment.empty(m)
    matched: set[int] = set()
    pending: list[int] = []
    if capacity_mode == "unit":
        # Unit mode: every task→sink edge has capacity 1, so integral flow
        # puts at most one unit on at most one carrier per task — which
        # makes the whole extraction a scatter: owner[task] = carrier
        # rank (no colliding indices), grouped per rank by a stable sort
        # that preserves ascending task order, exactly the order the
        # scalar range(n) loop appends in.
        probe, h_ranks, h_tasks = harr
        flows_np = probe()
        pos = flows_np > 0
        owner = np.full(n, -1, np.int64)
        owner[h_tasks[pos]] = h_ranks[pos]
        matched_np = np.flatnonzero(owner >= 0)
        pending = np.flatnonzero(owner < 0).tolist()
        owners = owner[matched_np]
        counts = np.bincount(owners, minlength=m)
        grouped = matched_np[np.argsort(owners, kind="stable")]
        tasks_of = assignment.tasks_of
        start = 0
        for rank in range(m):
            c = int(counts[rank])
            if c:
                tasks_of[rank] = grouped[start : start + c].tolist()
                start += c
        matched = set(matched_np.tolist())
    else:
        flows = net.flows_on(handle_list)
        flow_to: dict[int, list[tuple[int, int]]] = {}
        for (rank, task_id, _), f in zip(handles, flows):
            if f > 0:
                flow_to.setdefault(task_id, []).append((f, rank))
        for task_id in range(n):
            carriers = flow_to.get(task_id)
            if not carriers:
                pending.append(task_id)
                continue
            carriers.sort(reverse=True)  # most flow first; ties to high rank — break by rank next
            best_flow = carriers[0][0]
            best_rank = min(r for f, r in carriers if f == best_flow)
            if best_flow * 2 >= graph.task_bytes(task_id):
                assignment.assign(best_rank, task_id)
                matched.add(task_id)
            else:
                pending.append(task_id)

    # Rounding in bytes mode can push a process over its task quota; demote
    # its least-local tasks back to the pending pool.
    for rank in range(m):
        ts = assignment.tasks_of.get(rank, [])
        while len(ts) > quotas[rank]:
            # One enumerate scan finds the argmin so the demoted task is
            # deleted by index instead of a second O(n) remove() search.
            worst_i, worst = min(
                enumerate(ts),
                key=lambda it: (graph.edge_weight(rank, it[1]), -it[1]),
            )
            del ts[worst_i]
            matched.discard(worst)
            pending.append(worst)
    pending.sort()

    _fallback_distribute(assignment, pending, quotas, rng, fallback)
    assignment.validate(n, quotas=quotas)

    if capacity_mode == "unit":
        full = max_flow == n
    else:
        full = max_flow == graph.total_bytes()
    logger.info(
        "single-data matching: %d tasks over %d processes, max_flow=%d, "
        "matched=%d, fallback=%d, full=%s",
        n, m, max_flow, len(matched), len(pending), full,
    )
    return SingleDataResult(
        assignment=assignment,
        max_flow=max_flow,
        full_matching=full,
        matched_tasks=frozenset(matched),
        fallback_tasks=frozenset(pending),
    )
