"""Baseline assignment strategies the paper compares against.

* :func:`rank_interval_assignment` — the ParaView / generic SPMD static
  method (§II-B): process ``i`` takes the files with indices in
  ``[i·n/m, (i+1)·n/m)``, oblivious to data placement.
* :func:`random_assignment` — a shuffled equal split (the §III model of
  "randomly assigned to processes").
* :class:`DefaultDynamicPolicy` — the default master/worker dispatcher: an
  idle worker receives an arbitrary remaining task (FIFO or random),
  oblivious to locality (§V-A3's "default dynamic data assignment").
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .assignment import Assignment, equal_quotas


def rank_interval_assignment(num_tasks: int, num_processes: int) -> Assignment:
    """ParaView's static data assignment.

    The paper quotes the interval ``[i·n/m, (i+1)·n/m)`` with real division;
    floor at the boundaries reproduces it for any n, m.
    """
    if num_tasks < 0:
        raise ValueError("num_tasks must be non-negative")
    if num_processes <= 0:
        raise ValueError("num_processes must be positive")
    assignment = Assignment.empty(num_processes)
    for rank in range(num_processes):
        lo = rank * num_tasks // num_processes
        hi = (rank + 1) * num_tasks // num_processes
        for task in range(lo, hi):
            assignment.assign(rank, task)
    return assignment


def random_assignment(
    num_tasks: int,
    num_processes: int,
    seed: int | np.random.Generator = 0,
) -> Assignment:
    """Shuffle the tasks, then deal them out in equal quotas."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    quotas = equal_quotas(num_tasks, num_processes)
    perm = rng.permutation(num_tasks)
    assignment = Assignment.empty(num_processes)
    cursor = 0
    for rank, quota in enumerate(quotas):
        for task in perm[cursor : cursor + quota]:
            assignment.assign(rank, int(task))
        cursor += quota
    return assignment


class DefaultDynamicPolicy:
    """Locality-oblivious master/worker dispatch.

    ``mode="fifo"`` hands out tasks in id order; ``mode="random"`` picks a
    uniformly random remaining task — the paper's dynamic baseline issues
    "data requests via a random policy to simulate the irregular computation
    patterns".
    """

    def __init__(
        self,
        num_tasks: int,
        *,
        mode: str = "random",
        seed: int | np.random.Generator = 0,
    ) -> None:
        if mode not in ("fifo", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        # fifo only ever consumes the head (deque, O(1)); random must pop
        # arbitrary order-preserved indices, which only a list supports.
        self._remaining: deque[int] | list[int] = (
            deque(range(num_tasks)) if mode == "fifo" else list(range(num_tasks))
        )
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def remaining(self) -> int:
        return len(self._remaining)

    def next_task(self, rank: int) -> int | None:
        """Task for idle worker ``rank``; None when the pool is empty."""
        if not self._remaining:
            return None
        if isinstance(self._remaining, deque):
            return self._remaining.popleft()
        idx = int(self._rng.integers(len(self._remaining)))
        return self._remaining.pop(idx)
