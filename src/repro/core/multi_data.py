"""Matching-based optimization for tasks with multi-data inputs (§IV-C).

Implements the paper's Algorithm 1, a stable-marriage-flavoured greedy
matching with reassignment:

1. matching value ``m_i^j = |d(p_i) ∩ d(t_j)|`` — bytes of task ``t_j``'s
   inputs co-located with process ``p_i`` (these are exactly the locality
   graph's edge weights);
2. while some process ``p_k`` holds fewer than its quota of tasks, it
   proposes to its best not-yet-considered task ``t_x``;
3. an unassigned ``t_x`` accepts; an assigned ``t_x`` is *stolen* iff
   ``p_k``'s matching value strictly exceeds the current owner's (the
   paper's cancellation / re-assignment event, Figure 6(b));
4. either way ``p_k`` marks ``t_x`` considered and never proposes to it
   again.

Each process considers each task at most once, so the loop runs at most
``m·n`` iterations — the paper's O(m·n) bound.  Like the stable marriage
it mirrors, the result is proposer-optimal: "our algorithm achieves the
optimal matching value from the perspective of each process".
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass

from .assignment import Assignment, equal_quotas
from .bipartite import LocalityGraph

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MultiDataResult:
    """Outcome of Algorithm 1."""

    assignment: Assignment
    local_bytes: int
    reassignments: int
    proposals: int


def optimize_multi_data(
    graph: LocalityGraph,
    *,
    quotas: list[int] | None = None,
    order: str = "round_robin",
    seed: int = 0,
) -> MultiDataResult:
    """Run Algorithm 1 over a locality graph.

    ``quotas`` defaults to the paper's equal split (n/m tasks each).  The
    quota sum must be at least the number of tasks; the algorithm then always
    terminates with every task assigned (a deficient process that reaches an
    unassigned task always takes it).

    ``order`` resolves the paper's unspecified "∃ p_k": which deficient
    process proposes next.  ``"round_robin"`` (default, matches Figure
    6(b)'s narration), ``"stack"`` (most-recently-deficient first) or
    ``"random"`` (seeded).  ``bench_ablation_order`` shows the outcome
    quality is essentially order-insensitive — the steal rule, not the
    visit order, drives the result.
    """
    import numpy as np

    if order not in ("round_robin", "stack", "random"):
        raise ValueError(f"unknown selection order {order!r}")
    rng = np.random.default_rng(seed)
    m, n = graph.num_processes, graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)
    if len(quotas) != m:
        raise ValueError("quota list length != process count")
    if any(q < 0 for q in quotas):
        raise ValueError("quotas must be non-negative")
    if sum(quotas) < n:
        raise ValueError(f"total quota {sum(quotas)} < {n} tasks")

    # Per-process proposal order: tasks by descending matching value.  Tasks
    # with no co-located data (no edge) have value 0 and come last, ordered
    # by id — the process will still take them when nothing better remains,
    # which is how tasks outside the locality graph get owners.
    order: dict[int, deque[int]] = {}
    for rank in range(m):
        weights = graph.edges_of_process(rank)
        ranked = sorted(range(n), key=lambda t: (-weights.get(t, 0), t))
        order[rank] = deque(ranked)

    owner: dict[int, int] = {}  # task -> rank
    load = [0] * m
    reassignments = 0
    proposals = 0
    # Deficient processes, served round-robin.  The paper's "∃ p_k" leaves
    # the order unspecified; round-robin keeps the run deterministic and
    # matches Figure 6(b)'s narration (p3 "begins to choose its first task"
    # after p0..p2 made picks).
    active = deque(rank for rank in range(m) if quotas[rank] > 0)

    while active:
        if order == "round_robin":
            rank = active.popleft()
        elif order == "stack":
            rank = active.pop()
        else:  # random
            idx = int(rng.integers(len(active)))
            rank = active[idx]
            del active[idx]
        if load[rank] >= quotas[rank]:
            continue
        if not order[rank]:
            continue  # considered everything; stays deficient
        task = order[rank].popleft()  # highest remaining matching value
        proposals += 1
        if task not in owner:
            owner[task] = rank
            load[rank] += 1
        else:
            holder = owner[task]
            if graph.edge_weight(holder, task) < graph.edge_weight(rank, task):
                owner[task] = rank
                load[rank] += 1
                load[holder] -= 1
                reassignments += 1
                if load[holder] < quotas[holder]:
                    active.append(holder)
        if load[rank] < quotas[rank] and order[rank]:
            active.append(rank)

    if len(owner) != n:
        # Unreachable when quota sum >= n (see module docstring); guard for
        # defensive clarity.
        missing = sorted(set(range(n)) - set(owner))
        raise RuntimeError(f"algorithm terminated with unassigned tasks {missing[:5]}")

    assignment = Assignment.empty(m)
    for task in range(n):
        assignment.assign(owner[task], task)
    assignment.validate(n, quotas=quotas)

    local = sum(graph.edge_weight(rank, t) for t, rank in owner.items())
    logger.info(
        "multi-data matching: %d tasks over %d processes, %d proposals, "
        "%d reassignments, local %d/%d bytes",
        n, m, proposals, reassignments, local, graph.total_bytes(),
    )
    return MultiDataResult(
        assignment=assignment,
        local_bytes=local,
        reassignments=reassignments,
        proposals=proposals,
    )
