"""Top-level Opass API.

Convenience functions that go straight from a live file system + process
placement to an optimized assignment, hiding graph construction.  These are
what the examples and applications call.
"""

from __future__ import annotations

import numpy as np

from ..dfs.chunk import Dataset
from ..dfs.filesystem import DistributedFileSystem
from .bipartite import LocalityGraph, ProcessPlacement, graph_from_filesystem
from .dynamic import DynamicPlan, plan_dynamic
from .multi_data import MultiDataResult, optimize_multi_data
from .perf import SchedPerf
from .single_data import SingleDataResult, optimize_single_data
from .tasks import Task, tasks_from_dataset, tasks_from_datasets


def opass_single_data(
    fs: DistributedFileSystem,
    dataset: Dataset | str,
    placement: ProcessPlacement,
    *,
    algorithm: str = "dinic",
    fallback: str = "random",
    seed: int | np.random.Generator = 0,
    perf: SchedPerf | None = None,
) -> tuple[SingleDataResult, LocalityGraph, list[Task]]:
    """Optimize equal-share single-data access for one dataset.

    Returns the optimizer result, the locality graph it was computed from,
    and the task list (one task per file).
    """
    ds = fs.dataset(dataset) if isinstance(dataset, str) else dataset
    tasks = tasks_from_dataset(ds)
    graph = graph_from_filesystem(fs, tasks, placement, perf=perf)
    result = optimize_single_data(
        graph, algorithm=algorithm, fallback=fallback, seed=seed, perf=perf
    )
    return result, graph, tasks


def opass_multi_data(
    fs: DistributedFileSystem,
    datasets: list[Dataset | str],
    placement: ProcessPlacement,
    *,
    perf: SchedPerf | None = None,
) -> tuple[MultiDataResult, LocalityGraph, list[Task]]:
    """Optimize multi-input task access across several datasets.

    Task ``i`` reads the ``i``-th file of every dataset (the paper's
    gene-comparison shape).
    """
    resolved = [fs.dataset(d) if isinstance(d, str) else d for d in datasets]
    tasks = tasks_from_datasets(resolved)
    graph = graph_from_filesystem(fs, tasks, placement, perf=perf)
    result = optimize_multi_data(graph, perf=perf)
    return result, graph, tasks


def opass_dynamic_plan(
    fs: DistributedFileSystem,
    dataset: Dataset | str,
    placement: ProcessPlacement,
    *,
    seed: int | np.random.Generator = 0,
    perf: SchedPerf | None = None,
) -> tuple[DynamicPlan, LocalityGraph, list[Task]]:
    """Build §IV-D guided lists for a master/worker run over one dataset."""
    result, graph, tasks = opass_single_data(
        fs, dataset, placement, seed=seed, perf=perf
    )
    return plan_dynamic(graph, result.assignment), graph, tasks
