"""Delay scheduling and locality-greedy dispatch baselines.

The paper's related work (§VI) cites *delay scheduling* [Zaharia et al.,
EuroSys'10]: "allows tasks to wait for a small amount of time for
achieving locality computation".  These are the natural dynamic baselines
between the paper's random master and Opass's guided lists:

* :class:`LocalityGreedyPolicy` — an idle worker takes a remaining task
  co-located with it if any exists, otherwise any remaining task.  No
  planning: first-come-first-served on the shared pool, so workers race
  for replicas and the run's tail is whatever remote leftovers remain.
* :class:`DelaySchedulingPolicy` — the same, except a worker with no local
  task left *waits* (in ``poll_interval`` quanta, up to ``max_delay`` per
  dispatch) before conceding to a remote task, trading idle time for the
  chance that the pool drains toward it.

Both implement the runner's :class:`~repro.simulate.runner.TaskSource`
protocol (via the ``Wait`` response for delay scheduling).
"""

from __future__ import annotations

import numpy as np

from .bipartite import LocalityGraph
from .tasks import Wait


class LocalityGreedyPolicy:
    """Local-task-first greedy dispatch over a shared pool."""

    def __init__(
        self,
        graph: LocalityGraph,
        *,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.graph = graph
        self._remaining: set[int] = set(range(graph.num_tasks))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def remaining(self) -> int:
        return len(self._remaining)

    def _best_local(self, rank: int) -> int | None:
        """The remaining task with the most co-located bytes, if any."""
        best_task = None
        best_weight = 0
        for task_id, weight in self.graph.edges_of_process(rank).items():
            if weight > best_weight and task_id in self._remaining:
                best_task = task_id
                best_weight = weight
        return best_task

    def _any_remaining(self) -> int:
        pool = sorted(self._remaining)
        return pool[int(self._rng.integers(len(pool)))]

    def next_task(self, rank: int) -> int | None:
        if not self._remaining:
            return None
        task = self._best_local(rank)
        if task is None:
            task = self._any_remaining()
        self._remaining.discard(task)
        return task


class DelaySchedulingPolicy(LocalityGreedyPolicy):
    """Locality-greedy with a bounded wait before conceding to remote.

    Per dispatch, a worker with no local task waits in ``poll_interval``
    quanta until its accumulated wait reaches ``max_delay``; taking any
    task resets its budget.  (EuroSys'10 expresses the bound in skipped
    scheduling opportunities; with a continuous clock the time bound is
    the direct analogue.)
    """

    def __init__(
        self,
        graph: LocalityGraph,
        *,
        max_delay: float = 3.0,
        poll_interval: float = 0.5,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        super().__init__(graph, seed=seed)
        self.max_delay = max_delay
        self.poll_interval = poll_interval
        self._waited: dict[int, float] = {}
        self.concessions = 0

    def next_task(self, rank: int) -> int | Wait | None:
        if not self._remaining:
            return None
        task = self._best_local(rank)
        if task is not None:
            self._waited[rank] = 0.0
            self._remaining.discard(task)
            return task
        waited = self._waited.get(rank, 0.0)
        if waited < self.max_delay:
            self._waited[rank] = waited + self.poll_interval
            return Wait(self.poll_interval)
        # Budget exhausted: concede and go remote.
        self._waited[rank] = 0.0
        self.concessions += 1
        task = self._any_remaining()
        self._remaining.discard(task)
        return task
