"""Instrumentation counters for the scheduler (matching) hot path.

The PR-1/PR-4 work made the fluid simulator fast enough that end-to-end
experiment wall time is dominated by the *scheduler* side: building the
process↔task locality graph from the NameNode snapshot and solving the
max-flow / min-cost-flow matchings.  :class:`SchedPerf` is the
scheduler-side sibling of :class:`repro.simulate.perf.SimPerf`: plain
int/float counters the matching kernels bump as they work, answering the
questions a matching-performance regression hunt starts with — how long
graph builds and solves took, how often the snapshot→graph cache hit,
how many augmenting paths the flow solvers walked, and how often a
min-cost re-solve reused its Johnson potentials instead of re-running
the Bellman–Ford bootstrap.

Every matching entry point accepts an optional ``perf`` keyword; pass
one :class:`SchedPerf` through a whole experiment to aggregate.
``repro.metrics`` re-exports :class:`SchedPerf`, and
:class:`~repro.simulate.runner.RunResult` carries an optional
``sched_perf`` snapshot next to ``sim_perf`` so benchmarks can report
matching cost beside simulated I/O time (see
``benchmarks/bench_sched_performance.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: The one sanctioned wall-clock source in the core (scheduler) layer.
#: Matching code must never read wall time directly (opass-lint OPS002):
#: assignments must be functions of the layout and the seed alone.  The
#: perf instrumentation below is the exception, and reads time through
#: this alias only.
wall_clock = time.perf_counter


@dataclass
class SchedPerf:
    """Counters and per-phase wall clocks for the matching pipeline."""

    #: locality-graph constructions (cache misses + direct builds)
    graph_builds: int = 0
    #: edges written into locality-graph CSRs
    graph_edges: int = 0
    #: snapshot→graph cache outcomes (``graph_from_filesystem``)
    cache_hits: int = 0
    cache_misses: int = 0
    #: matching solves (max-flow or min-cost-flow runs)
    solves: int = 0
    #: flow-augmenting paths walked (Dinic, Edmonds–Karp and SSP rounds)
    augmentations: int = 0
    #: Dinic level-graph (BFS phase) constructions
    bfs_phases: int = 0
    #: max-flow solves answered by replaying a memoised virgin-state solve
    solve_replays: int = 0
    #: min-cost bootstraps by kind: Bellman–Ford (negative costs) vs the
    #: Dijkstra shortcut (all costs non-negative; identical distances)
    bellman_ford_runs: int = 0
    dijkstra_bootstraps: int = 0
    #: solves that reused the previous solve's Johnson potentials
    potential_reuses: int = 0
    #: delta re-solves (``MinCostFlowNetwork.resolve`` after growth)
    resolves: int = 0
    #: wall seconds per phase
    graph_build_wall: float = 0.0
    solve_wall: float = 0.0

    _extra: dict[str, float] = field(default_factory=dict, repr=False)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy, JSON-ready (for RunResult / BENCH files)."""
        out: dict[str, float] = {
            "graph_builds": self.graph_builds,
            "graph_edges": self.graph_edges,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solves": self.solves,
            "augmentations": self.augmentations,
            "bfs_phases": self.bfs_phases,
            "solve_replays": self.solve_replays,
            "bellman_ford_runs": self.bellman_ford_runs,
            "dijkstra_bootstraps": self.dijkstra_bootstraps,
            "potential_reuses": self.potential_reuses,
            "resolves": self.resolves,
            "graph_build_wall": self.graph_build_wall,
            "solve_wall": self.solve_wall,
        }
        out.update(self._extra)
        return out

    def reset(self) -> None:
        """Zero every counter (reuse one instance across phases)."""
        self.__init__()  # type: ignore[misc]
