"""Assignment and plan persistence (JSON).

A matching computed against a layout snapshot is reusable for the whole
analysis campaign (the paper's ParaView runs render the same series many
times).  These helpers serialise assignments and dynamic plans with enough
context — task count, process count, a layout fingerprint — to detect at
load time whether the stored plan still matches the cluster it was
computed for.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path
from typing import Any

from ..dfs.chunk import ChunkId
from .assignment import Assignment
from .bipartite import LocalityGraph
from .dynamic import DynamicPlan

FORMAT_VERSION = 1


def layout_fingerprint(locations: dict[ChunkId, tuple[int, ...]]) -> str:
    """A stable hash of a chunk→replica-nodes map."""
    payload = sorted((str(cid), list(nodes)) for cid, nodes in locations.items())
    blob = json.dumps(payload, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def assignment_to_dict(
    assignment: Assignment,
    *,
    num_tasks: int,
    fingerprint: str | None = None,
) -> dict[str, Any]:
    """JSON-ready representation; validates coverage before serialising."""
    assignment.validate(num_tasks)
    return {
        "format": FORMAT_VERSION,
        "kind": "assignment",
        "num_tasks": num_tasks,
        "num_processes": assignment.num_processes,
        "fingerprint": fingerprint,
        "tasks_of": {str(r): list(ts) for r, ts in assignment.tasks_of.items()},
    }


def assignment_from_dict(
    data: dict[str, Any],
    *,
    expect_fingerprint: str | None = None,
) -> Assignment:
    """Parse and re-validate a stored assignment.

    If both the stored document and the caller provide a fingerprint and
    they disagree, the layout changed since the plan was computed and the
    load is refused.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {data.get('format')!r}")
    if data.get("kind") != "assignment":
        raise ValueError(f"not an assignment document: {data.get('kind')!r}")
    stored = data.get("fingerprint")
    if expect_fingerprint is not None and stored is not None and stored != expect_fingerprint:
        raise ValueError(
            f"layout changed since the plan was stored "
            f"(stored {stored}, current {expect_fingerprint})"
        )
    assignment = Assignment(
        {int(r): [int(t) for t in ts] for r, ts in data["tasks_of"].items()}
    )
    assignment.validate(int(data["num_tasks"]))
    return assignment


def save_assignment(
    assignment: Assignment,
    path: str | Path,
    *,
    num_tasks: int,
    locations: dict[ChunkId, tuple[int, ...]] | None = None,
) -> Path:
    """Write an assignment (with optional layout fingerprint) to disk."""
    path = Path(path)
    fingerprint = layout_fingerprint(locations) if locations is not None else None
    path.write_text(
        json.dumps(
            assignment_to_dict(assignment, num_tasks=num_tasks, fingerprint=fingerprint),
            indent=2,
        )
    )
    return path


def load_assignment(
    path: str | Path,
    *,
    locations: dict[ChunkId, tuple[int, ...]] | None = None,
) -> Assignment:
    """Load an assignment, checking the layout fingerprint when possible."""
    data = json.loads(Path(path).read_text())
    expect = layout_fingerprint(locations) if locations is not None else None
    return assignment_from_dict(data, expect_fingerprint=expect)


def plan_to_dict(plan: DynamicPlan) -> dict[str, Any]:
    """Serialise a dynamic plan's remaining guided lists."""
    return {
        "format": FORMAT_VERSION,
        "kind": "dynamic_plan",
        "lists": {str(r): list(ts) for r, ts in plan.lists.items()},
    }


def plan_from_dict(data: dict[str, Any], graph: LocalityGraph) -> DynamicPlan:
    """Rehydrate a dynamic plan against a (compatible) locality graph."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {data.get('format')!r}")
    if data.get("kind") != "dynamic_plan":
        raise ValueError(f"not a dynamic plan document: {data.get('kind')!r}")
    lists = {int(r): deque(int(t) for t in ts) for r, ts in data["lists"].items()}
    if set(lists) != set(range(graph.num_processes)):
        raise ValueError("plan's process set does not match the graph")
    for ts in lists.values():
        for t in ts:
            if not 0 <= t < graph.num_tasks:
                raise ValueError(f"plan references unknown task {t}")
    return DynamicPlan(graph=graph, lists=lists)
