"""Minimum-cost maximum-flow, implemented from scratch.

Successive shortest augmenting paths with Johnson potentials (Bellman–Ford
for the initial potentials because assignment reductions use negative
costs, Dijkstra afterwards).  Integer capacities and costs, so optimal
flows are integral.

This powers the extensions beyond the paper's max-flow formulation:

* :mod:`repro.core.remote_balance` — distribute the *unmatched* (remote)
  reads across replica holders so the remote traffic itself is balanced,
  instead of the paper's uniformly random fallback;
* cost-weighted variants of the single-data matching (e.g. preferring
  less-loaded processes among equally-local choices).

PR 5 rewrote the storage as flat parallel arrays (xor-paired arc ids, as
in :mod:`repro.core.flownetwork`) and added three scheduler-scaling
mechanisms, none of which changes any solve's output:

* **Dijkstra bootstrap** — when every arc added so far has non-negative
  cost and no flow is present, the initial potentials are computed with
  Dijkstra instead of Bellman–Ford.  Shortest-distance *values* are
  unique, so the resulting potential array is bit-identical to the one
  Bellman–Ford would produce and every subsequent augmentation (and
  tie-break) is unchanged; it is purely a bootstrap-speed win.
* **Warm start** — a completed solve stores its final potentials; a
  repeated solve from the same source on the untouched network reuses
  them (they certify non-negative reduced costs on the residual graph)
  instead of re-running the bootstrap.
* **Delta re-solve** (:meth:`resolve`) — after the network has *grown*
  (new vertices via :meth:`add_vertex`, new source-side arcs), push the
  additional flow by augmenting from the previous optimal flow rather
  than solving from scratch.  Growth can create negative-cost residual
  cycles through the source (leave via a cheap new arc, return via the
  reverse of an old one), but the residual graph *excluding* the source
  has none — the old flow was optimal there, and a new arc is only ever
  the costliest parallel at its head.  Each round therefore runs one
  multi-source shortest-path pass that never relaxes an arc back into
  the source, which is exactly the graph with those cycles cut, and
  augments one bottleneck; by flow decomposition each augmentation
  preserves global optimality of the combined flow.
"""

from __future__ import annotations

import heapq
from collections import deque

from .perf import SchedPerf

_INF = 1 << 62


class _ArcView:
    """Read-only view of one directed arc (for ``adj`` compatibility)."""

    __slots__ = ("_net", "_aid")

    def __init__(self, net: "MinCostFlowNetwork", aid: int) -> None:
        self._net = net
        self._aid = aid

    @property
    def to(self) -> int:
        return self._net._to[self._aid]

    @property
    def cap(self) -> int:
        return self._net._cap[self._aid]

    @property
    def cost(self) -> int:
        return self._net._cost[self._aid]

    @property
    def original_cap(self) -> int:
        return self._net._orig[self._aid]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"_ArcView(to={self.to}, cap={self.cap}, cost={self.cost}, "
            f"original_cap={self.original_cap})"
        )


class MinCostFlowNetwork:
    """Directed graph with integer capacities and per-unit costs."""

    __slots__ = (
        "num_vertices",
        "_to",
        "_cap",
        "_cost",
        "_orig",
        "_adj",
        "_min_cost",
        "_has_flow",
        "_potential",
        "_potential_source",
    )

    def __init__(self, num_vertices: int) -> None:
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = num_vertices
        self._to: list[int] = []
        self._cap: list[int] = []
        self._cost: list[int] = []
        self._orig: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(num_vertices)]
        # Cheapest forward-arc cost seen (bootstrap-strategy choice).
        self._min_cost = 0
        self._has_flow = False
        # Johnson potentials certified by the last completed solve, for
        # warm-started repeat solves from the same source.
        self._potential: list[int] | None = None
        self._potential_source = -1

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ValueError(f"vertex {v} out of range [0, {self.num_vertices})")

    def add_vertex(self) -> int:
        """Grow the network by one vertex; returns its id (for re-plans)."""
        self.num_vertices += 1
        self._adj.append([])
        self._potential = None
        return self.num_vertices - 1

    def add_edge(self, u: int, v: int, capacity: int, cost: int) -> tuple[int, int]:
        """Add arc u→v; returns a handle usable with :meth:`flow_on`."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not isinstance(capacity, int) or not isinstance(cost, int):
            raise TypeError("capacities and costs must be integers")
        aid = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._cost.append(cost)
        self._orig.append(capacity)
        self._to.append(u)
        self._cap.append(0)
        self._cost.append(-cost)
        self._orig.append(0)
        self._adj[u].append(aid)
        self._adj[v].append(aid + 1)
        if cost < self._min_cost:
            self._min_cost = cost
        self._potential = None
        return (u, len(self._adj[u]) - 1)

    @property
    def adj(self) -> list[list[_ArcView]]:
        """Per-vertex arc views (read-only; for tests and debugging)."""
        return [[_ArcView(self, aid) for aid in row] for row in self._adj]

    def _arc_id(self, handle: tuple[int, int]) -> int:
        u, idx = handle
        return self._adj[u][idx]

    def edge_to(self, handle: tuple[int, int]) -> int:
        """Head vertex of the arc identified by ``handle``."""
        return self._to[self._arc_id(handle)]

    def flow_on(self, handle: tuple[int, int]) -> int:
        aid = self._arc_id(handle)
        return self._orig[aid] - self._cap[aid]

    # -- bootstrap --------------------------------------------------------------

    def _bellman_ford_potentials(self, source: int) -> list[int]:
        """Bellman–Ford shortest distances by cost (handles negative costs)."""
        adj, to, cap, cost = self._adj, self._to, self._cap, self._cost
        dist = [_INF] * self.num_vertices
        dist[source] = 0
        for _ in range(self.num_vertices - 1):
            changed = False
            for u in range(self.num_vertices):
                du = dist[u]
                if du == _INF:
                    continue
                for aid in adj[u]:
                    if cap[aid] > 0 and du + cost[aid] < dist[to[aid]]:
                        dist[to[aid]] = du + cost[aid]
                        changed = True
            if not changed:
                break
        else:
            # One more relaxation round detects negative cycles.
            for u in range(self.num_vertices):
                du = dist[u]
                if du == _INF:
                    continue
                for aid in adj[u]:
                    if cap[aid] > 0 and du + cost[aid] < dist[to[aid]]:
                        raise ValueError("graph contains a negative-cost cycle")
        return dist

    def _dijkstra_potentials(self, source: int) -> list[int]:
        """Dijkstra bootstrap, valid when every residual cost is ≥ 0.

        Shortest distances are unique values, so this array is exactly the
        one :meth:`_bellman_ford_potentials` would return.
        """
        adj, to, cap, cost = self._adj, self._to, self._cap, self._cost
        dist = [_INF] * self.num_vertices
        dist[source] = 0
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for aid in adj[u]:
                if cap[aid] <= 0:
                    continue
                nd = d + cost[aid]
                v = to[aid]
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def _initial_potentials(
        self, source: int, perf: SchedPerf | None = None
    ) -> list[int]:
        pot = self._potential
        if pot is not None and self._potential_source == source:
            if perf is not None:
                perf.potential_reuses += 1
            return pot
        if self._min_cost >= 0 and not self._has_flow:
            if perf is not None:
                perf.dijkstra_bootstraps += 1
            return self._dijkstra_potentials(source)
        if perf is not None:
            perf.bellman_ford_runs += 1
        return self._bellman_ford_potentials(source)

    # -- successive shortest paths ---------------------------------------------

    def min_cost_flow(
        self,
        source: int,
        sink: int,
        max_flow: int | None = None,
        *,
        perf: SchedPerf | None = None,
    ) -> tuple[int, int]:
        """Send up to ``max_flow`` units (default: maximum) at minimum cost.

        Returns ``(flow, cost)``.
        """
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else max_flow
        if limit < 0:
            raise ValueError("max_flow must be non-negative")

        potential = self._initial_potentials(source, perf)
        if potential is self._potential:
            potential = list(potential)
        adj, to, cap, cost = self._adj, self._to, self._cap, self._cost
        flow = 0
        total_cost = 0
        while flow < limit:
            # Dijkstra on reduced costs.
            dist = [_INF] * self.num_vertices
            parent = [-1] * self.num_vertices  # arc id used to reach v
            dist[source] = 0
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                pu = potential[u]
                if pu == _INF:
                    continue
                for aid in adj[u]:
                    if cap[aid] <= 0:
                        continue
                    v = to[aid]
                    nd = d + cost[aid] + pu - potential[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent[v] = aid
                        heapq.heappush(heap, (nd, v))
            if dist[sink] == _INF:
                break  # no more augmenting paths
            for v in range(self.num_vertices):
                if dist[v] < _INF and potential[v] < _INF:
                    potential[v] += dist[v]
            # Bottleneck along the path.
            push = limit - flow
            v = sink
            while v != source:
                aid = parent[v]
                if cap[aid] < push:
                    push = cap[aid]
                v = to[aid ^ 1]
            # Augment.
            v = sink
            while v != source:
                aid = parent[v]
                cap[aid] -= push
                cap[aid ^ 1] += push
                total_cost += push * cost[aid]
                v = to[aid ^ 1]
            flow += push
            if perf is not None:
                perf.augmentations += 1
        if flow > 0:
            self._has_flow = True
        self._potential = potential
        self._potential_source = source
        if perf is not None:
            perf.solves += 1
        return flow, total_cost

    def resolve(
        self,
        source: int,
        sink: int,
        max_flow: int | None = None,
        *,
        perf: SchedPerf | None = None,
    ) -> tuple[int, int]:
        """Push additional flow after the network has grown.

        Keeps every unit already routed and augments from the previous
        optimal flow, so a sequence of ``min_cost_flow`` + ``resolve``
        calls reaches the same total cost a from-scratch solve of the
        final network would (see the module docstring for why).  Each
        round runs one SPFA pass over the residual graph that never
        relaxes an arc back into ``source`` — cutting the only possible
        negative cycles — and augments one bottleneck path.

        Returns ``(added_flow, added_cost)`` for the delta only.
        """
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else max_flow
        if limit < 0:
            raise ValueError("max_flow must be non-negative")
        adj, to, cap, cost = self._adj, self._to, self._cap, self._cost
        added = 0
        added_cost = 0
        while added < limit:
            dist = [_INF] * self.num_vertices
            parent = [-1] * self.num_vertices
            dist[source] = 0
            in_queue = [False] * self.num_vertices
            queue: deque[int] = deque([source])
            in_queue[source] = True
            while queue:
                u = queue.popleft()
                in_queue[u] = False
                du = dist[u]
                for aid in adj[u]:
                    v = to[aid]
                    if cap[aid] <= 0 or v == source:
                        continue
                    nd = du + cost[aid]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent[v] = aid
                        if not in_queue[v]:
                            in_queue[v] = True
                            queue.append(v)
            if dist[sink] == _INF:
                break
            push = limit - added
            v = sink
            while v != source:
                aid = parent[v]
                if cap[aid] < push:
                    push = cap[aid]
                v = to[aid ^ 1]
            v = sink
            while v != source:
                aid = parent[v]
                cap[aid] -= push
                cap[aid ^ 1] += push
                added_cost += push * cost[aid]
                v = to[aid ^ 1]
            added += push
            if perf is not None:
                perf.augmentations += 1
        if added > 0:
            self._has_flow = True
        # Potentials from before the growth no longer certify the residual.
        self._potential = None
        if perf is not None:
            perf.resolves += 1
        return added, added_cost

    def reset(self) -> None:
        self._cap[:] = self._orig
        self._has_flow = False
        self._potential = None
