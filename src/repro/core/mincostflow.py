"""Minimum-cost maximum-flow, implemented from scratch.

Successive shortest augmenting paths with Johnson potentials (Bellman–Ford
for the initial potentials because assignment reductions use negative
costs, Dijkstra afterwards).  Integer capacities and costs, so optimal
flows are integral.

This powers the extensions beyond the paper's max-flow formulation:

* :mod:`repro.core.remote_balance` — distribute the *unmatched* (remote)
  reads across replica holders so the remote traffic itself is balanced,
  instead of the paper's uniformly random fallback;
* cost-weighted variants of the single-data matching (e.g. preferring
  less-loaded processes among equally-local choices).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

_INF = 1 << 62


@dataclass
class _Arc:
    to: int
    cap: int
    cost: int
    rev: int
    original_cap: int


@dataclass
class MinCostFlowNetwork:
    """Directed graph with integer capacities and per-unit costs."""

    num_vertices: int
    adj: list[list[_Arc]] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        self.adj = [[] for _ in range(self.num_vertices)]

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ValueError(f"vertex {v} out of range [0, {self.num_vertices})")

    def add_edge(self, u: int, v: int, capacity: int, cost: int) -> tuple[int, int]:
        """Add arc u→v; returns a handle usable with :meth:`flow_on`."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not isinstance(capacity, int) or not isinstance(cost, int):
            raise TypeError("capacities and costs must be integers")
        fwd = _Arc(to=v, cap=capacity, cost=cost, rev=len(self.adj[v]), original_cap=capacity)
        bwd = _Arc(to=u, cap=0, cost=-cost, rev=len(self.adj[u]), original_cap=0)
        self.adj[u].append(fwd)
        self.adj[v].append(bwd)
        return (u, len(self.adj[u]) - 1)

    def flow_on(self, handle: tuple[int, int]) -> int:
        u, idx = handle
        arc = self.adj[u][idx]
        return arc.original_cap - arc.cap

    def _initial_potentials(self, source: int) -> list[int]:
        """Bellman–Ford shortest distances by cost (handles negative costs)."""
        dist = [_INF] * self.num_vertices
        dist[source] = 0
        for _ in range(self.num_vertices - 1):
            changed = False
            for u in range(self.num_vertices):
                if dist[u] == _INF:
                    continue
                for arc in self.adj[u]:
                    if arc.cap > 0 and dist[u] + arc.cost < dist[arc.to]:
                        dist[arc.to] = dist[u] + arc.cost
                        changed = True
            if not changed:
                break
        else:
            # One more relaxation round detects negative cycles.
            for u in range(self.num_vertices):
                if dist[u] == _INF:
                    continue
                for arc in self.adj[u]:
                    if arc.cap > 0 and dist[u] + arc.cost < dist[arc.to]:
                        raise ValueError("graph contains a negative-cost cycle")
        return dist

    def min_cost_flow(
        self, source: int, sink: int, max_flow: int | None = None
    ) -> tuple[int, int]:
        """Send up to ``max_flow`` units (default: maximum) at minimum cost.

        Returns ``(flow, cost)``.
        """
        self._check_vertex(source)
        self._check_vertex(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else max_flow
        if limit < 0:
            raise ValueError("max_flow must be non-negative")

        potential = self._initial_potentials(source)
        flow = 0
        total_cost = 0
        while flow < limit:
            # Dijkstra on reduced costs.
            dist = [_INF] * self.num_vertices
            parent: list[tuple[int, int] | None] = [None] * self.num_vertices
            dist[source] = 0
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                for idx, arc in enumerate(self.adj[u]):
                    if arc.cap <= 0 or potential[u] == _INF:
                        continue
                    nd = d + arc.cost + potential[u] - potential[arc.to]
                    if nd < dist[arc.to]:
                        dist[arc.to] = nd
                        parent[arc.to] = (u, idx)
                        heapq.heappush(heap, (nd, arc.to))
            if dist[sink] == _INF:
                break  # no more augmenting paths
            for v in range(self.num_vertices):
                if dist[v] < _INF and potential[v] < _INF:
                    potential[v] += dist[v]
            # Bottleneck along the path.
            push = limit - flow
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                push = min(push, self.adj[u][idx].cap)
                v = u
            # Augment.
            v = sink
            while v != source:
                u, idx = parent[v]  # type: ignore[misc]
                arc = self.adj[u][idx]
                arc.cap -= push
                self.adj[v][arc.rev].cap += push
                total_cost += push * arc.cost
                v = u
            flow += push
        return flow, total_cost

    def reset(self) -> None:
        for arcs in self.adj:
            for a in arcs:
                a.cap = a.original_cap
