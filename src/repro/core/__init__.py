"""Opass core: locality graph, matching algorithms, assignment scoring."""

from .assignment import (
    Assignment,
    equal_quotas,
    fully_local_tasks,
    is_full_matching,
    load_in_bytes,
    load_in_tasks,
    local_bytes,
    locality_fraction,
)
from .baselines import DefaultDynamicPolicy, random_assignment, rank_interval_assignment
from .bipartite import (
    LocalityGraph,
    ProcessPlacement,
    build_locality_graph,
    clear_graph_cache,
    graph_cache_stats,
    graph_from_filesystem,
)
from .csr import LocalityCSR, build_csr, csr_from_rows
from .delay_scheduling import DelaySchedulingPolicy, LocalityGreedyPolicy
from .dynamic import DynamicPlan, plan_dynamic
from .flownetwork import FlowNetwork
from .heterogeneous import (
    HeterogeneousPlan,
    node_speed_weights,
    plan_heterogeneous,
    proportional_quotas,
)
from .incremental import IncrementalResult, rematch_incremental
from .mincostflow import MinCostFlowNetwork
from .multi_data import MultiDataResult, optimize_multi_data
from .opass import opass_dynamic_plan, opass_multi_data, opass_single_data
from .perf import SchedPerf
from .quincy import optimize_quincy
from .remote_balance import (
    PlannedReplicaChoice,
    RemoteBalancePlanner,
    RemoteBalanceResult,
    plan_remote_reads,
)
from .serialization import (
    assignment_from_dict,
    assignment_to_dict,
    layout_fingerprint,
    load_assignment,
    plan_from_dict,
    plan_to_dict,
    save_assignment,
)
from .single_data import SingleDataResult, optimize_single_data
from .tasks import (
    Task,
    multi_pass_scan_tasks,
    tasks_from_dataset,
    tasks_from_datasets,
    total_task_bytes,
)

__all__ = [
    "Assignment",
    "DefaultDynamicPolicy",
    "DelaySchedulingPolicy",
    "DynamicPlan",
    "FlowNetwork",
    "HeterogeneousPlan",
    "IncrementalResult",
    "LocalityCSR",
    "LocalityGraph",
    "LocalityGreedyPolicy",
    "MinCostFlowNetwork",
    "MultiDataResult",
    "PlannedReplicaChoice",
    "ProcessPlacement",
    "RemoteBalancePlanner",
    "RemoteBalanceResult",
    "SchedPerf",
    "SingleDataResult",
    "Task",
    "build_csr",
    "build_locality_graph",
    "clear_graph_cache",
    "csr_from_rows",
    "equal_quotas",
    "graph_cache_stats",
    "fully_local_tasks",
    "graph_from_filesystem",
    "is_full_matching",
    "load_in_bytes",
    "load_in_tasks",
    "local_bytes",
    "locality_fraction",
    "multi_pass_scan_tasks",
    "node_speed_weights",
    "opass_dynamic_plan",
    "opass_multi_data",
    "opass_single_data",
    "optimize_multi_data",
    "optimize_quincy",
    "optimize_single_data",
    "plan_dynamic",
    "plan_heterogeneous",
    "plan_remote_reads",
    "proportional_quotas",
    "random_assignment",
    "rank_interval_assignment",
    "assignment_from_dict",
    "assignment_to_dict",
    "layout_fingerprint",
    "load_assignment",
    "plan_from_dict",
    "plan_to_dict",
    "rematch_incremental",
    "save_assignment",
    "tasks_from_dataset",
    "tasks_from_datasets",
    "total_task_bytes",
]
