"""Quincy-style min-cost-flow scheduling (related work [Isard et al., SOSP'09]).

The paper's §VI cites Quincy, which "schedule[s] concurrent distributed
jobs with fine-grain resource sharing" by casting scheduling as a global
min-cost flow: every task may run anywhere, but running it away from its
data costs the bytes that must move.  For Opass's single-data setting the
reduction is:

```
s --quota(p), cost 0--> p --1, cost remote_bytes(p, f)--> f --1, cost 0--> t
```

where ``remote_bytes(p, f) = task_bytes(f) − co-located(p, f)``.  A
minimum-cost maximum flow is then the quota-feasible assignment that
minimises the total bytes moved — a *byte-optimal* matching, strictly
stronger than the unit max-flow objective (most tasks local) when task
sizes differ, and identical to it on the paper's equal-chunk benchmark.

The price is solve time: successive shortest paths run one Dijkstra per
task over the complete m×n bipartite graph, versus Dinic on the sparse
locality graph.  ``bench_ext_quincy`` quantifies both sides.
"""

from __future__ import annotations

import logging

import numpy as np

from .assignment import Assignment, equal_quotas
from .bipartite import LocalityGraph
from .mincostflow import MinCostFlowNetwork
from .perf import SchedPerf, wall_clock

logger = logging.getLogger(__name__)

#: Costs are expressed in this many bytes per cost unit to keep the
#: integers small; 1 MB granularity loses nothing at 64 MB chunks.
COST_GRANULARITY = 10**6


def optimize_quincy(
    graph: LocalityGraph,
    *,
    quotas: list[int] | None = None,
    cost_granularity: int = COST_GRANULARITY,
    perf: SchedPerf | None = None,
) -> tuple[Assignment, int]:
    """Byte-optimal assignment via global min-cost flow.

    Returns ``(assignment, remote_cost)`` where ``remote_cost`` is the
    minimised total remote traffic in ``cost_granularity``-byte units.
    """
    if cost_granularity <= 0:
        raise ValueError("cost_granularity must be positive")
    m, n = graph.num_processes, graph.num_tasks
    if quotas is None:
        quotas = equal_quotas(n, m)
    if len(quotas) != m:
        raise ValueError("quota list length != process count")
    if sum(quotas) < n:
        raise ValueError(f"total quota {sum(quotas)} < {n} tasks")

    t0 = wall_clock() if perf is not None else 0.0
    # Vertices: 0 = s, 1..m = processes, m+1..m+n = tasks, m+n+1 = t.
    net = MinCostFlowNetwork(m + n + 2)
    s, t = 0, m + n + 1
    for rank in range(m):
        net.add_edge(s, 1 + rank, quotas[rank], 0)
    handles: dict[tuple[int, int], tuple[int, int]] = {}
    for rank in range(m):
        weights = graph.edges_of_process(rank)
        for task_id in range(n):
            remote = graph.task_bytes(task_id) - weights.get(task_id, 0)
            cost = int(np.ceil(remote / cost_granularity))
            handles[(rank, task_id)] = net.add_edge(
                1 + rank, 1 + m + task_id, 1, cost
            )
    for task_id in range(n):
        net.add_edge(1 + m + task_id, t, 1, 0)

    flow, cost = net.min_cost_flow(s, t, perf=perf)
    if flow != n:
        raise RuntimeError(f"quincy flow routed {flow} of {n} tasks")
    if perf is not None:
        perf.solve_wall += wall_clock() - t0

    assignment = Assignment.empty(m)
    for (rank, task_id), handle in handles.items():
        if net.flow_on(handle) > 0:
            assignment.assign(rank, task_id)
    assignment.validate(n, quotas=quotas)
    logger.info(
        "quincy matching: %d tasks over %d processes, remote cost %d units",
        n, m, cost,
    )
    return assignment, cost
