"""Background traffic: the shared-cluster reality of §V-C.

"Unlike a supercomputer platform, clusters are usually shared by multiple
applications.  Thus, Opass may not greatly enhance the performance of
parallel data requests due to the adjustment of HDFS.  However, Opass
allows the parallel data requests to be served in an optimized way as long
as the cluster nodes have the capability to deliver data…"

:class:`BackgroundTraffic` injects that interference: an open-loop Poisson
stream of remote transfers between random node pairs, sharing the same
fluid resources as the application under test.  Combined with
``ParallelReadRun(..., sim=shared)`` this reproduces the multi-tenant
scenario the paper can only discuss qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dfs.cluster import ClusterSpec
from .engine import Simulation
from .flows import Flow
from .resources import remote_read_path


@dataclass
class BackgroundTraffic:
    """Poisson cross-traffic over a cluster's disks and NICs.

    Parameters
    ----------
    arrival_rate:
        Transfers started per second (cluster-wide).
    transfer_size:
        Bytes per background transfer.
    duration:
        Stop launching new transfers after this simulated time (in-flight
        ones finish naturally).
    """

    sim: Simulation
    spec: ClusterSpec
    arrival_rate: float
    transfer_size: float
    duration: float
    seed: int | np.random.Generator = 0
    started: int = field(default=0, init=False)
    completed: int = field(default=0, init=False)
    bytes_moved: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.transfer_size <= 0:
            raise ValueError("transfer_size must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.spec.num_nodes < 2:
            raise ValueError("background traffic needs at least two nodes")
        self._rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )

    def _random_pair(self) -> tuple[int, int]:
        src, dst = self._rng.choice(self.spec.num_nodes, size=2, replace=False)
        return int(src), int(dst)

    def _launch_one(self) -> None:
        src, dst = self._random_pair()
        if self.spec.rack_uplink_bw is not None:
            path = remote_read_path(
                src, dst,
                server_rack=self.spec.rack_of(src),
                reader_rack=self.spec.rack_of(dst),
            )
        else:
            path = remote_read_path(src, dst)

        def done(_flow: Flow) -> None:
            self.completed += 1
            self.bytes_moved += self.transfer_size

        self.sim.start_flow(
            self.transfer_size, path, done,
            rate_cap=self.spec.remote_stream_bw,
        )
        self.started += 1

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.arrival_rate))
        fire_at = self.sim.now + gap
        if fire_at > self.duration:
            return

        def fire() -> None:
            self._launch_one()
            self._schedule_next()

        self.sim.schedule(gap, fire)

    def prepare(self) -> None:
        """Arm the arrival process (call before driving the clock)."""
        self._schedule_next()
