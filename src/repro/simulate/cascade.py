"""Canonical component-solve memoization for the cascade fast-forward.

The Fig-7-style workloads solve the *same component shapes* millions of
times: a local read is a singleton on its disk chain, a remote read is a
two-flow shape joining the server's and the reader's resource chains.
On a homogeneous cluster those shapes are structurally identical across
every (server, reader) pair — only the resource *names* differ — yet the
name-keyed caches of :class:`~repro.simulate.components.
ComponentAllocator` can never see that (a 512-node sweep touches ~5000
distinct endpoint pairs, so a name-keyed memo hits ~never).

:class:`SolveMemo` closes the gap by hashing each dirty component into a
**canonical form** that strips the names:

* resources are renumbered in first-appearance order over the members'
  paths — exactly the numbering :func:`~repro.simulate.vectorized.
  lower_component` derives, which is also the reference allocator's
  ``users``-dict insertion order;
* the key is the renumbered incidence pattern per member plus the exact
  ``(capacity, penalty)`` float pair per canonical resource and the
  exact per-member rate caps.

Two components with equal canonical keys lower to *identical* flat
structures, and the water-filling kernels of :mod:`repro.simulate.
vectorized` are pure functions of that structure — so the cached rate
vector (and iteration count) is **bit-for-bit** the rates a fresh kernel
run would produce.  No quantization, no tolerance: float capacities are
compared exactly, so a near-miss in capacity is simply a different key.
The memo therefore never changes a single emitted event — it only skips
re-deriving floats that are provably already known (pinned by the
differential tests in ``tests/test_sim_fastforward.py`` and the golden
fixtures, which run with the memo on).

Keys depend on the capacity table handed in at lookup time; the
allocator's table is append-only (``register`` rejects duplicates), so a
cached entry can never be invalidated by a capacity change.  The memo is
per-allocator (per-process) state: with the shared-memory solve pool the
parent consults it *before* batching, so memo hits are never dispatched
and the workers stay stateless — pooled and serial runs consult the very
same memo and stay byte-identical.

Purity contract: lookups read ``Flow.path``/``rate_cap`` and the
capacity table and mutate only this memo's own dict (registered in
``repro.tools.config.DEFAULT_PURE_MODULES``; enforced by OPS103).  The
per-lookup cost is O(deg) — one pass over the member paths — under the
OPS301 contracts declared in ``repro.tools.config``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .flows import Flow

__all__ = ["SolveMemo", "component_key", "pair_key"]

#: Entry cap: one canonical shape is a few hundred bytes, so the default
#: bounds the memo near ten MB.  Heterogeneous sweeps that somehow
#: exceed it drop the coldest guarantee the cheap way — a full clear —
#: rather than paying an LRU chain on every hot-path hit.
DEFAULT_MAX_ENTRIES = 1 << 16


def pair_key(
    fa: "Flow", fb: "Flow", res_caps: dict[str, tuple[float, float]]
) -> Hashable:
    """Canonical key for the ubiquitous two-flow component.

    ``fa``'s path names canonical resources ``0..len(pa)-1`` in order
    (a path never repeats a resource — :class:`Flow` validates that),
    and ``fb``'s path is resolved against it by position scan; both
    match the first-appearance numbering of the general
    :func:`component_key`, so the two key builders may never disagree
    on equal structures.
    """
    pa = fa.path
    pb = fb.path
    caps = [res_caps[r] for r in pa]  # opass: alloc-ok -- |path| <= replication factor
    n = len(pa)
    ids: list[int] = []
    for r in pb:
        try:
            rid = pa.index(r)
        except ValueError:
            rid = n
            n += 1
            caps.append(res_caps[r])
        ids.append(rid)
    return (len(pa), tuple(ids), tuple(caps), fa.rate_cap, fb.rate_cap)  # opass: alloc-ok -- two paths' worth of ids/caps


def component_key(
    members: Sequence["Flow"], res_caps: dict[str, tuple[float, float]]
) -> Hashable:
    """Canonical key for a component of any size (members in active order).

    First-appearance renumbering over the member paths, the exact
    ``(capacity, penalty)`` pair per canonical resource, and the exact
    per-member rate caps — everything the kernels read, nothing else.
    """
    res_idx: dict[str, int] = {}
    caps: list[tuple[float, float]] = []
    sig: list[tuple[tuple[int, ...], float]] = []
    for f in members:
        ids: list[int] = []
        for r in f.path:
            rid = res_idx.get(r)
            if rid is None:
                rid = len(caps)
                res_idx[r] = rid
                caps.append(res_caps[r])
            ids.append(rid)
        rc = f.rate_cap
        sig.append((tuple(ids), math.inf if rc is None else rc))  # opass: alloc-ok -- one member's path
    return (tuple(sig), tuple(caps))  # opass: alloc-ok -- component membership is O(deg) by the allocator contract


class SolveMemo:
    """Canonical-shape cache of solved component rate vectors.

    Values are ``(rates, iterations)`` tuples exactly as the kernels
    returned them: ``rates`` in member (active-list) order, and the
    water-filling iteration count replayed into the perf counters on a
    hit so ``solve_iterations`` keeps measuring the *represented* work
    (the OPS304 echo bounds iterations/event across scales; a memo
    whose hit rate varies by scale must not bend that curve).  Hit
    accounting lives in the allocator (``SimPerf.memo_hits``), keeping
    :meth:`lookup` a pure read.  The method names are deliberately not
    ``get``/``put``: the OPS103 interprocedural pass resolves untyped
    method calls by name, and a mutating ``get`` would shadow every
    ``dict.get`` call site in the project.
    """

    __slots__ = ("_cache", "max_entries")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self._cache: dict[Hashable, tuple[list[float], int]] = {}
        self.max_entries = max_entries

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, key: Hashable) -> tuple[list[float], int] | None:
        """The cached ``(rates, iterations)`` for ``key``, if known."""
        return self._cache.get(key)

    def store(self, key: Hashable, rates: list[float], iterations: int) -> None:
        """Cache a freshly solved shape (bounded; clears when full)."""
        cache = self._cache
        if len(cache) >= self.max_entries:
            cache.clear()
        cache[key] = (rates, iterations)

    def clear(self) -> None:
        self._cache.clear()
