"""Timed dataset ingestion: the HDFS write pipeline.

The paper's context includes parallel writers: "Garth and Sun proposed
methods to allow MPI-based programs to write data, in parallel, into HDFS
and achieve high I/O performance."  This module models that ingest path so
datasets can be *written* on the simulated cluster, not only conjured into
place:

* each chunk's replicas are placed by the file system's placement policy
  (writer-local placement reproduces HDFS's first-replica-on-writer rule);
* the chunk then streams through the HDFS replication pipeline
  writer → r1 → r2 → r3: one fluid flow traversing every hop's NIC and
  every replica's disk, capped at the per-stream ceiling;
* writer processes write their chunks sequentially, in parallel with each
  other, contending on disks/NICs exactly like readers do.

After :meth:`DatasetIngest.run` the dataset is fully registered and
readable — the write and read halves compose into a full data lifecycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.baselines import rank_interval_assignment
from ..core.bipartite import ProcessPlacement
from ..dfs.chunk import Chunk, ChunkId, Dataset
from ..dfs.filesystem import DistributedFileSystem
from .engine import Simulation
from .resources import cluster_resources, disk, nic_rx, nic_tx


@dataclass(frozen=True, slots=True)
class WriteRecord:
    """One chunk write, fully timed."""

    seq: int
    writer_rank: int
    writer_node: int
    chunk: ChunkId
    pipeline: tuple[int, ...]
    issue_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.issue_time


@dataclass
class IngestResult:
    """Everything a write benchmark needs from one ingestion."""

    records: list[WriteRecord]
    makespan: float
    bytes_written: int

    def durations(self) -> np.ndarray:
        ordered = sorted(self.records, key=lambda r: (r.end_time, r.seq))
        return np.array([r.duration for r in ordered])

    def write_stats(self) -> dict[str, float]:
        d = self.durations()
        if d.size == 0:
            return {"avg": 0.0, "max": 0.0, "min": 0.0, "std": 0.0}
        return {
            "avg": float(d.mean()),
            "max": float(d.max()),
            "min": float(d.min()),
            "std": float(d.std()),
        }


def pipeline_path(writer_node: int, replicas: tuple[int, ...]) -> list[str]:
    """Resources one replication pipeline occupies.

    The stream leaves the writer's NIC (unless the first replica is the
    writer itself — HDFS's local write), lands on each replica's disk, and
    is forwarded through each intermediate replica's NIC pair.
    """
    if not replicas:
        raise ValueError("pipeline needs at least one replica")
    path: list[str] = []
    prev = writer_node
    for node in replicas:
        if node != prev:
            path.append(nic_tx(prev))
            path.append(nic_rx(node))
        path.append(disk(node))
        prev = node
    # A pathological placement repeating resources would break the flow
    # model; replicas are distinct nodes so only writer==first can dedupe.
    seen: set[str] = set()
    deduped = []
    for r in path:
        if r not in seen:
            seen.add(r)
            deduped.append(r)
    return deduped


class DatasetIngest:
    """Write a dataset onto the cluster with timed pipeline replication."""

    def __init__(
        self,
        fs: DistributedFileSystem,
        writers: ProcessPlacement,
        dataset: Dataset,
        *,
        assignment: Assignment | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        """
        Parameters
        ----------
        writers:
            The writer processes (MPI ranks) and their nodes.
        assignment:
            Which writer writes which file (task ids index ``dataset.files``);
            defaults to the rank-interval split the paper's MPI writers use.
        """
        self.fs = fs
        self.writers = writers
        self.dataset = dataset
        if assignment is None:
            assignment = rank_interval_assignment(
                len(dataset.files), writers.num_processes
            )
        assignment.validate(len(dataset.files))
        self.assignment = assignment
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

        self.sim = Simulation()
        self.sim.add_resources(cluster_resources(fs.spec))
        self._records: list[WriteRecord] = []
        self._seq = 0
        self._bytes = 0

    def _place_all(self) -> dict[ChunkId, tuple[int, ...]]:
        """Allocate every chunk's replicas (metadata-first, as HDFS does),
        with the writer node offered to the placement policy."""
        owner = self.assignment.process_of()
        layout: dict[ChunkId, tuple[int, ...]] = {}
        for file_idx, meta in enumerate(self.dataset.files):
            writer_node = self.writers.node_of(owner[file_idx])
            for chunk in meta.chunks:
                layout[chunk.id] = self.fs.placement.place_chunk(
                    chunk,
                    self.fs.spec,
                    self.fs.cluster.active_nodes,
                    self.fs.replication,
                    self.fs.rng,
                    writer_node,
                )
        return layout

    def run(self) -> IngestResult:
        """Place, register and stream every chunk; returns timing."""
        layout = self._place_all()
        self.fs.namenode.register_dataset(self.dataset, layout)
        size_of = {c.id: c.size for c in self.dataset.iter_chunks()}
        for cid, nodes in layout.items():
            for node in nodes:
                self.fs.datanodes[node].add_replica(cid, size_of[cid])

        # Per-writer sequential chunk streams.
        queues: dict[int, deque[Chunk]] = {}
        owner = self.assignment.process_of()
        for file_idx, meta in enumerate(self.dataset.files):
            queues.setdefault(owner[file_idx], deque()).extend(meta.chunks)

        def start_next(rank: int) -> None:
            queue = queues.get(rank)
            if not queue:
                return
            chunk = queue.popleft()
            writer_node = self.writers.node_of(rank)
            replicas = layout[chunk.id]
            path = pipeline_path(writer_node, replicas)
            has_network_hop = any(not r.startswith("disk") for r in path)
            latency = self.fs.spec.seek_latency + (
                self.fs.spec.remote_latency if has_network_hop else 0.0
            )
            issue = self.sim.now

            def begin_flow() -> None:
                self.sim.start_flow(
                    chunk.size,
                    path,
                    lambda _flow: finish(chunk, replicas, issue, rank),
                    # A purely local write streams at disk speed; any
                    # networked pipeline is one TCP stream end to end.
                    rate_cap=(
                        self.fs.spec.remote_stream_bw if has_network_hop else None
                    ),
                )

            self.sim.schedule(latency, begin_flow)

        def finish(chunk: Chunk, replicas: tuple[int, ...], issue: float, rank: int) -> None:
            self._records.append(
                WriteRecord(
                    seq=self._seq,
                    writer_rank=rank,
                    writer_node=self.writers.node_of(rank),
                    chunk=chunk.id,
                    pipeline=replicas,
                    issue_time=issue,
                    end_time=self.sim.now,
                )
            )
            self._seq += 1
            self._bytes += chunk.size
            start_next(rank)

        for rank in range(self.writers.num_processes):
            start_next(rank)
        self.sim.run()
        return IngestResult(
            records=self._records,
            makespan=self.sim.now,
            bytes_written=self._bytes,
        )
