"""Failure injection for workload runs.

The paper's reliability story is HDFS's replication ("several identical
copies … for the sake of reliability"); this module exercises it.  A
:class:`FaultPlan` schedules DataNode failures (and optional recoveries)
into a :class:`~repro.simulate.runner.ParallelReadRun`'s clock: at the
failure instant the node is decommissioned, its in-flight serves are
aborted, and the affected readers transparently retry against surviving
replicas — exactly the behaviour a libhdfs client exhibits when a
DataNode connection drops mid-read.

An Opass assignment computed *before* a failure keeps working (reads fall
back to remote replicas, losing locality for the dead node's chunks); the
``reoptimize`` hook lets experiments contrast that with re-running the
matching on the post-failure layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .runner import ParallelReadRun


@dataclass(frozen=True, slots=True)
class NodeFailure:
    """Kill ``node_id`` at simulated ``time`` seconds."""

    time: float
    node_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")


@dataclass(frozen=True, slots=True)
class NodeRecovery:
    """Recommission ``node_id`` at simulated ``time`` seconds.

    The node rejoins with its replica inventory intact (a reboot, not a
    disk loss): subsequent reads may be served from it again.
    """

    time: float
    node_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("recovery time must be non-negative")


@dataclass
class FaultPlan:
    """An ordered set of failure/recovery events to inject into one run."""

    failures: list[NodeFailure] = field(default_factory=list)
    recoveries: list[NodeRecovery] = field(default_factory=list)
    injected: list[str] = field(default_factory=list)

    def fail(self, time: float, node_id: int) -> "FaultPlan":
        self.failures.append(NodeFailure(time, node_id))
        return self

    def recover(self, time: float, node_id: int) -> "FaultPlan":
        self.recoveries.append(NodeRecovery(time, node_id))
        return self

    def attach(self, run: ParallelReadRun) -> None:
        """Schedule every event into the run's simulation clock.

        Must be called before ``run.run()``; events fire at their absolute
        simulated times.
        """
        # The clock is monotone from 0.0, so "has the run started?" is an
        # ordering question — an exact float != would also work today but
        # reads as a tolerance bug (OPS004).
        if run.sim.now > 0.0:
            raise RuntimeError("attach the fault plan before starting the run")
        for failure in self.failures:
            def do_fail(f: NodeFailure = failure) -> None:
                run.fail_node(f.node_id)
                self.injected.append(f"fail:{f.node_id}@{f.time}")

            run.sim.schedule(failure.time, do_fail)
        for recovery in self.recoveries:
            def do_recover(r: NodeRecovery = recovery) -> None:
                run.recover_node(r.node_id)
                self.injected.append(f"recover:{r.node_id}@{r.time}")

            run.sim.schedule(recovery.time, do_recover)
