"""Incremental max-min fair rate allocator.

:func:`repro.simulate.flows.allocate_rates` is a pure function: every call
rebuilds the resource→users index, recounts per-resource concurrency,
recomputes effective capacities and re-sorts the capped flows — O(Σ|path|)
of setup before the water-filling loop even starts, paid on *every* dirty
re-solve, i.e. on essentially every simulated event.  Profiling the
128-node Figure-7 workload put ~90 % of total runtime inside that
function.

:class:`IncrementalAllocator` keeps all of that state persistent and
updates it in O(|path|) when a flow starts, finishes or is cancelled:

* ``conc`` — per-resource concurrency counts (a numpy array);
* ``eff``/``thresh`` — effective capacities and their saturation guards,
  recomputed per *touched resource* on add/remove, never per solve;
* ``users`` — per-resource ordered sets of crossing flows, stored as
  small integer flow ids (a free list recycles ids, so the id space stays
  bounded by the peak concurrent flow count);
* ``capped`` — the rate-capped flows, kept sorted by ``bisect.insort``.

``solve()`` then runs the *same* progressive-filling algorithm as the
reference, but vectorised: per iteration one divide + min gives the
headroom, one fused multiply-subtract drains every live resource, and one
compare finds the saturated ones (their ``free`` is parked at +inf so no
``live`` mask is needed).  Freeze bookkeeping is epoch-stamped plain
lists — no Flow hashing and no numpy scalar boxing in the hot loop.  The
arithmetic is kept operation-for-operation identical to the reference —
same effective-capacity formula, same per-iteration ``free -= delta·k``
updates, same ``1e-9``/``1e-12`` guards — so the returned rates are
**bit-for-bit equal** to ``allocate_rates`` on the same flow set (pinned
by the differential property tests in
``tests/test_properties_allocator.py``).
"""

from __future__ import annotations

from bisect import bisect_left, insort

import numpy as np

from .flows import Flow
from .resources import Resource

__all__ = ["IncrementalAllocator"]

_GROW = 64


class IncrementalAllocator:
    """Persistent water-filling state with O(|path|) add/remove."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        # capacities/penalties/counts live in plain Python lists: the
        # add/remove path does scalar arithmetic on them, and Python float
        # ops are both IEEE-identical to and ~10x cheaper than boxed
        # numpy scalar reads.  Only what solve() consumes vectorised
        # (conc, eff, thresh) is mirrored into numpy arrays.
        self._cap: list[float] = []
        self._pen: list[float] = []
        self._conc_l: list[int] = []
        # float64 on purpose: concurrencies are small integers (exact in
        # float64), and solve() then copies instead of astype()-ing.
        self._conc = np.zeros(_GROW)
        self._eff = np.zeros(_GROW)
        self._thresh = np.zeros(_GROW)
        self._users: list[dict[int, None]] = []
        # per-flow-id state (ids recycled through the free list)
        self._id_of: dict[Flow, int] = {}
        self._path_ids: list[list[int] | None] = []
        self._free_ids: list[int] = []
        self._external_ids = False
        self._frozen_at: list[int] = []
        self._frate: list[float] = []
        self._solve_epoch = 0
        #: sorted by (rate_cap, flow_id) — matches the reference's stable
        #: sort of the insertion-ordered active list.
        self._capped: list[tuple[float, int, int, Flow]] = []
        # reusable solve buffers (sized to the resource count)
        self._rooms = np.zeros(_GROW)
        self._tmp = np.zeros(_GROW)
        self._satbuf = np.zeros(_GROW, dtype=bool)
        #: water-filling iterations performed by the last solve()
        self.last_iterations = 0

    # -- resource registration ------------------------------------------------

    def register(self, name: str, resource: "Resource | float") -> None:
        """Declare a resource (engine calls this from ``add_resource``)."""
        if name in self._index:
            raise ValueError(f"duplicate resource {name!r}")
        i = len(self._index)
        if i >= len(self._conc):
            grow = len(self._conc)
            self._conc = np.concatenate([self._conc, np.zeros(grow)])
            self._eff = np.concatenate([self._eff, np.zeros(grow)])
            self._thresh = np.concatenate([self._thresh, np.zeros(grow)])
            self._rooms = np.zeros(len(self._conc))
            self._tmp = np.zeros(len(self._conc))
            self._satbuf = np.zeros(len(self._conc), dtype=bool)
        if isinstance(resource, Resource):
            cap = float(resource.capacity)
            pen = float(resource.concurrency_penalty)
        else:
            cap = float(resource)
            pen = 0.0
        self._cap.append(cap)
        self._pen.append(pen)
        self._conc_l.append(0)
        self._eff[i] = cap
        self._thresh[i] = 1e-9 * cap
        self._index[name] = i
        self._users.append({})

    def has_resource(self, name: str) -> bool:
        return name in self._index

    def _update_eff(self, ri: int) -> None:
        """Effective capacity after a concurrency change — the scalar twin
        of ``Resource.effective_capacity`` (bitwise-identical ops)."""
        c = self._conc_l[ri]
        cap = self._cap[ri]
        eff = cap if c <= 1 else cap / (1.0 + self._pen[ri] * (c - 1))
        self._eff[ri] = eff
        self._thresh[ri] = 1e-9 * eff

    # -- flow lifecycle (the O(|path|) updates) -------------------------------

    def add(self, flow: Flow, fid: int | None = None) -> int:
        """Start tracking ``flow``; raises ``KeyError`` on unknown resources.

        The caller may supply the flow id (the engine shares its slot ids
        so ``solve(out=...)`` can write rates straight into the engine's
        arrays); callers that do manage every id themselves, so the
        internal free list is bypassed.  Returns the id in use.
        """
        if flow in self._id_of:
            raise ValueError("flow already tracked")
        try:
            path_ids = [self._index[r] for r in flow.path]
        except KeyError as exc:
            raise KeyError(f"flow crosses unknown resource {exc.args[0]!r}") from None
        if fid is not None:
            self._external_ids = True
            while len(self._path_ids) <= fid:
                self._path_ids.append(None)
                self._frozen_at.append(0)
                # 1.0 is the engine's hole sentinel: untracked slots must
                # keep it through solve()'s bulk rate copy.
                self._frate.append(1.0)
        elif self._free_ids:
            fid = self._free_ids.pop()
        else:
            fid = len(self._path_ids)
            self._path_ids.append(None)
            self._frozen_at.append(0)
            self._frate.append(1.0)
        self._id_of[flow] = fid
        self._path_ids[fid] = path_ids
        conc_l, conc, cap_l, pen_l = self._conc_l, self._conc, self._cap, self._pen
        eff_a, thresh_a, users = self._eff, self._thresh, self._users
        for i in path_ids:
            c = conc_l[i] + 1
            conc_l[i] = c
            conc[i] = c
            users[i][fid] = None
            cap = cap_l[i]
            eff = cap if c <= 1 else cap / (1.0 + pen_l[i] * (c - 1))
            eff_a[i] = eff
            thresh_a[i] = 1e-9 * eff
        if flow.rate_cap is not None:
            insort(self._capped, (flow.rate_cap, flow.flow_id, fid, flow))
        return fid

    def remove(self, flow: Flow) -> None:
        """Stop tracking ``flow`` (finished or cancelled)."""
        fid = self._id_of.pop(flow, None)
        if fid is None:
            raise KeyError("flow is not tracked")
        path_ids = self._path_ids[fid]
        self._path_ids[fid] = None
        # restore the hole sentinel (see add())
        self._frate[fid] = 1.0
        if not self._external_ids:
            self._free_ids.append(fid)
        conc_l, conc, cap_l, pen_l = self._conc_l, self._conc, self._cap, self._pen
        eff_a, thresh_a, users = self._eff, self._thresh, self._users
        for i in path_ids:
            c = conc_l[i] - 1
            conc_l[i] = c
            conc[i] = c
            del users[i][fid]
            cap = cap_l[i]
            eff = cap if c <= 1 else cap / (1.0 + pen_l[i] * (c - 1))
            eff_a[i] = eff
            thresh_a[i] = 1e-9 * eff
        if flow.rate_cap is not None:
            key = (flow.rate_cap, flow.flow_id)
            j = bisect_left(self._capped, key, key=lambda e: (e[0], e[1]))
            assert self._capped[j][3] is flow
            del self._capped[j]

    @property
    def active_flows(self) -> int:
        return len(self._id_of)

    def concurrency(self, name: str) -> int:
        """Current flow count crossing ``name`` (for tests/diagnostics)."""
        return self._conc_l[self._index[name]]

    # -- the solver -----------------------------------------------------------

    def solve(self, out: np.ndarray | None = None) -> dict[Flow, float] | None:
        """Max-min fair rates for the tracked flows.

        Bit-for-bit equal to ``allocate_rates(active_flows, resources)``.
        With ``out`` (an array indexed by the shared flow ids) the whole
        per-id rate list is bulk-copied into it and ``None`` is returned —
        the engine's hot path, which skips building a Flow-keyed dict (and
        any index arrays) entirely; untracked slots carry the engine's
        ``1.0`` hole sentinel.
        """
        if not self._id_of:
            self.last_iterations = 0
            return None if out is not None else {}
        n = len(self._index)
        free = self._eff[:n].copy()
        thresh = self._thresh[:n]
        k = self._conc[:n].copy()
        rooms = self._rooms[:n]
        tmp = self._tmp[:n]
        satbuf = self._satbuf[:n]
        users = self._users
        path_ids = self._path_ids
        epoch = self._solve_epoch = self._solve_epoch + 1
        frozen_at = self._frozen_at
        frate = self._frate
        unfrozen = len(self._id_of)
        capped = self._capped
        capped_idx = 0
        num_capped = len(capped)
        level = 0.0
        iterations = 0

        _min = np.minimum.reduce
        with np.errstate(divide="ignore", invalid="ignore"):
            while unfrozen:
                iterations += 1
                # Idle resources (k == 0) yield inf rooms: positive free
                # divides to +inf, and saturated resources were parked at
                # free = +inf below — no live mask required.
                np.divide(free, k, out=rooms)
                delta = float(_min(rooms))
                while capped_idx < num_capped and frozen_at[capped[capped_idx][2]] == epoch:
                    capped_idx += 1
                if capped_idx < num_capped:
                    room = capped[capped_idx][0] - level
                    if room < delta:
                        delta = room
                delta = max(delta, 0.0)
                level += delta
                np.multiply(k, delta, out=tmp)
                np.subtract(free, tmp, out=free)
                np.less_equal(free, thresh, out=satbuf)
                saturated = satbuf.nonzero()[0]
                froze_any = False
                dec: list[int] = []
                for ri in saturated.tolist():
                    for fid in users[ri]:
                        if frozen_at[fid] != epoch:
                            frozen_at[fid] = epoch
                            frate[fid] = level
                            dec.extend(path_ids[fid])
                            froze_any = True
                            unfrozen -= 1
                if saturated.size:
                    # Park drained resources at +inf: they drop out of the
                    # headroom min and the saturation compare for good.
                    free[saturated] = np.inf
                while capped_idx < num_capped:
                    cap_value, _, fid, _f = capped[capped_idx]
                    if frozen_at[fid] == epoch:
                        capped_idx += 1
                        continue
                    if level >= cap_value - 1e-12:
                        # Freeze at the cap, releasing the flow's resource
                        # claims so the remaining flows can grow past it.
                        frozen_at[fid] = epoch
                        frate[fid] = cap_value
                        dec.extend(path_ids[fid])
                        capped_idx += 1
                        froze_any = True
                        unfrozen -= 1
                    else:
                        break
                if not froze_any:
                    # Guard against float underflow stalling the loop.
                    for fid in self._id_of.values():
                        if frozen_at[fid] != epoch:
                            frate[fid] = level
                    break
                if unfrozen and dec:
                    # fromiter avoids ufunc.at's slow generic-sequence
                    # index conversion.
                    np.subtract.at(k, np.fromiter(dec, np.intp, len(dec)), 1.0)

        self.last_iterations = iterations
        if out is not None:
            # Shared-id bulk hand-off: every tracked fid was assigned this
            # epoch, and untracked slots hold the engine's 1.0 sentinel,
            # so the whole list can be copied without building an index.
            out[: len(frate)] = frate
            return None
        return {f: frate[fid] for f, fid in self._id_of.items()}
