"""Capacity resources for the flow-level simulator.

Each cluster node contributes three resources: its disk, its NIC egress and
its NIC ingress.  A transfer (flow) occupies one or more resources for its
whole duration and shares each resource's capacity max-min fairly with the
other flows crossing it — the fluid model of disk-head and network
contention that drives the paper's I/O-time results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfs.cluster import ClusterSpec
from ..units import BytesPerSec


@dataclass(frozen=True, slots=True)
class Resource:
    """A named capacity (bytes/second).

    ``concurrency_penalty`` models service degradation under concurrent
    access: with ``k`` simultaneous flows the resource delivers
    ``capacity / (1 + penalty·(k−1))`` in aggregate.  Disks suffer this
    (seek thrashing between competing streams); network links do not.
    """

    name: str
    capacity: BytesPerSec
    concurrency_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"resource {self.name!r} needs positive capacity")
        if self.concurrency_penalty < 0:
            raise ValueError(f"resource {self.name!r} needs non-negative penalty")

    def effective_capacity(self, concurrency: int) -> BytesPerSec:
        """Aggregate bandwidth delivered to ``concurrency`` simultaneous flows."""
        if concurrency <= 1:
            return self.capacity
        return self.capacity / (1.0 + self.concurrency_penalty * (concurrency - 1))


def disk(node_id: int) -> str:
    """Resource name of a node's disk."""
    return f"disk:{node_id}"


def nic_tx(node_id: int) -> str:
    """Resource name of a node's NIC egress."""
    return f"tx:{node_id}"


def nic_rx(node_id: int) -> str:
    """Resource name of a node's NIC ingress."""
    return f"rx:{node_id}"


def rack_up(rack: int) -> str:
    """Resource name of a rack's uplink (traffic leaving the rack)."""
    return f"rkup:{rack}"


def rack_down(rack: int) -> str:
    """Resource name of a rack's downlink (traffic entering the rack)."""
    return f"rkdn:{rack}"


def cluster_resources(spec: ClusterSpec) -> list[Resource]:
    """The full resource set of a cluster: disk + duplex NIC per node,
    plus per-rack duplex uplinks when the fabric is oversubscribed."""
    out: list[Resource] = []
    for node in spec:
        out.append(
            Resource(disk(node.node_id), node.disk_bw, node.disk_concurrency_penalty)
        )
        out.append(Resource(nic_tx(node.node_id), node.nic_bw))
        out.append(Resource(nic_rx(node.node_id), node.nic_bw))
    if spec.rack_uplink_bw is not None:
        for rack in sorted({n.rack for n in spec}):
            out.append(Resource(rack_up(rack), spec.rack_uplink_bw))
            out.append(Resource(rack_down(rack), spec.rack_uplink_bw))
    return out


def local_read_path(server_node: int) -> list[str]:
    """Resources a local read occupies: just the serving disk."""
    return [disk(server_node)]


def remote_read_path(
    server_node: int,
    reader_node: int,
    *,
    server_rack: int | None = None,
    reader_rack: int | None = None,
) -> list[str]:
    """Resources a remote read occupies.

    Same rack (or no rack modelling): disk + server egress + reader
    ingress.  Cross-rack with an oversubscribed fabric (both rack ids
    given and differing): additionally the server rack's uplink and the
    reader rack's downlink.
    """
    if server_node == reader_node:
        raise ValueError("remote read with server == reader")
    path = [disk(server_node), nic_tx(server_node)]
    if server_rack is not None and reader_rack is not None and server_rack != reader_rack:
        path.append(rack_up(server_rack))
        path.append(rack_down(reader_rack))
    path.append(nic_rx(reader_node))
    return path
