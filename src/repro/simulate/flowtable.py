"""Structure-of-arrays flow slot table for the simulation engine.

The engine tracks every active :class:`~repro.simulate.flows.Flow` in a
dense slot table so the per-event hot path runs as whole-array kernels
instead of per-object attribute walks: ``remaining`` and ``rate`` are
flat float64 arrays indexed by slot id, the settle pass is one fused
``remaining -= rate * dt`` over the full range, and the component
allocator scatters solved rates straight into the ``rate`` array.

:class:`FlowTable` owns that layout:

* **slot recycling** — freed slot ids return through a free list, so the
  arrays stay dense however many flows have come and gone.  Freed slots
  hold the sentinels ``remaining = inf, rate = 1``: a hole's predicted
  completion is ``+inf`` and its remaining never drains, so the
  vectorised settle/sweep/prediction passes run over the whole range
  without masking;
* **generation stamps** — a 64-bit per-slot generation counter, bumped
  every time a slot is released.  A ``(fid, generation)`` pair names one
  specific tenancy of the slot; any reader holding a stale pair detects
  the recycle instead of silently reading the younger flow's state
  (pinned by ``tests/test_sim_flowtable.py``);
* **start epochs** — the simulated time each slot's flow was admitted,
  kept as an array so diagnostics and age-based policies never walk the
  Flow objects;
* **cached length-n views** — ``views()`` returns length-n slices of the
  remaining/rate/scratch arrays, rebuilt only when the slot count grows
  (the only time the backing arrays can reallocate).

The authoritative ``remaining`` lives in the array; the ``Flow`` objects
are synchronised at observation points only (:meth:`sync_remaining`).
The table is a pure container — it never reads the wall clock, never
touches DFS state, and does no float arithmetic beyond the fused settle
update, so it is registered in the OPS103 purity registry and carries
O(deg) cost contracts on the per-event operations (O(n) only in the
whole-range kernels ``settle`` and ``sync_remaining``).
"""

from __future__ import annotations

import numpy as np

from .flows import Flow

__all__ = ["FlowTable"]

#: Initial slot capacity; the arrays double when it is outgrown.
_GROW = 64


class FlowTable:
    """Dense recycled-slot arrays for the active flow set."""

    __slots__ = (
        "flow_at",
        "fid_of",
        "free_ids",
        "rem",
        "rate",
        "scratch",
        "start_epoch",
        "generation",
        "_nview",
        "_rem_v",
        "_rate_v",
        "_scr_v",
    )

    def __init__(self) -> None:
        #: slot id -> Flow (None while the slot is free)
        self.flow_at: list[Flow | None] = []
        #: Flow -> slot id (insertion-ordered, the active registry order)
        self.fid_of: dict[Flow, int] = {}
        #: recycled slot ids, LIFO
        self.free_ids: list[int] = []
        self.rem = np.full(_GROW, np.inf)
        self.rate = np.ones(_GROW)
        #: scratch buffer for the settle/sweep passes (same capacity as
        #: the slot arrays) so the per-event array math allocates nothing
        self.scratch = np.empty(_GROW)
        #: simulated time each slot's flow was admitted
        self.start_epoch = np.zeros(_GROW)
        #: per-slot tenancy stamp; bumped on every release, so a stale
        #: (fid, generation) pair never silently reads a recycled slot
        self.generation = np.zeros(_GROW, dtype=np.int64)
        # cached length-n views of rem/rate/scratch; rebuilt when the
        # slot count changes (the only time the arrays can reallocate)
        self._nview = -1
        self._rem_v = self.rem[:0]
        self._rate_v = self.rate[:0]
        self._scr_v = self.scratch[:0]

    # -- sizing ---------------------------------------------------------------

    def __len__(self) -> int:
        """Active flow count."""
        return len(self.fid_of)

    @property
    def slots(self) -> int:
        """Allocated slot count (active + free)."""
        return len(self.flow_at)

    def views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Length-n views of the remaining/rate/scratch arrays (cached)."""
        n = len(self.flow_at)
        if n != self._nview:
            self._nview = n
            self._rem_v = self.rem[:n]
            self._rate_v = self.rate[:n]
            self._scr_v = self.scratch[:n]
        return self._rem_v, self._rate_v, self._scr_v

    # -- slot lifecycle -------------------------------------------------------

    def acquire(self, flow: Flow, now: float) -> int:
        """Admit ``flow``, returning its slot id.

        The slot starts at the flow's full ``remaining`` with rate 0 —
        the settle pass covering the instant of creation must not move
        a flow the allocator has not rated yet.
        """
        if self.free_ids:
            fid = self.free_ids.pop()
        else:
            fid = len(self.flow_at)
            self.flow_at.append(None)
            if fid >= len(self.rem):
                grow = len(self.rem)
                self.rem = np.concatenate([self.rem, np.full(grow, np.inf)])  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                self.rate = np.concatenate([self.rate, np.ones(grow)])  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                self.start_epoch = np.concatenate(
                    [self.start_epoch, np.zeros(grow)]  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                )
                self.generation = np.concatenate(
                    [self.generation, np.zeros(grow, dtype=np.int64)]  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                )
                self.scratch = np.empty(len(self.rem))  # opass: alloc-ok -- capacity doubling, amortized O(1)/acquire
                self._nview = -1
        self.fid_of[flow] = fid
        self.flow_at[fid] = flow
        flow.fid = fid
        self.rem[fid] = flow.remaining
        self.rate[fid] = 0.0
        self.start_epoch[fid] = now
        return fid

    def release(self, flow: Flow) -> int:
        """Return the flow's slot to the free list, restoring sentinels.

        Bumps the slot's generation stamp: any ``(fid, generation)``
        pair taken before this release is now verifiably stale.
        """
        fid = self.fid_of.pop(flow)
        self.flow_at[fid] = None
        flow.fid = -1
        self.rem[fid] = np.inf
        self.rate[fid] = 1.0
        self.generation[fid] += 1
        self.free_ids.append(fid)
        return fid

    def gen_of(self, fid: int) -> int:
        """The slot's current generation stamp (see :meth:`release`)."""
        return int(self.generation[fid])

    # -- whole-range kernels --------------------------------------------------

    def settle(self, dt: float) -> int:
        """Credit ``dt`` seconds to every slot: ``rem = max(0, rem - rate*dt)``.

        Fused through the scratch buffer — elementwise identical to the
        allocating form.  Free slots are unharmed: their sentinel
        ``inf - 1*dt`` stays ``inf``.  Returns the active flow count
        (for the caller's perf accounting).
        """
        rem, rate, scratch = self.views()
        np.multiply(rate, dt, out=scratch)
        np.subtract(rem, scratch, out=rem)
        np.maximum(rem, 0.0, out=rem)
        return len(self.fid_of)

    def sync_remaining(self) -> None:
        """Copy the authoritative ``rem`` array back onto the Flow objects."""
        rem = self.rem
        for f, fid in self.fid_of.items():
            f.remaining = float(rem[fid])
