"""Execute a parallel read workload on the simulated cluster.

:class:`ParallelReadRun` drives a set of parallel processes (one per MPI
rank, each bound to a cluster node) through a stream of data-processing
tasks.  For every task the process reads the task's input chunks one after
another through the file system's read path (local-first, policy-chosen
remote), optionally spends compute time, then takes its next task.

Task streams come from a :class:`TaskSource`:

* :class:`StaticSource` — a precomputed assignment (rank-interval baseline
  or an Opass matching); supports barrier-synchronised rounds, which is how
  ParaView's rendering pipeline consumes data;
* any object with ``next_task(rank)`` — e.g.
  :class:`repro.core.DefaultDynamicPolicy` or
  :class:`repro.core.DynamicPlan` for master/worker execution.

The run records a :class:`ReadRecord` per chunk read ("we record the I/O
time taken to read each chunk file") and per-node served bytes (the paper's
monitor), which together regenerate Figures 1 and 7–12.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..core.assignment import Assignment
from ..core.bipartite import ProcessPlacement
from ..core.perf import SchedPerf
from ..core.tasks import Task, Wait
from ..dfs.chunk import ChunkId
from ..dfs.filesystem import DistributedFileSystem
from .engine import Simulation
from .iomodel import read_cost
from .resources import cluster_resources

logger = logging.getLogger(__name__)

ComputeModel = Callable[[int, int, np.random.Generator], float]


__all__ = [
    "ComputeModel",
    "ParallelReadRun",
    "ReadRecord",
    "RunResult",
    "StaticSource",
    "TaskSource",
    "Wait",
]


class TaskSource(Protocol):
    """Anything that hands tasks to idle processes."""

    def next_task(self, rank: int) -> "int | Wait | None": ...


class StaticSource:
    """A fixed per-rank task list (static SPMD execution)."""

    def __init__(self, assignment: Assignment) -> None:
        self._queues = {
            rank: deque(tasks) for rank, tasks in assignment.tasks_of.items()
        }

    def next_task(self, rank: int) -> int | None:
        queue = self._queues.get(rank)
        if not queue:
            return None
        return queue.popleft()

    def remaining(self, rank: int) -> int:
        return len(self._queues.get(rank, ()))


# Not frozen: one record is appended per completed read on the hot
# path, and frozen-dataclass construction routes all nine fields
# through object.__setattr__ (~4x the cost).  Treat as immutable.
@dataclass(slots=True)
class ReadRecord:
    """One chunk read, fully timed."""

    seq: int
    rank: int
    task_id: int
    chunk: ChunkId
    server_node: int
    reader_node: int
    local: bool
    issue_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.issue_time


@dataclass
class RunResult:
    """Everything a figure needs from one workload execution."""

    records: list[ReadRecord]
    makespan: float
    bytes_served: dict[int, int]
    local_bytes: int
    remote_bytes: int
    tasks_completed: int
    read_retries: int = 0
    #: simulator instrumentation snapshot (solve counts, heap stats, phase
    #: walls) — see :class:`repro.simulate.perf.SimPerf`.
    sim_perf: dict[str, float] | None = None
    #: scheduler-side instrumentation snapshot (graph builds, matching
    #: solves, cache hits) — see :class:`repro.core.perf.SchedPerf`.
    sched_perf: dict[str, float] | None = None

    def durations(self) -> np.ndarray:
        """Chunk read times ordered by completion (Figure 7(c)'s series)."""
        ordered = sorted(self.records, key=lambda r: (r.end_time, r.seq))
        return np.array([r.duration for r in ordered])

    def io_stats(self) -> dict[str, float]:
        d = self.durations()
        if d.size == 0:
            return {"avg": 0.0, "max": 0.0, "min": 0.0, "std": 0.0}
        return {
            "avg": float(d.mean()),
            "max": float(d.max()),
            "min": float(d.min()),
            "std": float(d.std()),
        }

    def served_bytes_array(self, num_nodes: int) -> np.ndarray:
        out = np.zeros(num_nodes, dtype=np.int64)
        for node, b in self.bytes_served.items():
            out[node] = b
        return out

    def served_stats_mb(self, num_nodes: int) -> dict[str, float]:
        served = self.served_bytes_array(num_nodes) / 1e6
        return {
            "avg": float(served.mean()),
            "max": float(served.max()),
            "min": float(served.min()),
        }

    @property
    def locality_fraction(self) -> float:
        total = self.local_bytes + self.remote_bytes
        return self.local_bytes / total if total else 1.0


@dataclass(slots=True)
class _Outstanding:
    """One read in flight (latency phase or transfer phase)."""

    chunk_id: ChunkId
    plan: object  # ReadPlan; typed loosely to avoid a circular import
    issue_time: float
    flow: object | None = None  # Flow once the transfer started
    retries: int = 0


@dataclass(slots=True)
class _ProcState:
    rank: int
    node: int
    current_task: int | None = None
    pending_chunks: deque[ChunkId] = field(default_factory=deque)
    outstanding: _Outstanding | None = None
    done: bool = False


class ParallelReadRun:
    """One experiment: processes × tasks × file system × simulator."""

    def __init__(
        self,
        fs: DistributedFileSystem,
        placement: ProcessPlacement,
        tasks: list[Task],
        source: TaskSource,
        *,
        compute_time: ComputeModel | float | None = None,
        barrier: bool = False,
        barrier_compute_time: float = 0.0,
        seed: int | np.random.Generator = 0,
        sim: Simulation | None = None,
        sched_perf: SchedPerf | None = None,
    ) -> None:
        """
        Parameters
        ----------
        compute_time:
            Per-task compute after its reads finish: a constant, a callable
            ``(rank, task_id, rng) → seconds``, or None for pure I/O.
        barrier:
            Synchronise processes after every task (round), as ParaView's
            rendering steps do.  Requires a :class:`StaticSource`.
        barrier_compute_time:
            Extra time spent at each barrier after all reads complete (e.g.
            the render/composite phase of a ParaView step).
        sim:
            Share an existing simulation (multi-tenant scenarios: several
            applications and/or background traffic on one cluster clock).
            The caller is then responsible for registering the cluster's
            resources once and for driving the clock — use
            :meth:`prepare`/:meth:`collect` instead of :meth:`run`.
        sched_perf:
            Scheduler-side counters accumulated while *building* the plan
            this run executes (graph builds, matching solves, cache hits).
            When given, a snapshot is attached to the
            :class:`RunResult` as ``sched_perf``.
        """
        if barrier and not isinstance(source, StaticSource):
            raise ValueError("barrier mode requires a StaticSource")
        self.fs = fs
        self.placement = placement
        self.tasks = {t.task_id: t for t in tasks}
        self.source = source
        self.barrier = barrier
        self.barrier_compute_time = barrier_compute_time
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if compute_time is None:
            self._compute: ComputeModel = lambda rank, task, rng: 0.0
        elif callable(compute_time):
            self._compute = compute_time
        else:
            constant = float(compute_time)
            if constant < 0:
                raise ValueError("compute_time must be non-negative")
            self._compute = lambda rank, task, rng: constant

        self.sched_perf = sched_perf
        self._owns_sim = sim is None
        self.sim = Simulation() if sim is None else sim
        if self._owns_sim:
            self.sim.add_resources(cluster_resources(fs.spec))
        self._procs = [
            _ProcState(rank=r, node=placement.node_of(r))
            for r in range(placement.num_processes)
        ]
        self._records: list[ReadRecord] = []
        self._seq = 0
        self._local_bytes = 0
        self._remote_bytes = 0
        self._tasks_completed = 0
        self.read_retries = 0
        self.waits = 0
        self._last_activity = 0.0
        self._served_baseline = dict(fs.bytes_served_per_node())
        # server*num_nodes + reader -> (latency, path, rate_cap).  The
        # cluster spec is frozen, so a read's cost depends only on the
        # endpoint pair (size comes from the chunk itself); the flat int
        # key probes cheaper than a tuple at the large sweep scales.
        self._cost_cache: dict[
            int, tuple[float, tuple[str, ...], float | None]
        ] = {}
        self._cost_stride = fs.spec.num_nodes
        # Barrier bookkeeping.
        self._round_waiting = 0
        self._round_participants = 0

    # -- process state machine ---------------------------------------------------

    def _begin_task(self, state: _ProcState) -> None:
        task_id = self.source.next_task(state.rank)
        if task_id is None:
            state.done = True
            if self.barrier and state.current_task is None:
                self._barrier_arrive()
            return
        if isinstance(task_id, Wait):
            if self.barrier:
                raise ValueError("Wait responses are not allowed in barrier mode")
            self.waits += 1
            self.sim.schedule(task_id.seconds, lambda: self._begin_task(state))
            return
        task = self.tasks[task_id]
        state.current_task = task_id
        state.pending_chunks = deque(task.inputs)
        self._issue_next_chunk(state)

    def _issue_next_chunk(self, state: _ProcState) -> None:
        assert state.current_task is not None
        if not state.pending_chunks:
            self._finish_task(state)
            return
        chunk_id = state.pending_chunks.popleft()
        self._start_read(state, chunk_id, issue_time=self.sim.now, retries=0)

    def _start_read(
        self, state: _ProcState, chunk_id: ChunkId, *, issue_time: float, retries: int
    ) -> None:
        """Resolve and begin one chunk read (fresh attempt or retry)."""
        plan = self.fs.resolve_read(chunk_id, state.node)
        key = plan.server_node * self._cost_stride + plan.reader_node
        cached = self._cost_cache.get(key)
        if cached is None:
            cost = read_cost(plan, self.fs.spec)
            cached = (cost.latency, cost.path, cost.rate_cap)
            self._cost_cache[key] = cached
        latency, path, rate_cap = cached
        size = plan.chunk.size
        outstanding = _Outstanding(
            chunk_id=chunk_id, plan=plan, issue_time=issue_time, retries=retries
        )
        state.outstanding = outstanding

        def after_latency() -> None:
            # A node failure may have replaced this attempt while the read
            # was still positioning; the stale closure must not start a
            # transfer from the dead server.
            if state.outstanding is not outstanding:
                return
            outstanding.flow = self.sim.start_flow(
                size,
                path,
                lambda _flow: self._chunk_done(state, outstanding),
                rate_cap=rate_cap,
            )

        self.sim.schedule(latency, after_latency)

    def _chunk_done(self, state: _ProcState, outstanding: _Outstanding) -> None:
        assert state.current_task is not None
        plan = outstanding.plan
        state.outstanding = None
        # Locality accounting counts completed reads only (an attempt
        # aborted by a node failure contributes no delivered bytes).
        local = plan.reader_node == plan.server_node
        if local:
            self._local_bytes += plan.chunk.size
        else:
            self._remote_bytes += plan.chunk.size
        now = self.sim.now
        self._records.append(
            ReadRecord(
                self._seq,
                state.rank,
                state.current_task,
                plan.chunk.id,
                plan.server_node,
                plan.reader_node,
                local,
                outstanding.issue_time,
                now,
            )
        )
        self._seq += 1
        self._last_activity = now
        self._issue_next_chunk(state)

    # -- failure injection ---------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Kill a storage node now: decommission it and retry affected reads.

        Reads being served by the dead node — still positioning or already
        transferring — are aborted and re-resolved against the surviving
        replicas (fresh latency, fresh serving choice).  The dead node's
        partially-transferred bytes remain in its serve counters, as a real
        monitor would have recorded them.
        """
        self.fs.cluster.decommission(node_id)
        for state in self._procs:
            out = state.outstanding
            if out is None or out.plan.server_node != node_id:
                continue
            if out.flow is not None:
                self.sim.cancel_flow(out.flow)
            self.read_retries += 1
            logger.info(
                "node %d failed: retrying read of %s for rank %d (attempt %d)",
                node_id, out.chunk_id, state.rank, out.retries + 2,
            )
            self._start_read(
                state, out.chunk_id, issue_time=out.issue_time,
                retries=out.retries + 1,
            )

    def recover_node(self, node_id: int) -> None:
        """Bring a node back (it rejoins empty-handed for new resolutions)."""
        self.fs.cluster.recommission(node_id)

    def _finish_task(self, state: _ProcState) -> None:
        task_id = state.current_task
        assert task_id is not None
        state.current_task = None
        self._tasks_completed += 1
        delay = self._compute(state.rank, task_id, self.rng)
        if delay < 0:
            raise ValueError("compute model returned negative time")
        if delay > 0:

            def proceed() -> None:
                self._last_activity = self.sim.now
                if self.barrier:
                    self._barrier_arrive()
                else:
                    self._begin_task(state)

            self.sim.schedule(delay, proceed)
        else:
            # Inline `proceed` — the zero-compute case is the hot path
            # and must not pay a closure per task.
            self._last_activity = self.sim.now
            if self.barrier:
                self._barrier_arrive()
            else:
                self._begin_task(state)

    # -- barrier rounds -----------------------------------------------------------

    def _barrier_arrive(self) -> None:
        self._round_waiting += 1
        if self._round_waiting >= self._round_participants:
            # The render/composite phase only follows rounds that actually
            # processed data; when every process arrived because its queue
            # was empty there is no frame to render.
            all_done = all(p.done for p in self._procs)
            delay = 0.0 if all_done else self.barrier_compute_time

            def release() -> None:
                self._last_activity = self.sim.now
                self._start_round()

            if delay > 0:
                self.sim.schedule(delay, release)
            else:
                release()

    def _start_round(self) -> None:
        self._round_waiting = 0
        live = [p for p in self._procs if not p.done]
        self._round_participants = len(live)
        if not live:
            return
        for state in live:
            self._begin_task(state)
        # Processes whose queues just ran dry flagged themselves done and
        # arrived at the barrier; if *all* did, the run is over.

    # -- entry point ----------------------------------------------------------------

    def prepare(self) -> None:
        """Enqueue the initial work without driving the clock.

        For multi-tenant scenarios: prepare every run (and any background
        traffic) on the shared simulation, call ``sim.run()`` once, then
        :meth:`collect` each run's results.
        """
        if self.barrier:
            self._start_round()
        else:
            for state in self._procs:
                self._begin_task(state)

    def collect(self) -> RunResult:
        """Gather results after the (possibly shared) simulation finished."""
        if any(not p.done or p.current_task is not None for p in self._procs):
            raise RuntimeError("collect() before all processes finished")
        return self._build_result()

    def run(self) -> RunResult:
        self.prepare()
        self.sim.run()
        return self._build_result()

    def _build_result(self) -> RunResult:
        served_now = self.fs.bytes_served_per_node()
        delta = {
            node: served_now[node] - self._served_baseline.get(node, 0)
            for node in served_now
        }
        return RunResult(
            records=self._records,
            makespan=self._last_activity,
            bytes_served=delta,
            local_bytes=self._local_bytes,
            remote_bytes=self._remote_bytes,
            tasks_completed=self._tasks_completed,
            read_retries=self.read_retries,
            sim_perf=self.sim.perf.snapshot(),
            sched_perf=(
                self.sched_perf.snapshot()
                if self.sched_perf is not None
                else None
            ),
        )
