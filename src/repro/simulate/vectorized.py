"""Flat-array water-filling kernels for component-sliced rate solves.

:func:`~repro.simulate.flows.allocate_rates` is the semantic reference:
progressive filling over a ``Flow``/``Resource`` object graph, one dict
lookup and one attribute walk per touched resource per iteration.  This
module lowers one connected component to flat arrays once and then runs
the *same* decision sequence over integer indices:

* **lowering** (:func:`lower_component`): resources are renumbered in
  first-appearance order over the members' paths (the reference's
  ``users`` dict insertion order), producing a flow→resource incidence
  list in CSR form (``fr_ptr``/``fr_res``), the reverse resource→flow
  lists, per-resource effective capacities at the component's
  concurrency, and per-flow rate caps (``inf`` = uncapped);
* **kernel dispatch** (:func:`solve_lowered`): a closed-form path for
  singleton components, a flat scalar kernel for small components, and a
  numpy kernel (:data:`VECTOR_MIN_FLOWS` and up) that batches the
  water-level search, saturation detection and freezing as whole-array
  operations.

Identity is the contract, not an aspiration.  Every float operation is
the one the reference performs: effective capacity uses the same
``capacity / (1 + penalty·(k-1))`` expression, the water level is
accumulated in the same order (``level += delta`` with ``delta`` the
minimum over the same candidate set — float min is order-independent),
saturation uses the same ``free ≤ 1e-9·capacity`` guard, caps freeze in
the same stable ``rate_cap``-sorted order inside the same
``level ≥ cap − 1e-12`` window, and the float-underflow fallback freezes
the same survivors at the same level.  Freeze *order* within an
iteration only permutes commutative updates (every frozen flow gets the
same level; per-resource unfrozen counts are decremented once per frozen
flow), so rates are bit-for-bit equal to the reference's — pinned by the
differential fuzz suite in ``tests/test_properties_vectorized.py``.

The lowered form is five plain arrays, so it can cross a process
boundary through ``multiprocessing.shared_memory`` without pickling
``Flow`` objects — :mod:`repro.parallel.pool` workers call
:func:`solve_arrays` on reconstructed views and obtain byte-identical
rates (same kernels, same dispatch cutoff).

Purity contract: kernels read ``Flow.path``/``rate_cap`` and the
capacity table and write only locals (registered in
``repro.tools.config.DEFAULT_PURE_MODULES``; enforced by OPS103).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .flows import Flow

__all__ = [
    "VECTOR_MIN_FLOWS",
    "Lowered",
    "lower_component",
    "res_entry",
    "solve_arrays",
    "solve_component",
    "solve_lowered",
    "solve_single",
    "solve_small",
]

#: Components with at least this many flows run the numpy kernel; below
#: it the flat scalar kernel wins (array construction costs more than it
#: saves on the measured workloads, where the median component is one
#: flow and p90 ≈ 3).
VECTOR_MIN_FLOWS = 32


def res_entry(resource: "object") -> tuple[float, float]:
    """``(capacity, concurrency_penalty)`` floats for a resource entry.

    Plain float capacities behave like penalty-free resources — the same
    convention :func:`~repro.simulate.flows.effective_capacity` applies.
    """
    if isinstance(resource, (int, float)):
        return (float(resource), 0.0)
    return (resource.capacity, resource.concurrency_penalty)


class Lowered:
    """One component lowered to flat index form (see module docstring)."""

    __slots__ = ("nflows", "nres", "fr", "rusers", "eff", "kcnt", "caps")

    def __init__(
        self,
        nflows: int,
        nres: int,
        fr: list[list[int]],
        rusers: list[list[int]],
        eff: list[float],
        kcnt: list[int],
        caps: list[float],
    ) -> None:
        self.nflows = nflows
        self.nres = nres
        #: flow index -> local resource ids along its path (path order).
        self.fr = fr
        #: local resource id -> flow indices crossing it (flow order).
        self.rusers = rusers
        #: effective capacity per local resource at component concurrency.
        self.eff = eff
        #: initial unfrozen-flow count per local resource.
        self.kcnt = kcnt
        #: per-flow rate cap (``math.inf`` = uncapped).
        self.caps = caps


def lower_component(
    members: Sequence["Flow"], res_caps: dict[str, tuple[float, float]]
) -> Lowered:
    """Lower ``members`` (active-list order) against a capacity table.

    ``res_caps`` maps resource names to ``(capacity, penalty)`` floats
    (see :func:`res_entry`).  Resource numbering and concurrency are
    derived from the members alone, exactly as the reference derives its
    ``users`` table from the flow list it is handed.
    """
    res_idx: dict[str, int] = {}
    raw: list[tuple[float, float]] = []
    kcnt: list[int] = []
    rusers: list[list[int]] = []
    fr: list[list[int]] = []
    caps: list[float] = []
    for fi, f in enumerate(members):
        ids = []
        for r in f.path:
            rid = res_idx.get(r)
            if rid is None:
                rid = len(raw)
                res_idx[r] = rid
                raw.append(res_caps[r])
                kcnt.append(0)
                rusers.append([])
            ids.append(rid)
            kcnt[rid] += 1
            rusers[rid].append(fi)
        fr.append(ids)
        cap = f.rate_cap
        caps.append(math.inf if cap is None else cap)
    eff = [
        cap if n <= 1 else cap / (1.0 + pen * (n - 1))
        for (cap, pen), n in zip(raw, kcnt)
    ]
    return Lowered(len(members), len(raw), fr, rusers, eff, kcnt, caps)


def solve_single(
    flow: "Flow", res_caps: dict[str, tuple[float, float]]
) -> float:
    """Closed form for a singleton component.

    With one flow every resource has concurrency 1, so the first (and
    only) water-filling iteration freezes the flow at ``min(capacity
    along path, rate_cap)`` — in every reference branch (saturation,
    cap freeze, and the cap==capacity tie) the frozen rate is exactly
    this minimum, as plain float ``min`` over the same values.
    """
    rate = math.inf
    for r in flow.path:
        cap = res_caps[r][0]
        if cap < rate:
            rate = cap
    rc = flow.rate_cap
    if rc is not None and rc < rate:
        rate = rc
    return rate


def solve_pair(
    fa: "Flow", fb: "Flow", res_caps: dict[str, tuple[float, float]]
) -> tuple[list[float], int]:
    """Fused kernel for the ubiquitous two-flow component.

    Resources partition into three groups — exclusive to ``fa``,
    exclusive to ``fb``, shared — whose concurrency counts depend only
    on which of the two flows is still unfrozen.  The iteration is the
    reference loop with the per-resource bookkeeping specialised to
    those groups: same deltas (float ``min`` over the same values),
    same saturation thresholds, same freeze order, so the rates are
    bit-for-bit the reference's.  (Path membership tests suffice for
    the concurrency counts: :class:`Flow` rejects duplicate resources
    in a path at construction.)
    """
    pa, pb = fa.path, fb.path
    a_free: list[float] = []
    a_thr: list[float] = []
    b_free: list[float] = []
    b_thr: list[float] = []
    s_free: list[float] = []
    s_thr: list[float] = []
    for r in pa:
        cap, pen = res_caps[r]
        if r in pb:
            e = cap / (1.0 + pen)
            s_free.append(e)
            s_thr.append(1e-9 * e)
        else:
            a_free.append(cap)
            a_thr.append(1e-9 * cap)
    for r in pb:
        if r not in pa:
            cap, pen = res_caps[r]
            b_free.append(cap)
            b_thr.append(1e-9 * cap)
    ca = fa.rate_cap
    cb = fb.rate_cap
    ca = math.inf if ca is None else ca
    cb = math.inf if cb is None else cb
    # Stable cap-sorted freeze order over (fa, fb).
    if cb < ca:
        cap_order = ((cb, 1), (ca, 0))
    else:
        cap_order = ((ca, 0), (cb, 1))
    live = [True, True]
    rates = [0.0, 0.0]
    level = 0.0
    iterations = 0
    while live[0] or live[1]:
        iterations += 1
        delta = math.inf
        if live[0]:
            for v in a_free:
                if v < delta:
                    delta = v
        if live[1]:
            for v in b_free:
                if v < delta:
                    delta = v
        k = live[0] + live[1]
        if s_free:
            for v in s_free:
                room = v / k
                if room < delta:
                    delta = room
        for cap, fi in cap_order:
            if live[fi]:
                if cap != math.inf:
                    room = cap - level
                    if room < delta:
                        delta = room
                break
        if delta < 0.0:
            delta = 0.0
        level += delta
        froze_any = False
        sat_a = sat_b = sat_s = False
        if live[0] and a_free:
            for i in range(len(a_free)):
                a_free[i] -= delta
                if a_free[i] <= a_thr[i]:
                    sat_a = True
        if live[1] and b_free:
            for i in range(len(b_free)):
                b_free[i] -= delta
                if b_free[i] <= b_thr[i]:
                    sat_b = True
        if s_free:
            d2 = delta * k
            for i in range(len(s_free)):
                s_free[i] -= d2
                if s_free[i] <= s_thr[i]:
                    sat_s = True
        if live[0] and (sat_a or sat_s):
            live[0] = False
            rates[0] = level
            froze_any = True
        if live[1] and (sat_b or sat_s):
            live[1] = False
            rates[1] = level
            froze_any = True
        for cap, fi in cap_order:
            if not live[fi]:
                continue
            if cap != math.inf and level >= cap - 1e-12:
                live[fi] = False
                rates[fi] = cap
                froze_any = True
            else:
                break
        if not froze_any:
            if live[0]:
                live[0] = False
                rates[0] = level
            if live[1]:
                live[1] = False
                rates[1] = level
    return rates, iterations


def solve_small(
    members: Sequence["Flow"], res_caps: dict[str, tuple[float, float]]
) -> tuple[list[float], int]:
    """Fused lowering + scalar filling for small multi-flow components.

    The measured workloads solve millions of 2–3 flow components, where
    building the :class:`Lowered` index structures costs more than the
    filling itself.  This kernel lowers inline (no reverse resource→flow
    lists) and detects freezes by scanning the few member flows against
    the saturated-resource list — the same freezes the reference performs,
    in a different (commutative) order within the iteration.
    """
    nflows = len(members)
    res_idx: dict[str, int] = {}
    raw: list[tuple[float, float]] = []
    kcnt: list[int] = []
    fres: list[list[int]] = []
    caps: list[float] = []
    for f in members:
        ids = []
        for r in f.path:
            rid = res_idx.get(r)
            if rid is None:
                rid = len(raw)
                res_idx[r] = rid
                raw.append(res_caps[r])
                kcnt.append(0)
            ids.append(rid)
            kcnt[rid] += 1
        fres.append(ids)
        c = f.rate_cap
        caps.append(math.inf if c is None else c)
    nres = len(raw)
    eff = [
        cp[0] if n <= 1 else cp[0] / (1.0 + cp[1] * (n - 1))
        for cp, n in zip(raw, kcnt)
    ]
    free = list(eff)
    frozen = [False] * nflows
    rates = [0.0] * nflows
    capped = _capped_order(caps)
    ncapped = len(capped)
    ci = 0
    level = 0.0
    iterations = 0
    remaining = nflows
    while remaining:
        iterations += 1
        delta = math.inf
        for rid in range(nres):
            k = kcnt[rid]
            if k:
                room = free[rid] / k
                if room < delta:
                    delta = room
        while ci < ncapped and frozen[capped[ci]]:
            ci += 1
        if ci < ncapped:
            room = caps[capped[ci]] - level
            if room < delta:
                delta = room
        if delta < 0.0:
            delta = 0.0
        level += delta
        froze_any = False
        saturated: list[int] = []
        for rid in range(nres):
            k = kcnt[rid]
            if k:
                free[rid] -= delta * k
                if free[rid] <= 1e-9 * eff[rid]:
                    saturated.append(rid)
        if saturated:
            for fi in range(nflows):
                if not frozen[fi]:
                    ids = fres[fi]
                    for rid in saturated:
                        if rid in ids:
                            frozen[fi] = True
                            rates[fi] = level
                            remaining -= 1
                            for r2 in ids:
                                kcnt[r2] -= 1
                            froze_any = True
                            break
        while ci < ncapped:
            fi = capped[ci]
            if frozen[fi]:
                ci += 1
                continue
            if level >= caps[fi] - 1e-12:
                frozen[fi] = True
                rates[fi] = caps[fi]
                remaining -= 1
                for r2 in fres[fi]:
                    kcnt[r2] -= 1
                ci += 1
                froze_any = True
            else:
                break
        if not froze_any:
            for fi in range(nflows):
                if not frozen[fi]:
                    frozen[fi] = True
                    rates[fi] = level
            remaining = 0
    return rates, iterations


def solve_component(
    members: Sequence["Flow"], res_caps: dict[str, tuple[float, float]]
) -> tuple[list[float], int]:
    """Rates (member order) + iterations via the full kernel dispatch.

    The one entry point whose dispatch mirrors
    :class:`~repro.simulate.components.ComponentAllocator`: closed form
    for singletons, :func:`solve_small` below the cutoff, the numpy
    kernel at and above it.
    """
    k = len(members)
    if k == 1:
        return [solve_single(members[0], res_caps)], 1
    if k == 2:
        return solve_pair(members[0], members[1], res_caps)
    if k < VECTOR_MIN_FLOWS:
        return solve_small(members, res_caps)
    return _solve_numpy(lower_component(members, res_caps))


def _capped_order(caps: list[float]) -> list[int]:
    """Capped flow indices, stably sorted by cap (reference freeze order)."""
    idx = [fi for fi, c in enumerate(caps) if c != math.inf]
    idx.sort(key=caps.__getitem__)
    return idx


def _solve_scalar(low: Lowered) -> tuple[list[float], int]:
    """Flat scalar kernel: the reference loop over integer indices."""
    nflows = low.nflows
    nres = low.nres
    fr = low.fr
    rusers = low.rusers
    eff = low.eff
    caps = low.caps
    kcnt = list(low.kcnt)
    free = list(eff)
    thresh = [1e-9 * c for c in eff]
    frozen = [False] * nflows
    rates = [0.0] * nflows
    capped = _capped_order(caps)
    ncapped = len(capped)
    ci = 0
    level = 0.0
    iterations = 0
    remaining = nflows
    while remaining:
        iterations += 1
        delta = math.inf
        for rid in range(nres):
            k = kcnt[rid]
            if k:
                room = free[rid] / k
                if room < delta:
                    delta = room
        while ci < ncapped and frozen[capped[ci]]:
            ci += 1
        if ci < ncapped:
            room = caps[capped[ci]] - level
            if room < delta:
                delta = room
        if delta < 0.0:
            delta = 0.0
        level += delta
        froze_any = False
        saturated: list[int] = []
        for rid in range(nres):
            k = kcnt[rid]
            if k:
                free[rid] -= delta * k
                if free[rid] <= thresh[rid]:
                    saturated.append(rid)
        for rid in saturated:
            for fi in rusers[rid]:
                if not frozen[fi]:
                    frozen[fi] = True
                    rates[fi] = level
                    remaining -= 1
                    for r2 in fr[fi]:
                        kcnt[r2] -= 1
                    froze_any = True
        while ci < ncapped:
            fi = capped[ci]
            if frozen[fi]:
                ci += 1
                continue
            if level >= caps[fi] - 1e-12:
                frozen[fi] = True
                rates[fi] = caps[fi]
                remaining -= 1
                for r2 in fr[fi]:
                    kcnt[r2] -= 1
                ci += 1
                froze_any = True
            else:
                break
        if not froze_any:
            # Float underflow stalled the level; freeze the survivors.
            for fi in range(nflows):
                if not frozen[fi]:
                    frozen[fi] = True
                    rates[fi] = level
            remaining = 0
    return rates, iterations


def _solve_numpy(low: Lowered) -> tuple[list[float], int]:
    """Numpy kernel: the reference loop as whole-array operations.

    Per iteration: one masked min for the water-level search, one fused
    subtract for the capacity drain, one comparison for saturation
    detection, and scatter/bincount passes for masked freezing.  Scalar
    accumulators (``level``, ``delta``) stay Python floats so their
    rounding matches the reference exactly.
    """
    nflows = low.nflows
    nres = low.nres
    eff = np.asarray(low.eff)
    thresh = 1e-9 * eff
    free = eff.copy()
    kcnt = np.asarray(low.kcnt, dtype=np.int64)
    caps = low.caps
    lens = np.fromiter((len(ids) for ids in low.fr), np.int64, nflows)
    fr_flat = np.fromiter(
        (rid for ids in low.fr for rid in ids),
        np.int64,
        int(lens.sum()),  # opass: reassoc-ok -- int64 sum, addition is exact
    )
    flow_idx = np.repeat(np.arange(nflows, dtype=np.int64), lens)
    fr_ptr = np.zeros(nflows + 1, np.int64)
    np.cumsum(lens, out=fr_ptr[1:])
    frozen = np.zeros(nflows, bool)
    newf = np.empty(nflows, bool)
    rates = np.zeros(nflows)
    capped = _capped_order(caps)
    ncapped = len(capped)
    ci = 0
    level = 0.0
    iterations = 0
    remaining = nflows
    while remaining:
        iterations += 1
        live = kcnt > 0
        rooms = free[live] / kcnt[live]
        delta = float(rooms.min())
        while ci < ncapped and frozen[capped[ci]]:
            ci += 1
        if ci < ncapped:
            room = caps[capped[ci]] - level
            if room < delta:
                delta = room
        if delta < 0.0:
            delta = 0.0
        level += delta
        free[live] -= delta * kcnt[live]
        sat = live & (free <= thresh)
        froze_any = False
        if sat.any():
            hit = sat[fr_flat]
            newf[:] = False
            newf[flow_idx[hit]] = True
            newf &= ~frozen
            nnew = int(newf.sum())  # opass: reassoc-ok -- bool sum, exact count
            if nnew:
                rates[newf] = level
                frozen |= newf
                remaining -= nnew
                kcnt -= np.bincount(fr_flat[newf[flow_idx]], minlength=nres)
                froze_any = True
        while ci < ncapped:
            fi = capped[ci]
            if frozen[fi]:
                ci += 1
                continue
            if level >= caps[fi] - 1e-12:
                frozen[fi] = True
                rates[fi] = caps[fi]
                remaining -= 1
                kcnt[fr_flat[fr_ptr[fi] : fr_ptr[fi + 1]]] -= 1
                ci += 1
                froze_any = True
            else:
                break
        if not froze_any:
            rates[~frozen] = level
            remaining = 0
    return rates.tolist(), iterations


def solve_lowered(low: Lowered) -> tuple[list[float], int]:
    """Rates (member order) + iteration count for a lowered component."""
    if low.nflows >= VECTOR_MIN_FLOWS:
        return _solve_numpy(low)
    return _solve_scalar(low)


def solve_arrays(
    lens: np.ndarray,
    fr_flat: np.ndarray,
    eff: np.ndarray,
    caps: np.ndarray,
) -> tuple[list[float], int]:
    """Solve one component shipped as flat arrays (the pool wire format).

    ``lens[i]`` is flow *i*'s path length, ``fr_flat`` the concatenated
    local resource ids, ``eff`` the per-resource effective capacities and
    ``caps`` the per-flow rate caps (``inf`` = uncapped).  Reconstructs
    the lowered form and runs the same kernel dispatch as the in-process
    path, so pooled and serial solves are byte-identical.
    """
    nres = len(eff)
    fr: list[list[int]] = []
    rusers: list[list[int]] = [[] for _ in range(nres)]
    kcnt = [0] * nres
    pos = 0
    flat = fr_flat.tolist()
    for fi, ln in enumerate(lens.tolist()):
        ids = flat[pos : pos + ln]
        pos += ln
        fr.append(ids)
        for rid in ids:
            kcnt[rid] += 1
            rusers[rid].append(fi)
    low = Lowered(len(fr), nres, fr, rusers, eff.tolist(), kcnt, caps.tolist())
    return solve_lowered(low)
