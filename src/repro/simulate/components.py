"""Component-sliced max-min fair rate allocator.

The fluid contention model builds flow paths only from per-node disk/NIC
resources plus rack uplinks (:mod:`repro.simulate.resources`,
:mod:`repro.simulate.iomodel`), so the flow–resource bipartite graph of a
running workload decomposes into many small connected components: a local
read is a singleton component on its disk, a remote read joins exactly the
server's and the reader's resources.  Measured on the Fig-7
max-contention workload at 256 nodes the active flow set splits into ~110
components and the component touched by one event holds a *median of one
flow* (p90 ≈ 3).

Max-min water-filling is exactly separable per connected component — the
water level of one component never interacts with another's — so a flow
start/finish/cancel only needs the rates of *its own component* re-solved.
:class:`ComponentAllocator` exploits that:

* **components are maintained incrementally**: adding a flow unions the
  components of its path's resources (union-by-size absorption); removing
  a flow marks its component *shrunk*, and the possible split is handled
  by a lazy BFS re-partition of shrunk components at the next
  :meth:`solve` — classic union-find with lazy splitting;
* **per-component rates are cached**: :meth:`solve` re-runs water-filling
  only for the dirty components (those whose flow membership changed), by
  literally calling the reference
  :func:`~repro.simulate.flows.allocate_rates` on the component's flows in
  active-list order.  The arithmetic restricted to a component is
  therefore *operation-for-operation identical* to running the reference
  allocator on that component in isolation (pinned by the differential
  property tests in ``tests/test_properties_components.py``);
* **changed flows are reported**: :attr:`last_changed` names the slot ids
  whose rate was re-solved, which is what lets the engine's
  lazy-invalidation completion heap re-predict only those flows instead
  of scanning the whole slot range every epoch.

End-to-end rates can differ from one *global* reference solve in the last
ulp (the global water level interleaves freeze deltas across components,
so its float rounding differs), but per component they are exact and the
end-to-end deviation is ≤ 1e-9 relative — also pinned by the property
suite.

Purity contract: the solve path reads :class:`Resource` capacities and
``Flow`` paths and mutates only this allocator's private bookkeeping —
never ``Cluster``/``NameNode``/``DataNode`` state (enforced
interprocedurally by opass-verify rule OPS103; the module is registered in
``repro.tools.config.DEFAULT_PURE_MODULES``).
"""

from __future__ import annotations

import math

import numpy as np

from .cascade import SolveMemo, component_key, pair_key
from .flows import Flow, allocate_rates
from .resources import Resource
from .vectorized import (
    VECTOR_MIN_FLOWS,
    _solve_numpy,
    lower_component,
    res_entry,
    solve_pair,
    solve_single,
    solve_small,
)

__all__ = ["ComponentAllocator"]


class ComponentAllocator:
    """Persistent per-component water-filling with O(affected component)
    re-solve.

    API-compatible with
    :class:`~repro.simulate.allocator.IncrementalAllocator`
    (``register``/``add``/``remove``/``solve``), plus the component
    introspection the engine's lazy completion heap and the perf counters
    consume (:attr:`last_changed`, :attr:`component_count`, ...).
    """

    def __init__(self, *, kernel: str = "auto", pool: object | None = None) -> None:
        """
        Parameters
        ----------
        kernel:
            ``"auto"`` (default) dispatches each dirty component to the
            flat kernels in :mod:`repro.simulate.vectorized` — closed
            form for singletons, flat scalar below
            :data:`~repro.simulate.vectorized.VECTOR_MIN_FLOWS` flows,
            numpy at and above it; ``"reference"`` hands every component
            to :func:`~repro.simulate.flows.allocate_rates` instead
            (differential CI).
        pool:
            Optional shared-memory solve pool (duck-typed:
            ``min_flows``, ``solve_batch(lowered)`` and
            ``last_dispatch_wall`` — see
            :class:`repro.parallel.pool.ComponentSolvePool`).  When the
            dirty multi-flow components carry at least ``pool.min_flows``
            flows in total they are lowered once and solved by the pool's
            workers; below the threshold (or with no pool) the same
            kernels run in-process, byte-identically.
        """
        if kernel not in ("auto", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self._kernel = kernel
        self._pool = pool
        #: canonical-shape memo over solved multi-flow components (see
        #: :mod:`repro.simulate.cascade`); sound because ``register``
        #: never updates an existing capacity entry.
        self._memo = SolveMemo()
        #: path tuple -> min capacity along the path (singleton closed
        #: form before the rate cap) — same append-only soundness.
        self._single_caps: dict[tuple[str, ...], float] = {}
        #: resource name -> Resource (or plain float capacity); the dict
        #: handed verbatim to the reference allocator.
        self._resources: dict[str, Resource | float] = {}
        #: resource name -> (capacity, penalty) floats for the kernels.
        self._res_caps: dict[str, tuple[float, float]] = {}
        #: active-flow count per resource (only resources with ≥ 1 flow).
        self._res_users: dict[str, int] = {}
        #: resource name -> component id (only active resources).
        self._res_comp: dict[str, int] = {}
        #: component id -> member flows / resources (insertion-ordered
        #: dicts — never bare sets, so iteration order is deterministic).
        self._comp_flows: dict[int, dict[Flow, None]] = {}
        self._comp_res: dict[int, dict[str, None]] = {}
        self._comp_of: dict[Flow, int] = {}
        #: components whose membership changed since the last solve.
        self._dirty: dict[int, None] = {}
        #: dirty components that *lost* a flow — only these can have
        #: split, so only these pay the BFS re-partition at solve time.
        self._shrunk: dict[int, None] = {}
        self._next_comp = 0
        # flow ids (engine slot ids when supplied, internal otherwise)
        self._id_of: dict[Flow, int] = {}
        self._free_ids: list[int] = []
        self._next_fid = 0
        self._external_ids = False
        #: global insertion order — the reference allocator's active-list
        #: order, which fixes the stable sort of rate-capped flows.
        self._order: dict[Flow, int] = {}
        self._next_order = 0
        #: cached solved rate per flow (valid for clean components).
        self._rate_of: dict[Flow, float] = {}
        #: results of the last :meth:`solve` (instrumentation + the
        #: engine's lazy-heap feed)
        self.last_iterations = 0
        self.last_changed: list[int] = []
        self.last_component_solves = 0
        self.last_component_size_max = 0
        self.last_flows_resolved = 0
        self.last_vectorized_solves = 0
        self.last_parallel_solves = 0
        self.last_pool_wall = 0.0
        self.last_memo_hits = 0

    # -- resource registration ------------------------------------------------

    def register(self, name: str, resource: "Resource | float") -> None:
        """Declare a resource (engine calls this from ``add_resource``)."""
        if name in self._resources:
            raise ValueError(f"duplicate resource {name!r}")
        self._resources[name] = resource
        self._res_caps[name] = res_entry(resource)

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    # -- flow lifecycle -------------------------------------------------------

    def add(self, flow: Flow, fid: int | None = None) -> int:
        """Start tracking ``flow``; raises ``KeyError`` on unknown resources.

        Unions the components of the path's resources (the flow may bridge
        several) and marks the resulting component dirty.  O(|path| +
        size of the smaller merged components).  The caller may supply the
        slot id (the engine shares its ids so ``solve(out=...)`` writes
        rates straight into the engine's array).
        """
        if flow in self._id_of:
            raise ValueError("flow already tracked")
        # One pass validates the path AND collects the components it
        # touches (insertion-ordered, deduped); nothing below mutates
        # until the whole path is known-good.
        hit: dict[int, None] = {}
        resources = self._resources
        res_comp = self._res_comp
        for r in flow.path:
            if r not in resources:
                raise KeyError(f"flow crosses unknown resource {r!r}")
            cid_r = res_comp.get(r)
            if cid_r is not None:
                hit[cid_r] = None
        if fid is not None:
            self._external_ids = True
        elif self._free_ids:
            fid = self._free_ids.pop()
        else:
            fid = self._next_fid
            self._next_fid += 1
        self._id_of[flow] = fid
        if not hit:
            cid = self._next_comp
            self._next_comp += 1
            self._comp_flows[cid] = {}
            self._comp_res[cid] = {}
        else:
            cids = list(hit)  # opass: alloc-ok -- at most |path| component ids
            comp_flows = self._comp_flows
            cid = max(cids, key=lambda c: len(comp_flows[c]))
            for other in cids:
                if other != cid:
                    self._absorb(cid, other)
        self._comp_flows[cid][flow] = None
        self._comp_of[flow] = cid
        comp_res = self._comp_res[cid]
        res_users = self._res_users
        for r in flow.path:
            res_users[r] = res_users.get(r, 0) + 1
            res_comp[r] = cid
            comp_res[r] = None
        self._dirty[cid] = None
        self._order[flow] = self._next_order
        self._next_order += 1
        return fid

    def _absorb(self, target: int, other: int) -> None:
        """Merge component ``other`` into ``target`` (union by size)."""
        target_flows = self._comp_flows[target]
        comp_of = self._comp_of
        for f in self._comp_flows.pop(other):
            target_flows[f] = None
            comp_of[f] = target
        target_res = self._comp_res[target]
        res_comp = self._res_comp
        for r in self._comp_res.pop(other):
            target_res[r] = None
            res_comp[r] = target
        self._dirty.pop(other, None)
        # A shrunk component may already be disconnected internally; the
        # merged component inherits the pending re-partition.
        if self._shrunk.pop(other, None) is not None:
            self._shrunk[target] = None

    def remove(self, flow: Flow) -> None:
        """Stop tracking ``flow`` (finished or cancelled).

        O(|path|); marks the flow's component dirty *and shrunk* — the
        component may now be disconnected, which the next :meth:`solve`
        resolves by lazy re-partition.
        """
        fid = self._id_of.pop(flow, None)
        if fid is None:
            raise KeyError("flow is not tracked")
        if not self._external_ids:
            self._free_ids.append(fid)
        cid = self._comp_of.pop(flow)
        del self._comp_flows[cid][flow]
        del self._order[flow]
        self._rate_of.pop(flow, None)
        comp_res = self._comp_res[cid]
        res_users = self._res_users
        res_comp = self._res_comp
        for r in flow.path:
            n = res_users[r] - 1
            if n:
                res_users[r] = n
            else:
                del res_users[r]
                del res_comp[r]
                del comp_res[r]
        if self._comp_flows[cid]:
            self._dirty[cid] = None
            self._shrunk[cid] = None
        else:
            del self._comp_flows[cid]
            del self._comp_res[cid]
            self._dirty.pop(cid, None)
            self._shrunk.pop(cid, None)

    # -- introspection --------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._id_of)

    @property
    def component_count(self) -> int:
        """Number of tracked components (exact only after a solve —
        dirty-shrunk components may still be awaiting re-partition)."""
        return len(self._comp_flows)

    def concurrency(self, name: str) -> int:
        """Current flow count crossing ``name`` (for tests/diagnostics)."""
        return self._res_users.get(name, 0)

    def components(self) -> list[list[Flow]]:
        """The current partition, each component in active-list order.

        After a :meth:`solve` this is exactly the connected-component
        partition of the flow–resource graph; between a remove and the
        next solve a component may temporarily be a coarsening (the union
        of the true components it will split into).
        """
        order = self._order
        return [
            sorted(members, key=order.__getitem__)
            for _, members in sorted(self._comp_flows.items())
        ]

    # -- the solver -----------------------------------------------------------

    def _repartition(self, cid: int) -> list[int]:
        """Split component ``cid`` into its true connected components.

        BFS over the member flows via shared resources — O(Σ|path|) of the
        component.  The first (largest-seed-agnostic, deterministic)
        group keeps ``cid``; splinters get fresh ids.  Returns the ids.
        """
        members = self._comp_flows[cid]
        if len(members) <= 1:
            return [cid]
        if len(members) == 2:
            # The dominant shrink case after a remove: either the two
            # survivors still share a resource (no split) or they are two
            # singletons — decidable by one path intersection, no BFS.
            f0, f1 = members
            path1 = f1.path
            for r in f0.path:
                if r in path1:
                    return [cid]
            gid = self._next_comp
            self._next_comp += 1
            del self._comp_flows[cid][f1]
            self._comp_flows[gid] = {f1: None}
            self._comp_of[f1] = gid
            g_res: dict[str, None] = {}
            comp_res = self._comp_res[cid]
            res_comp = self._res_comp
            for r in path1:
                del comp_res[r]
                g_res[r] = None
                res_comp[r] = gid
            self._comp_res[gid] = g_res
            return [cid, gid]
        res_flows: dict[str, list[Flow]] = {}
        for f in members:
            for r in f.path:
                res_flows.setdefault(r, []).append(f)
        seen: dict[Flow, None] = {}
        groups: list[dict[Flow, None]] = []
        for f in members:
            if f in seen:
                continue
            seen[f] = None
            group: dict[Flow, None] = {}
            stack = [f]
            while stack:
                g = stack.pop()
                group[g] = None
                for r in g.path:
                    for h in res_flows[r]:
                        if h not in seen:
                            seen[h] = None
                            stack.append(h)
            groups.append(group)
        if len(groups) == 1:
            return [cid]
        out: list[int] = []
        comp_of = self._comp_of
        res_comp = self._res_comp
        for i, group in enumerate(groups):
            if i == 0:
                gid = cid
            else:
                gid = self._next_comp
                self._next_comp += 1
            g_res: dict[str, None] = {}
            for f in group:
                comp_of[f] = gid
                for r in f.path:
                    g_res[r] = None
                    res_comp[r] = gid
            self._comp_flows[gid] = group
            self._comp_res[gid] = g_res
            out.append(gid)
        return out

    def solve(self, out: "np.ndarray | None" = None) -> dict[Flow, float] | None:
        """Max-min fair rates, re-solved only for the dirty components.

        Each dirty (and, if shrunk, freshly re-partitioned) component is
        solved in isolation — by the flat kernels of
        :mod:`repro.simulate.vectorized` (``kernel="auto"``, optionally
        batched to the shared-memory pool) or by the reference
        :func:`allocate_rates` (``kernel="reference"``); either way the
        rates are bit-for-bit the reference's.  Clean components keep
        their cached rates untouched.  With ``out`` (the engine's
        slot-indexed rate array) only the re-solved flows' slots are
        written and ``None`` is returned; :attr:`last_changed` then
        lists exactly those slot ids.  Without ``out`` a Flow-keyed dict
        of *all* tracked flows is returned (the reference-compatible API
        the property tests consume).
        """
        self.last_iterations = 0
        self.last_component_solves = 0
        self.last_component_size_max = 0
        self.last_flows_resolved = 0
        self.last_vectorized_solves = 0
        self.last_parallel_solves = 0
        self.last_pool_wall = 0.0
        self.last_memo_hits = 0
        changed: list[int] = []
        if self._dirty:
            # The static lattice sums per-component work as if every dirty
            # component were the whole problem; the bound below counts the
            # dirty set, which is what the O(n log n) contract is about
            # (cross-checked dynamically by the OPS304 solve_iterations echo).
            if self._kernel == "reference":
                self._solve_reference(changed, out)  # opass: ignore[OPS302] -- amortized over the dirty set
            else:
                self._solve_kernels(changed, out)  # opass: ignore[OPS302] -- amortized over the dirty set
            self._dirty.clear()
            self._shrunk.clear()
        self.last_changed = changed
        if out is not None:
            return None
        return {f: self._rate_of[f] for f in self._id_of}

    def _dirty_groups(self) -> list[int]:
        """Dirty component ids, with shrunk components re-partitioned."""
        gids: list[int] = []
        for cid in list(self._dirty):
            if cid in self._shrunk:
                gids.extend(self._repartition(cid))
            else:
                gids.append(cid)
        return gids

    def _solve_reference(
        self, changed: list[int], out: "np.ndarray | None"
    ) -> None:
        """The pre-kernel solve loop: reference allocator per component."""
        order = self._order
        id_of = self._id_of
        rate_of = self._rate_of
        resources = self._resources
        stats: dict[str, int] = {}
        for gid in self._dirty_groups():
            members = sorted(self._comp_flows[gid], key=order.__getitem__)
            rates = allocate_rates(members, resources, stats=stats)
            self.last_iterations += stats["iterations"]
            self.last_component_solves += 1
            k = len(members)
            if k > self.last_component_size_max:
                self.last_component_size_max = k
            self.last_flows_resolved += k
            if out is None:
                for f in members:
                    rate_of[f] = rates[f]
                    changed.append(id_of[f])
            else:
                for f in members:
                    rate = rates[f]
                    rate_of[f] = rate
                    fid = id_of[f]
                    out[fid] = rate
                    changed.append(fid)

    def _solve_single_cached(self, f: Flow) -> float:
        """Singleton closed form through the path-keyed capacity memo.

        ``min(capacity along path)`` is order-independent float ``min``,
        so caching it per path tuple and applying the rate cap after is
        bit-identical to :func:`solve_single` — and the capacity table
        is append-only, so the cached minimum can never go stale.
        """
        path = f.path
        rate = self._single_caps.get(path)
        if rate is None:
            res_caps = self._res_caps
            rate = math.inf
            for r in path:
                cap = res_caps[r][0]
                if cap < rate:
                    rate = cap
            self._single_caps[path] = rate
        rc = f.rate_cap
        if rc is not None and rc < rate:
            return rc
        return rate

    def _solve_kernels(
        self, changed: list[int], out: "np.ndarray | None"
    ) -> None:
        """Flat-kernel solve loop, optionally batching to the pool.

        Every multi-flow component goes through the canonical-shape
        memo first (:mod:`repro.simulate.cascade`): a hit replays the
        cached rates (and the iteration count, so ``solve_iterations``
        keeps measuring the represented water-filling work); a miss
        runs the usual kernel dispatch and stores the result.
        """
        if self._pool is not None:
            self._solve_pooled(changed, out)
            return
        order = self._order
        id_of = self._id_of
        rate_of = self._rate_of
        res_caps = self._res_caps
        comp_flows = self._comp_flows
        memo = self._memo
        solves = 0
        size_max = self.last_component_size_max
        resolved = 0
        iterations = 0
        vectorized = 0
        memo_hits = 0
        for gid in self._dirty_groups():
            group = comp_flows[gid]
            k = len(group)
            solves += 1
            resolved += k
            if k > size_max:
                size_max = k
            if k == 1:
                f = next(iter(group))
                rate = self._solve_single_cached(f)
                iterations += 1
                rate_of[f] = rate
                fid = id_of[f]
                if out is not None:
                    out[fid] = rate
                changed.append(fid)
                continue
            if k == 2:
                fa, fb = group
                if order[fa] > order[fb]:
                    fa, fb = fb, fa
                members = (fa, fb)
                key = pair_key(fa, fb, res_caps)
            else:
                members = sorted(group, key=order.__getitem__)
                key = component_key(members, res_caps)
            hit = memo.lookup(key)
            if hit is not None:
                rates, iters = hit
                memo_hits += 1
            elif k == 2:
                rates, iters = solve_pair(members[0], members[1], res_caps)
                memo.store(key, rates, iters)
            elif k < VECTOR_MIN_FLOWS:
                rates, iters = solve_small(members, res_caps)
                memo.store(key, rates, iters)
            else:
                rates, iters = _solve_numpy(lower_component(members, res_caps))
                memo.store(key, rates, iters)
            if k >= VECTOR_MIN_FLOWS:
                # Counted by represented kernel, hit or miss, so the
                # counter stays comparable across memo hit rates.
                vectorized += 1
            iterations += iters
            if out is None:
                for f, rate in zip(members, rates):
                    rate_of[f] = rate
                    changed.append(id_of[f])
            else:
                for f, rate in zip(members, rates):
                    rate_of[f] = rate
                    fid = id_of[f]
                    out[fid] = rate
                    changed.append(fid)
        self.last_iterations += iterations
        self.last_component_solves += solves
        self.last_component_size_max = size_max
        self.last_flows_resolved += resolved
        self.last_vectorized_solves += vectorized
        self.last_memo_hits += memo_hits

    def _solve_pooled(
        self, changed: list[int], out: "np.ndarray | None"
    ) -> None:
        """Kernel solve with multi-flow components batched to the pool.

        Falls back to the in-process kernels when the dirty set carries
        fewer than the pool's measured ``min_flows`` — the dispatch
        round-trip would cost more than it saves.  Either way the rates
        are byte-identical: the workers run the same kernels on the same
        lowered arrays.  The canonical-shape memo is consulted *before*
        batching — hits are never dispatched, misses are solved by the
        workers and stored on return — so the memo stays parent-only
        state, the workers stay stateless, and pooled runs consult the
        exact same cache a serial run would (memo coherence by
        construction).
        """
        order = self._order
        id_of = self._id_of
        rate_of = self._rate_of
        res_caps = self._res_caps
        comp_flows = self._comp_flows
        memo = self._memo
        pool = self._pool
        comps: list[list[Flow]] = []
        keys: list[object | None] = []
        cached: list[tuple[list[float], int] | None] = []
        memo_hits = 0
        total_miss = 0
        for gid in self._dirty_groups():
            group = comp_flows[gid]
            if len(group) == 1:
                comps.append(list(group))
                keys.append(None)
                cached.append(None)
                continue
            members = sorted(group, key=order.__getitem__)
            if len(members) == 2:
                key = pair_key(members[0], members[1], res_caps)
            else:
                key = component_key(members, res_caps)
            hit = memo.lookup(key)
            if hit is not None:
                memo_hits += 1
            else:
                total_miss += len(members)
            comps.append(members)
            keys.append(key)
            cached.append(hit)
        results = None
        if total_miss >= pool.min_flows:
            lowered = [
                lower_component(m, res_caps)
                for m, hit in zip(comps, cached)
                if len(m) > 1 and hit is None
            ]
            if lowered:
                results = iter(pool.solve_batch(lowered))
                self.last_parallel_solves = len(lowered)
                self.last_pool_wall = pool.last_dispatch_wall
        solves = 0
        size_max = self.last_component_size_max
        resolved = 0
        iterations = 0
        vectorized = 0
        for members, key, hit in zip(comps, keys, cached):
            k = len(members)
            solves += 1
            resolved += k
            if k > size_max:
                size_max = k
            if k == 1:
                f = members[0]
                rate = self._solve_single_cached(f)
                iterations += 1
                rate_of[f] = rate
                fid = id_of[f]
                if out is not None:
                    out[fid] = rate
                changed.append(fid)
                continue
            if k >= VECTOR_MIN_FLOWS:
                vectorized += 1
            if hit is not None:
                rates, iters = hit
            else:
                if results is not None:
                    rates, iters = next(results)
                elif k < VECTOR_MIN_FLOWS:
                    rates, iters = solve_small(members, res_caps)
                else:
                    rates, iters = _solve_numpy(
                        lower_component(members, res_caps)
                    )
                memo.store(key, rates, iters)
            iterations += iters
            if out is None:
                for f, rate in zip(members, rates):
                    rate_of[f] = rate
                    changed.append(id_of[f])
            else:
                for f, rate in zip(members, rates):
                    rate_of[f] = rate
                    fid = id_of[f]
                    out[fid] = rate
                    changed.append(fid)
        self.last_iterations += iterations
        self.last_component_solves += solves
        self.last_component_size_max = size_max
        self.last_flows_resolved += resolved
        self.last_vectorized_solves += vectorized
        self.last_memo_hits += memo_hits
