"""Instrumentation counters for the simulator hot path.

Every :class:`~repro.simulate.engine.Simulation` owns a :class:`SimPerf`;
the engine and the allocators bump its counters as they work.  The
counters are plain ints/floats (negligible overhead) and answer the
questions a performance regression hunt starts with: how many rate
re-solves ran, how many water-filling iterations they took, how many
components they touched, how the lazy completion heap behaved (pushes,
stale pops, full prediction rebuilds), and how much wall time each phase
consumed.

``repro.metrics`` re-exports :class:`SimPerf` and
:func:`repro.metrics.export.perf_summary`; the runner attaches a snapshot
to every :class:`~repro.simulate.runner.RunResult` so benchmarks can
report solve counts next to event throughput (see
``benchmarks/bench_sim_performance.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: The one sanctioned wall-clock source in the simulation layers.
#: Simulation code must never read wall time directly (enforced by
#: opass-lint rule OPS002) — results must depend only on the simulated
#: clock.  Instrumentation that genuinely wants wall time (phase
#: timings below) reads it through this alias.
wall_clock = time.perf_counter


@dataclass
class SimPerf:
    """Counters and per-phase wall clocks for one simulation."""

    #: allocator runs (rate re-solves)
    solves: int = 0
    #: total water-filling iterations across all solves
    solve_iterations: int = 0
    #: full completion-prediction passes (one per rate epoch that reached
    #: a peek in the cache modes; 0 in component mode, which re-predicts
    #: per changed flow instead)
    prediction_rebuilds: int = 0
    #: per-flow completion predictions pushed onto the lazy heap
    heap_pushes: int = 0
    #: invalidated heap entries lazily discarded on pop
    stale_pops: int = 0
    #: peak connected-component count of the flow–resource graph
    components: int = 0
    #: per-component water-filling runs (component allocator only)
    component_solves: int = 0
    #: largest component (in flows) any single solve touched
    component_size_max: int = 0
    #: total flows whose rate was re-solved across all component solves
    component_flows_resolved: int = 0
    #: component solves that ran the numpy water-filling kernel
    #: (components of ≥ VECTOR_MIN_FLOWS flows; see repro.simulate.vectorized)
    vectorized_solves: int = 0
    #: component solves dispatched to the shared-memory worker pool
    parallel_solves: int = 0
    #: multi-flow component solves answered by the canonical-shape memo
    #: (see repro.simulate.cascade) instead of re-entering a kernel
    memo_hits: int = 0
    #: fast-forwarded completion runs: maximal stretches of ≥ 2
    #: consecutive completion events the fused engine loop processed
    #: without returning to the general event loop
    fastforward_cascades: int = 0
    #: completion events beyond the first inside those runs (the events
    #: whose per-event dispatch the fast-forward layer absorbed)
    cascade_events: int = 0
    #: settle passes (bulk remaining updates at rate-epoch boundaries)
    settles: int = 0
    #: flow-remaining updates performed by those settle passes
    flows_settled: int = 0
    #: events by kind
    flow_events: int = 0
    timer_events: int = 0
    #: events beyond the first drained by a coalesced same-timestamp
    #: timer wave (one settle/solve cycle instead of one per event)
    coalesced_events: int = 0
    #: flow lifecycle
    flows_started: int = 0
    flows_finished: int = 0
    flows_cancelled: int = 0
    #: wall seconds per phase
    solve_wall: float = 0.0
    settle_wall: float = 0.0
    scan_wall: float = 0.0
    #: wall seconds spent inside pool dispatch (subset of solve_wall)
    pool_dispatch_wall: float = 0.0
    #: wall seconds inside Simulation.run end to end; the derived
    #: ``event_loop_wall`` residual (run minus the instrumented phases)
    #: is the per-event Python bookkeeping this engine exists to shrink
    run_wall: float = 0.0

    _extra: dict[str, float] = field(default_factory=dict, repr=False)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy, JSON-ready (for RunResult / BENCH files).

        Emits the counter fields plus the derived
        ``component_size_mean``.  The pre-PR-4 aliases (``heap_rebuilds``
        / ``heap_pops``) are gone: read ``prediction_rebuilds`` /
        ``stale_pops``.
        """
        solves = self.component_solves
        out = {
            "solves": self.solves,
            "solve_iterations": self.solve_iterations,
            "prediction_rebuilds": self.prediction_rebuilds,
            "heap_pushes": self.heap_pushes,
            "stale_pops": self.stale_pops,
            "components": self.components,
            "component_solves": self.component_solves,
            "component_size_max": self.component_size_max,
            "component_size_mean": (
                self.component_flows_resolved / solves if solves else 0.0
            ),
            "component_flows_resolved": self.component_flows_resolved,
            "vectorized_solves": self.vectorized_solves,
            "parallel_solves": self.parallel_solves,
            "memo_hits": self.memo_hits,
            "fastforward_cascades": self.fastforward_cascades,
            "cascade_events": self.cascade_events,
            "settles": self.settles,
            "flows_settled": self.flows_settled,
            "flow_events": self.flow_events,
            "timer_events": self.timer_events,
            "coalesced_events": self.coalesced_events,
            "flows_started": self.flows_started,
            "flows_finished": self.flows_finished,
            "flows_cancelled": self.flows_cancelled,
            "solve_wall": self.solve_wall,
            "settle_wall": self.settle_wall,
            "scan_wall": self.scan_wall,
            "pool_dispatch_wall": self.pool_dispatch_wall,
            "run_wall": self.run_wall,
            "event_loop_wall": self.event_loop_wall,
        }
        out.update(self._extra)
        return out

    def reset(self) -> None:
        """Zero every counter (reuse one simulation across phases)."""
        self.__init__()

    @property
    def events(self) -> int:
        return self.flow_events + self.timer_events

    @property
    def event_loop_wall(self) -> float:
        """Residual engine overhead: run wall minus the instrumented
        solve/settle/scan/pool phases (pool dispatch is already inside
        ``solve_wall``; subtracting it again keeps the residual a strict
        lower bound on loop bookkeeping).  Clamped at zero — phase
        clocks on loaded runners can jitter past the enclosing run."""
        residual = (
            self.run_wall
            - self.solve_wall
            - self.settle_wall
            - self.scan_wall
            - self.pool_dispatch_wall
        )
        return residual if residual > 0.0 else 0.0
