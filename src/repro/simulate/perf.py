"""Instrumentation counters for the simulator hot path.

Every :class:`~repro.simulate.engine.Simulation` owns a :class:`SimPerf`;
the engine and the incremental allocator bump its counters as they work.
The counters are plain ints/floats (negligible overhead) and answer the
questions a performance regression hunt starts with: how many rate
re-solves ran, how many water-filling iterations they took, how often the
completion heap was rebuilt versus served from cache, and how much wall
time each phase consumed.

``repro.metrics`` re-exports :class:`SimPerf` and
:func:`repro.metrics.export.perf_summary`; the runner attaches a snapshot
to every :class:`~repro.simulate.runner.RunResult` so benchmarks can
report solve counts next to event throughput (see
``benchmarks/bench_sim_performance.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: The one sanctioned wall-clock source in the simulation layers.
#: Simulation code must never read wall time directly (enforced by
#: opass-lint rule OPS002) — results must depend only on the simulated
#: clock.  Instrumentation that genuinely wants wall time (phase
#: timings below) reads it through this alias.
wall_clock = time.perf_counter


@dataclass
class SimPerf:
    """Counters and per-phase wall clocks for one simulation."""

    #: allocator runs (rate re-solves)
    solves: int = 0
    #: total water-filling iterations across all solves
    solve_iterations: int = 0
    #: completion-heap rebuilds (one per rate epoch that reached a peek)
    heap_rebuilds: int = 0
    #: lazy-deleted stale heap entries skipped during peeks
    heap_pops: int = 0
    #: settle passes (bulk remaining updates at rate-epoch boundaries)
    settles: int = 0
    #: flow-remaining updates performed by those settle passes
    flows_settled: int = 0
    #: events by kind
    flow_events: int = 0
    timer_events: int = 0
    #: flow lifecycle
    flows_started: int = 0
    flows_finished: int = 0
    flows_cancelled: int = 0
    #: wall seconds per phase
    solve_wall: float = 0.0
    settle_wall: float = 0.0
    scan_wall: float = 0.0

    _extra: dict[str, float] = field(default_factory=dict, repr=False)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy, JSON-ready (for RunResult / BENCH files)."""
        out = {
            "solves": self.solves,
            "solve_iterations": self.solve_iterations,
            "heap_rebuilds": self.heap_rebuilds,
            "heap_pops": self.heap_pops,
            "settles": self.settles,
            "flows_settled": self.flows_settled,
            "flow_events": self.flow_events,
            "timer_events": self.timer_events,
            "flows_started": self.flows_started,
            "flows_finished": self.flows_finished,
            "flows_cancelled": self.flows_cancelled,
            "solve_wall": self.solve_wall,
            "settle_wall": self.settle_wall,
            "scan_wall": self.scan_wall,
        }
        out.update(self._extra)
        return out

    def reset(self) -> None:
        """Zero every counter (reuse one simulation across phases)."""
        self.__init__()

    @property
    def events(self) -> int:
        return self.flow_events + self.timer_events
