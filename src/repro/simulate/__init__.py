"""Flow-level discrete-event simulation of the cluster's disks and network."""

from .allocator import IncrementalAllocator
from .background import BackgroundTraffic
from .components import ComponentAllocator
from .engine import REMAINING_EPS, Simulation
from .faults import FaultPlan, NodeFailure, NodeRecovery
from .flows import Flow, allocate_rates, verify_allocation
from .perf import SimPerf
from .ingest import DatasetIngest, IngestResult, WriteRecord, pipeline_path
from .iomodel import ReadCost, read_cost, uncontended_read_time
from .resources import (
    Resource,
    cluster_resources,
    disk,
    local_read_path,
    nic_rx,
    nic_tx,
    rack_down,
    rack_up,
    remote_read_path,
)
from .runner import (
    ParallelReadRun,
    ReadRecord,
    RunResult,
    StaticSource,
    TaskSource,
    Wait,
)

__all__ = [
    "REMAINING_EPS",
    "BackgroundTraffic",
    "ComponentAllocator",
    "DatasetIngest",
    "FaultPlan",
    "Flow",
    "IncrementalAllocator",
    "IngestResult",
    "NodeFailure",
    "NodeRecovery",
    "ParallelReadRun",
    "ReadCost",
    "ReadRecord",
    "Resource",
    "RunResult",
    "SimPerf",
    "Simulation",
    "StaticSource",
    "WriteRecord",
    "TaskSource",
    "Wait",
    "allocate_rates",
    "cluster_resources",
    "disk",
    "local_read_path",
    "nic_rx",
    "nic_tx",
    "rack_down",
    "rack_up",
    "pipeline_path",
    "read_cost",
    "remote_read_path",
    "uncontended_read_time",
    "verify_allocation",
]
