"""Discrete-event simulation engine with fluid flows.

The engine advances a clock over two kinds of events:

* **timers** — callbacks scheduled at absolute times (compute phases, seek
  latencies, barrier releases);
* **flow completions** — a :class:`~repro.simulate.flows.Flow` finishes when
  its remaining bytes reach zero under the current max-min fair rates.

Rates are re-solved lazily: only when the active flow set changes (a flow
starts, completes or is cancelled).  Between events every flow's
``remaining`` decreases linearly, so the next completion time is exact —
no fixed time step, no numerical integration error beyond float
arithmetic.

The hot path is O(affected component) end to end:

* rates come from a persistent :class:`~repro.simulate.components.
  ComponentAllocator` (the default) that tracks the connected components
  of the flow–resource graph and re-runs water-filling only for the
  components a flow event touched — the measured workloads split into
  many components of median size one flow.  The previous engines remain
  as differential references: ``Simulation(allocator="incremental")``
  (persistent whole-network :class:`~repro.simulate.allocator.
  IncrementalAllocator`) and ``allocator="reference"`` (pure
  :func:`~repro.simulate.flows.allocate_rates` rebuild per epoch);
* the next completion comes from a **lazy-invalidation heap**: a flow's
  predicted absolute finish time ``t = settled_at + remaining/rate`` is
  invariant while its rate holds (``remaining`` drains linearly at
  exactly that rate), so an entry pushed once stays valid until the
  flow's rate changes.  ``solve()`` reports exactly which flows changed
  rate (the dirty components' members); only those are re-pushed, each
  stamped with a sequence number, and superseded/finished entries are
  skipped lazily on pop.  Entries order by ``(time, flow_id)``, and
  candidates within a ≤1e-9-relative tie window of the top are
  re-predicted fresh and snapped to the minimal ``flow_id`` — so
  simultaneous completions fire in ``flow_id`` order (matching the
  sweep) regardless of float noise in the predictions.  The cache modes
  keep the **per-epoch completion cache** (one vectorised ``now +
  remaining/rate`` pass per rate epoch) for bit-exact differential runs;
* flow progress uses **credit accounting**: each flow's ``remaining`` is
  settled only at rate-epoch boundaries (one fused ``remaining -=
  rate·dt`` per epoch instead of one per event), with an O(1) dict-backed
  flow registry instead of a list.

The dense slot arrays are authoritative for ``remaining``; the ``Flow``
objects are synchronised at observation points (completion, cancellation,
every ``run``/``run(until=...)`` return).  Component-sliced solves match
the reference arithmetic operation for operation *per component*; across
components the global water level of the reference interleaves float
rounding differently, so end-to-end rates agree to ≤ 1e-9 relative
(pinned by ``tests/test_properties_components.py``; the cache modes stay
bit-for-bit against ``tests/test_sim_golden.py``'s fixtures).
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Callable

import numpy as np

from .allocator import IncrementalAllocator
from .components import ComponentAllocator
from .flows import Flow, allocate_rates
from .perf import SimPerf, wall_clock
from .resources import Resource

#: Completion slack: a flow is done when remaining ≤ REMAINING_EPS bytes.
REMAINING_EPS = 1e-6

#: Relative width of the lazy heap's tie window: entries this close to the
#: top are re-predicted fresh before the winner is chosen, so the pick is
#: made from the same floats the cache modes' full rescan would produce.
#: Parked entries drift from their fresh value only by the float rounding
#: of the settles that ran meanwhile (≲1e-10 s absolute over the largest
#: benches) — orders of magnitude inside this window, so the true earliest
#: completion is always among the re-predicted candidates.
_PEEK_TIE_WINDOW = 1e-9

_GROW = 64

#: Allocator mode used by ``Simulation()`` when none is named.  Tests pin
#: historical engines by rebinding this (see ``tests/test_sim_golden.py``);
#: library code never mutates it.
DEFAULT_ALLOCATOR = "component"


class Simulation:
    """Event loop owning the clock, timers, resources and active flows."""

    def __init__(
        self, *, allocator: str | None = None, parallel: object | None = None
    ) -> None:
        """
        Parameters
        ----------
        allocator:
            ``"component"`` (the module default, see
            :data:`DEFAULT_ALLOCATOR`) re-solves only the connected
            components a flow event touched and re-predicts only their
            members' completions; ``"incremental"`` uses the persistent
            whole-network :class:`IncrementalAllocator` with the
            per-epoch completion cache; ``"reference"`` re-solves with
            the pure :func:`allocate_rates` on every dirty refresh —
            slowest, kept for differential testing.
        parallel:
            Optional shared-memory component-solve pool (component mode
            only), e.g. :class:`repro.parallel.pool.ComponentSolvePool`.
            The pool is handed in as an object — this module sits below
            :mod:`repro.parallel` in the layering DAG, so the engine
            never constructs one itself.  Solves stay byte-identical
            with the pool on or off (same kernels either side of the
            process boundary); below the pool's measured work threshold
            components are solved in-process as usual.
        """
        if allocator is None:
            allocator = DEFAULT_ALLOCATOR
        if allocator not in ("component", "incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        if parallel is not None and allocator != "component":
            raise ValueError("parallel= requires allocator='component'")
        #: which rate-solve strategy this simulation runs (read-only).
        self.allocator = allocator
        self.now = 0.0
        self.perf = SimPerf()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._resources: dict[str, Resource] = {}
        self._calloc: ComponentAllocator | None = None
        self._alloc: ComponentAllocator | IncrementalAllocator | None = None
        if allocator == "component":
            self._calloc = ComponentAllocator(pool=parallel)
            self._alloc = self._calloc
        elif allocator == "incremental":
            self._alloc = IncrementalAllocator()
        #: O(1) registry: flow -> completion callback, insertion-ordered.
        self._flows: dict[Flow, Callable[[Flow], None]] = {}
        self._dirty = True
        self.completed_flows = 0
        self.events_processed = 0
        # Flow-id slot arrays mirroring the registry.  Ids are recycled
        # through a free list (shared with the allocator, so solve() can
        # scatter rates straight into ``_rate``); freed slots hold the
        # sentinels ``rem = inf, rate = 1`` so the vectorised settle,
        # sweep and completion-prediction passes can run over the whole
        # range without masking — a hole's predicted completion is +inf
        # and its remaining never drains.
        self._flow_at: list[Flow | None] = []
        self._fid_of: dict[Flow, int] = {}
        self._free_ids: list[int] = []
        self._rem = np.full(_GROW, np.inf)
        self._rate = np.ones(_GROW)
        #: simulated time all slots' ``remaining`` values refer to
        self._settled_at = 0.0
        #: rate epoch; bumped on every re-solve, invalidates the prediction
        self._epoch = 0
        self._next_completion: tuple[float, int, Flow] | None = None
        self._pred_epoch = -1
        # Lazy-invalidation completion heap (component mode): entries are
        # ``(time, flow_id, fid, seq)``; ``_entry_seq[fid]`` names the only
        # live sequence number per slot (-1 = none), so superseded and
        # finished entries are recognised and discarded on pop.  Changed
        # fids reported by solve() park in ``_pending_push`` (an
        # insertion-ordered dict used as a set) until the next peek.
        self._heap: list[tuple[float, int, int, int]] = []
        self._entry_seq: list[int] = []
        self._push_seq = 0
        self._pending_push: dict[int, None] = {}
        #: scratch buffer for the settle/sweep passes (same capacity as
        #: the slot arrays) so the per-event array math allocates nothing
        self._scratch = np.empty(_GROW)
        # cached length-n views of _rem/_rate/_scratch; rebuilt when the
        # slot count changes (the only time the arrays can reallocate)
        self._nview = -1
        self._rem_v = self._rem[:0]
        self._rate_v = self._rate[:0]
        self._scr_v = self._scratch[:0]

    # -- configuration -------------------------------------------------------

    def add_resource(self, resource: Resource) -> None:
        if resource.name in self._resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        if self._alloc is not None:
            self._alloc.register(resource.name, resource)

    def add_resources(self, resources: list[Resource]) -> None:
        for r in resources:
            self.add_resource(r)

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._timers, (self.now + delay, next(self._seq), callback))

    def start_flow(
        self,
        size: float,
        path: list[str],
        on_complete: Callable[[Flow], None],
        payload: object = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Begin a transfer now; ``on_complete(flow)`` fires when it finishes."""
        flow = Flow(size=size, path=tuple(path), payload=payload, rate_cap=rate_cap)
        for r in flow.path:
            if r not in self._resources:
                raise KeyError(f"unknown resource {r!r}")
        self._flows[flow] = on_complete
        if self._free_ids:
            fid = self._free_ids.pop()
        else:
            fid = len(self._flow_at)
            self._flow_at.append(None)
            self._entry_seq.append(-1)
            if fid >= len(self._rem):
                grow = len(self._rem)
                self._rem = np.concatenate([self._rem, np.full(grow, np.inf)])
                self._rate = np.concatenate([self._rate, np.ones(grow)])
                self._scratch = np.empty(len(self._rem))
        self._fid_of[flow] = fid
        self._flow_at[fid] = flow
        self._rem[fid] = flow.remaining
        # Rate 0 until the next re-solve: the settle pass covering the
        # instant of creation must not move this flow.
        self._rate[fid] = 0.0
        if self._alloc is not None:
            self._alloc.add(flow, fid)
        self._dirty = True
        self.perf.flows_started += 1
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a transfer: no completion callback will fire.

        Used for failure injection (the serving node died mid-transfer).
        """
        if flow not in self._flows:
            raise KeyError("flow is not active")
        # Credit the interval since the last settle point so the caller
        # observes the transfer's true residue.
        self._settle_all()
        del self._flows[flow]
        flow.remaining = float(self._rem[self._fid_of[flow]])
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.perf.flows_cancelled += 1

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self, flow: Flow) -> float:
        """The flow's current max-min fair rate (refreshes if stale).

        A flow that is no longer active (finished or cancelled) reports
        0.0 without touching the solver — its old slot may already have
        been recycled by a younger flow, so the rate arrays must not be
        consulted for it (and a query must not trigger a spurious
        re-solve).
        """
        if flow not in self._flows:
            return 0.0
        self._refresh_rates()
        return float(self._rate[self._fid_of[flow]])

    # -- incremental state ---------------------------------------------------

    def _views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Length-n views of the slot arrays (cached between grows)."""
        n = len(self._flow_at)
        if n != self._nview:
            self._nview = n
            self._rem_v = self._rem[:n]
            self._rate_v = self._rate[:n]
            self._scr_v = self._scratch[:n]
        return self._rem_v, self._rate_v, self._scr_v

    def _release_fid(self, flow: Flow) -> None:
        """Return the flow's slot to the free list, restoring sentinels."""
        fid = self._fid_of.pop(flow)
        self._flow_at[fid] = None
        self._rem[fid] = np.inf
        self._rate[fid] = 1.0
        self._entry_seq[fid] = -1
        self._free_ids.append(fid)

    def _settle_all(self) -> None:
        """Credit the elapsed epoch interval to every flow's ``remaining``.

        Must run with the rates that governed ``[_settled_at, now]`` still
        in place — i.e. *before* a re-solve replaces them.
        """
        dt = self.now - self._settled_at
        self._settled_at = self.now
        if dt <= 0.0 or not self._flow_at:
            return
        t0 = wall_clock()
        rem, rate, scratch = self._views()
        # rem = max(0, rem - rate*dt), fused through the scratch buffer —
        # elementwise identical to the allocating form.
        np.multiply(rate, dt, out=scratch)
        np.subtract(rem, scratch, out=rem)
        np.maximum(rem, 0.0, out=rem)
        self.perf.settles += 1
        self.perf.flows_settled += len(self._fid_of)
        self.perf.settle_wall += wall_clock() - t0

    def _sync_remaining(self) -> None:
        """Copy the authoritative slot array back onto the Flow objects."""
        for f, fid in self._fid_of.items():
            f.remaining = float(self._rem[fid])

    def _refresh_rates(self) -> None:
        if not self._dirty:
            return
        # The old rates governed the interval up to ``now``; credit it
        # before they are replaced.
        self._settle_all()
        t0 = wall_clock()
        calloc = self._calloc
        if calloc is not None:
            calloc.solve(out=self._rate)
            perf = self.perf
            perf.solve_iterations += calloc.last_iterations
            perf.component_solves += calloc.last_component_solves
            perf.component_flows_resolved += calloc.last_flows_resolved
            perf.vectorized_solves += calloc.last_vectorized_solves
            if calloc.last_parallel_solves:
                perf.parallel_solves += calloc.last_parallel_solves
                perf.pool_dispatch_wall += calloc.last_pool_wall
            if calloc.last_component_size_max > perf.component_size_max:
                perf.component_size_max = calloc.last_component_size_max
            n_comp = calloc.component_count
            if n_comp > perf.components:
                perf.components = n_comp
            pending = self._pending_push
            for fid in calloc.last_changed:
                pending[fid] = None
        elif self._alloc is not None:
            self._alloc.solve(out=self._rate)
            self.perf.solve_iterations += self._alloc.last_iterations
        else:
            rates = allocate_rates(list(self._flows), self._resources)
            rate = self._rate
            fid_of = self._fid_of
            for f, r in rates.items():
                rate[fid_of[f]] = r
        self._dirty = False
        self._epoch += 1
        self.perf.solves += 1
        self.perf.solve_wall += wall_clock() - t0

    # -- event selection -----------------------------------------------------

    def _peek_completion(self) -> tuple[float, int, Flow] | None:
        """The earliest predicted completion.

        Component mode answers from the lazy heap
        (:meth:`_peek_completion_heap`); the cache modes from the
        per-epoch cache (:meth:`_peek_completion_cache`).  Both order by
        ``(time, flow_id)``.
        """
        self._refresh_rates()
        if self._calloc is not None:
            return self._peek_completion_heap()
        return self._peek_completion_cache()

    def _peek_completion_heap(self) -> tuple[float, int, Flow] | None:
        """Lazy-invalidation heap peek (component mode).

        Flows whose rate the last solves changed sit in
        ``_pending_push``; each gets one fresh entry ``(settled_at +
        rem/rate, flow_id, fid, seq)`` — the predicted *absolute* finish
        time, which stays valid for as long as the rate does, however far
        the clock advances meanwhile.  Entries whose seq is no longer the
        slot's live one (rate re-solved again, flow finished/cancelled,
        slot recycled) are discarded on pop.
        """
        pending = self._pending_push
        if pending:
            t0 = wall_clock()
            base = self._settled_at
            rem_item = self._rem.item
            rate_item = self._rate.item
            flow_at = self._flow_at
            entry_seq = self._entry_seq
            heap = self._heap
            push = heapq.heappush
            seq = self._push_seq
            pushed = 0
            for fid in pending:
                flow = flow_at[fid]
                if flow is None:
                    # Re-solved, then removed before the push drained; its
                    # entry_seq is already -1 (any recycled successor gets
                    # its own re-solve and push).
                    continue
                entry_seq[fid] = seq
                push(heap, (base + rem_item(fid) / rate_item(fid), flow.flow_id, fid, seq))
                seq += 1
                pushed += 1
            self._push_seq = seq
            pending.clear()
            self.perf.heap_pushes += pushed
            self.perf.scan_wall += wall_clock() - t0
        heap = self._heap
        entry_seq = self._entry_seq
        rem_item = self._rem.item
        rate_item = self._rate.item
        base = self._settled_at
        stale = 0
        best: tuple[float, int, int] | None = None
        while heap and best is None:
            t_top, flowid_top, fid_top, seq_top = heap[0]
            if entry_seq[fid_top] != seq_top:
                heapq.heappop(heap)
                stale += 1
                continue
            horizon = t_top + _PEEK_TIE_WINDOW * max(1.0, abs(t_top))
            # Single-candidate fast path: the heap's second-smallest parked
            # time sits at the root's children, so when both are beyond the
            # horizon the tie-window loop below would pop exactly the top.
            # Do that pop/re-predict/re-push directly — same entries, same
            # floats, same counters as the general loop on this input.
            n = len(heap)
            second = heap[1][0] if n > 1 else math.inf
            if n > 2 and heap[2][0] < second:
                second = heap[2][0]
            if second > horizon:
                t_new = base + rem_item(fid_top) / rate_item(fid_top)
                seq = self._push_seq
                self._push_seq = seq + 1
                entry_seq[fid_top] = seq
                # heapreplace = pop + push in one sift; every read of the
                # heap (root, min of the root's children, ascending pops)
                # is arrangement-independent, so the replay is unchanged.
                heapq.heapreplace(heap, (t_new, flowid_top, fid_top, seq))
                self.perf.heap_pushes += 1
                best = (t_new, flowid_top, fid_top)
                break
            # Pop every candidate in the tie window, re-predict each from
            # the current settled state (a parked prediction drifts from
            # its fresh value only by the settles' float rounding, far
            # inside the window), then snap: the winner is the minimal
            # ``flow_id`` among candidates within the window of the fresh
            # minimum.  Symmetric workloads finish whole waves of chunks
            # at the *exact same* simulated instant, and which prediction
            # rounds lowest is float noise — snapping makes the firing
            # order (and with it every downstream RNG draw) depend only
            # on flow identity, matching the sweep's retire order.
            cands: list[tuple[float, int, int]] = []
            while heap and heap[0][0] <= horizon:
                _, flow_id, fid, seq = heapq.heappop(heap)
                if entry_seq[fid] != seq:
                    stale += 1
                    continue
                cands.append((base + rem_item(fid) / rate_item(fid), flow_id, fid))
            pushed = 0
            t_min = math.inf
            for fresh in cands:
                t_new, flow_id, fid = fresh
                seq = self._push_seq
                self._push_seq += 1
                entry_seq[fid] = seq
                heapq.heappush(heap, (t_new, flow_id, fid, seq))
                pushed += 1
                if t_new < t_min:
                    t_min = t_new
            self.perf.heap_pushes += pushed
            if cands:
                snap = t_min + _PEEK_TIE_WINDOW * max(1.0, abs(t_min))
                for fresh in cands:
                    if fresh[0] <= snap and (best is None or fresh[1] < best[1]):
                        best = fresh
        if stale:
            self.perf.stale_pops += stale
        if best is None:
            return None
        t, flow_id, fid = best
        flow = self._flow_at[fid]
        assert flow is not None
        return (t, flow_id, flow)

    def _peek_completion_cache(self) -> tuple[float, int, Flow] | None:
        """Per-epoch full-prediction cache (incremental/reference modes).

        One vectorised prediction pass per rate epoch; the ``(time,
        flow_id)``-minimal flow is cached and stays valid for the whole
        epoch because any flow-set change dirties the rates.  Ties on the
        predicted time break by ``flow_id`` — the registry's insertion
        order, matching the pre-incremental engine's scan.
        """
        if self._pred_epoch != self._epoch:
            t0 = wall_clock()
            if self._fid_of:
                rem, rate, _ = self._views()
                t = self.now + rem / rate
                i = int(t.argmin())
                tv = t[i]
                ties = (t == tv).nonzero()[0]
                if len(ties) > 1:
                    flow = min(
                        (self._flow_at[j] for j in ties.tolist()),
                        key=lambda f: f.flow_id,
                    )
                else:
                    flow = self._flow_at[i]
                self._next_completion = (float(tv), flow.flow_id, flow)
            else:
                self._next_completion = None
            self._pred_epoch = self._epoch
            self.perf.prediction_rebuilds += 1
            self.perf.scan_wall += wall_clock() - t0
        return self._next_completion

    def _pending_event(self) -> tuple[float, float, tuple[float, int, Flow] | None] | None:
        """The next event, computed once: ``(flow_t, timer_t, completion)``."""
        completion = self._peek_completion()
        timer_t = self._timers[0][0] if self._timers else math.inf
        flow_t = completion[0] if completion else math.inf
        if timer_t is math.inf and flow_t is math.inf:
            return None
        return flow_t, timer_t, completion

    def _peek_time(self) -> float:
        event = self._pending_event()
        if event is None:
            return math.inf
        return min(event[0], event[1])

    # -- main loop ----------------------------------------------------------------

    def _process(self, event: tuple[float, float, tuple[float, int, Flow] | None]) -> None:
        flow_t, timer_t, completion = event
        if flow_t <= timer_t:
            assert completion is not None
            t, _, flow = completion
            self.now = t
            # The predicted flow finishes; numerically-simultaneous
            # completions are picked up by the sweep below.
            flow.remaining = 0.0
            self._rem[self._fid_of[flow]] = 0.0
            self._finish(flow)
            self.perf.flow_events += 1
        else:
            self.now = timer_t
            _, _, callback = heapq.heappop(self._timers)
            callback()
            self.perf.timer_events += 1
        self._sweep()
        self.events_processed += 1

    def _sweep(self) -> None:
        """Retire every flow the elapsed interval drained to (near) zero."""
        if not self._fid_of:
            return
        dt = self.now - self._settled_at
        rem, rate, scratch = self._views()
        if dt > 0.0:
            np.multiply(rate, dt, out=scratch)
            np.subtract(rem, scratch, out=scratch)
            current = scratch
        else:
            current = rem
        # Early out on the common case (nothing drained): one fused min
        # reduction instead of a boolean temporary + any().
        if current.min() > REMAINING_EPS:
            return
        drained = current <= REMAINING_EPS
        hits = sorted(
            ((self._flow_at[i], current[i]) for i in drained.nonzero()[0].tolist()),
            key=lambda item: item[0].flow_id,
        )
        for flow, value in hits:
            if flow not in self._flows:  # a sweep callback cancelled it
                continue
            flow.remaining = max(0.0, float(value))
            self._rem[self._fid_of[flow]] = flow.remaining
            self._finish(flow)

    def step(self) -> bool:
        """Process the next event.  Returns False when nothing is pending."""
        event = self._pending_event()
        if event is None:
            return False
        self._process(event)
        return True

    def _finish(self, flow: Flow) -> None:
        callback = self._flows.pop(flow)
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.completed_flows += 1
        self.perf.flows_finished += 1
        callback(flow)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``until``); returns the final clock."""
        events = 0
        while True:
            event = self._pending_event()
            if until is not None:
                next_t = min(event[0], event[1]) if event else math.inf
                if next_t > until:
                    self._refresh_rates()
                    self.now = until
                    self._settle_all()
                    break
            if event is None:
                break
            self._process(event)
            events += 1
            if events > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
        self._sync_remaining()
        return self.now
