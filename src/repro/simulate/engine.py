"""Discrete-event simulation engine with fluid flows.

The engine advances a clock over two kinds of events:

* **timers** — callbacks scheduled at absolute times (compute phases, seek
  latencies, barrier releases);
* **flow completions** — a :class:`~repro.simulate.flows.Flow` finishes when
  its remaining bytes reach zero under the current max-min fair rates.

Rates are re-solved lazily: only when the active flow set changes (a flow
starts or completes).  Between events every flow's ``remaining`` decreases
linearly, so the next completion time is exact — no fixed time step, no
numerical integration error beyond float arithmetic.
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Callable

from .flows import Flow, allocate_rates
from .resources import Resource

#: Completion slack: a flow is done when remaining ≤ REMAINING_EPS bytes.
REMAINING_EPS = 1e-6


class Simulation:
    """Event loop owning the clock, timers, resources and active flows."""

    def __init__(self) -> None:
        self.now = 0.0
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._resources: dict[str, Resource] = {}
        self._active: list[Flow] = []
        self._on_complete: dict[Flow, Callable[[Flow], None]] = {}
        self._rates: dict[Flow, float] = {}
        self._dirty = True
        self.completed_flows = 0
        self.events_processed = 0

    # -- configuration -------------------------------------------------------

    def add_resource(self, resource: Resource) -> None:
        if resource.name in self._resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource

    def add_resources(self, resources: list[Resource]) -> None:
        for r in resources:
            self.add_resource(r)

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._timers, (self.now + delay, next(self._seq), callback))

    def start_flow(
        self,
        size: float,
        path: list[str],
        on_complete: Callable[[Flow], None],
        payload: object = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Begin a transfer now; ``on_complete(flow)`` fires when it finishes."""
        flow = Flow(size=size, path=tuple(path), payload=payload, rate_cap=rate_cap)
        for r in flow.path:
            if r not in self._resources:
                raise KeyError(f"unknown resource {r!r}")
        self._active.append(flow)
        self._on_complete[flow] = on_complete
        self._dirty = True
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a transfer: no completion callback will fire.

        Used for failure injection (the serving node died mid-transfer).
        """
        if flow not in self._on_complete:
            raise KeyError("flow is not active")
        self._active.remove(flow)
        self._on_complete.pop(flow)
        self._dirty = True

    @property
    def active_flows(self) -> int:
        return len(self._active)

    def current_rate(self, flow: Flow) -> float:
        """The flow's current max-min fair rate (refreshes if stale)."""
        self._refresh_rates()
        return self._rates.get(flow, 0.0)

    # -- main loop ----------------------------------------------------------------

    def _refresh_rates(self) -> None:
        if self._dirty:
            self._rates = allocate_rates(self._active, self._resources)
            self._dirty = False

    def _next_completion(self) -> tuple[float, Flow] | None:
        self._refresh_rates()
        best_t = math.inf
        best_flow: Flow | None = None
        for f in self._active:
            rate = self._rates[f]
            # Max-min fairness gives every flow a strictly positive rate.
            t = self.now + f.remaining / rate
            if t < best_t:
                best_t = t
                best_flow = f
        if best_flow is None:
            return None
        return best_t, best_flow

    def _advance_flows(self, dt: float) -> None:
        if dt <= 0 or not self._active:
            return
        for f in self._active:
            f.remaining = max(0.0, f.remaining - self._rates[f] * dt)

    def step(self) -> bool:
        """Process the next event.  Returns False when nothing is pending."""
        completion = self._next_completion()
        timer_t = self._timers[0][0] if self._timers else math.inf
        flow_t = completion[0] if completion else math.inf
        if timer_t is math.inf and flow_t is math.inf:
            return False

        if flow_t <= timer_t:
            assert completion is not None
            t, flow = completion
            self._advance_flows(t - self.now)
            self.now = t
            # The predicted flow finishes; numerically-simultaneous
            # completions are picked up by subsequent steps.
            flow.remaining = 0.0
            self._finish(flow)
        else:
            self._advance_flows(timer_t - self.now)
            self.now = timer_t
            _, _, callback = heapq.heappop(self._timers)
            callback()
        # Also retire any flow the advance drained to (near) zero.
        for f in [f for f in self._active if f.remaining <= REMAINING_EPS]:
            self._finish(f)
        self.events_processed += 1
        return True

    def _finish(self, flow: Flow) -> None:
        self._active.remove(flow)
        self._dirty = True
        self.completed_flows += 1
        callback = self._on_complete.pop(flow)
        callback(flow)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``until``); returns the final clock."""
        events = 0
        while True:
            if until is not None and self._peek_time() > until:
                self._refresh_rates()
                self._advance_flows(until - self.now)
                self.now = until
                break
            if not self.step():
                break
            events += 1
            if events > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
        return self.now

    def _peek_time(self) -> float:
        completion = self._next_completion()
        timer_t = self._timers[0][0] if self._timers else math.inf
        flow_t = completion[0] if completion else math.inf
        return min(timer_t, flow_t)
