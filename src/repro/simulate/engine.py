"""Discrete-event simulation engine with fluid flows.

The engine advances a clock over two kinds of events:

* **timers** — callbacks scheduled at absolute times (compute phases, seek
  latencies, barrier releases);
* **flow completions** — a :class:`~repro.simulate.flows.Flow` finishes when
  its remaining bytes reach zero under the current max-min fair rates.

Rates are re-solved lazily: only when the active flow set changes (a flow
starts, completes or is cancelled).  Between events every flow's
``remaining`` decreases linearly, so the next completion time is exact —
no fixed time step, no numerical integration error beyond float
arithmetic.

The hot path is O(affected component) end to end:

* flow state lives in a structure-of-arrays
  :class:`~repro.simulate.flowtable.FlowTable` (remaining/rate/start-epoch
  slot arrays with free-list recycling and 64-bit generation stamps), so
  the settle pass, the sweep and the completion predictions are whole-array
  kernels instead of per-Flow attribute walks;
* rates come from a persistent :class:`~repro.simulate.components.
  ComponentAllocator` (the default) that tracks the connected components
  of the flow–resource graph and re-runs water-filling only for the
  components a flow event touched — the measured workloads split into
  many components of median size one flow.  The previous engines remain
  as differential references: ``Simulation(allocator="incremental")``
  (persistent whole-network :class:`~repro.simulate.allocator.
  IncrementalAllocator`) and ``allocator="reference"`` (pure
  :func:`~repro.simulate.flows.allocate_rates` rebuild per epoch);
* the next completion comes from a **lazy-invalidation heap**: a flow's
  predicted absolute finish time ``t = settled_at + remaining/rate`` is
  invariant while its rate holds (``remaining`` drains linearly at
  exactly that rate), so an entry pushed once stays valid until the
  flow's rate changes.  ``solve()`` reports exactly which flows changed
  rate (the dirty components' members); only those are re-pushed, each
  stamped with a sequence number, and superseded/finished entries are
  skipped lazily on pop.  Entries order by ``(time, flow_id)``, and
  candidates within a ≤1e-9-relative tie window of the top are
  re-predicted fresh and snapped to the minimal ``flow_id`` — so
  simultaneous completions fire in ``flow_id`` order (matching the
  sweep) regardless of float noise in the predictions.  Tie candidates
  pulled out of the heap park in a **tie group** side table (fid →
  fresh prediction) instead of being re-pushed, so a wave of w
  simultaneous completions costs O(w) dict scans per event rather than
  O(w log n) heap churn — the whole-wave pop/re-push cycle per event is
  what collapsed throughput at 2048+ nodes.  The cache modes keep the
  **per-epoch completion cache** (one vectorised ``now + remaining/
  rate`` pass per rate epoch) for bit-exact differential runs;
* **timer waves coalesce**: all timers sharing the *exact* timestamp of
  the one being processed drain in a single settle/solve cycle when a
  conservative bound proves the replay is unchanged — every active
  flow's remaining, divided by the fastest resource's capacity, keeps
  any completion strictly beyond the wave's instant (so the per-timer
  event-selection checks and sweeps the sequential path would run are
  all provably no-ops).  Per-component water-filling depends only on
  the final membership of the epoch, so one solve at the end of the
  wave writes the same rates the per-timer solves would have;
* flow progress uses **credit accounting**: each flow's ``remaining`` is
  settled only at rate-epoch boundaries (one fused ``remaining -=
  rate·dt`` per epoch instead of one per event), and the sweep never
  scans the slot range at all — a **pessimistic retire-time heap**
  (entries ``(settled_at + (remaining − 1 byte)/rate, fid, seq)``,
  refreshed by every re-rate) names the only slots whose drain could
  have reached the completion threshold, so each sweep is one heap peek
  plus the exact drain arithmetic on the due candidates.

The dense slot arrays are authoritative for ``remaining``; the ``Flow``
objects are synchronised at observation points (completion, cancellation,
every ``run``/``run(until=...)`` return).  Component-sliced solves match
the reference arithmetic operation for operation *per component*; across
components the global water level of the reference interleaves float
rounding differently, so end-to-end rates agree to ≤ 1e-9 relative
(pinned by ``tests/test_properties_components.py``; the cache modes stay
bit-for-bit against ``tests/test_sim_golden.py``'s fixtures).
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Callable, Sequence

import numpy as np

from .allocator import IncrementalAllocator
from .components import ComponentAllocator
from .flows import Flow, allocate_rates
from .flowtable import FlowTable
from .perf import SimPerf, wall_clock
from .resources import Resource

#: Completion slack: a flow is done when remaining ≤ REMAINING_EPS bytes.
REMAINING_EPS = 1e-6

#: Relative width of the lazy heap's tie window: entries this close to the
#: top are re-predicted fresh before the winner is chosen, so the pick is
#: made from the same floats the cache modes' full rescan would produce.
#: Parked entries drift from their fresh value only by the float rounding
#: of the settles that ran meanwhile (≲1e-10 s absolute over the largest
#: benches) — orders of magnitude inside this window, so the true earliest
#: completion is always among the re-predicted candidates.
_PEEK_TIE_WINDOW = 1e-9

#: Allocator mode used by ``Simulation()`` when none is named.  Tests pin
#: historical engines by rebinding this (see ``tests/test_sim_golden.py``);
#: library code never mutates it.
DEFAULT_ALLOCATOR = "component"

#: Whether ``Simulation()`` uses the fused cascade fast-forward loop for
#: unbounded ``run()`` calls when the caller does not say.  The
#: differential golden leg rebinds this to drive whole experiments
#: through the general dispatcher (see ``tests/test_sim_fastforward.py``);
#: library code never mutates it.
DEFAULT_FASTFORWARD = True


class Simulation:
    """Event loop owning the clock, timers, resources and active flows."""

    def __init__(
        self,
        *,
        allocator: str | None = None,
        parallel: object | None = None,
        fastforward: bool | None = None,
    ) -> None:
        """
        Parameters
        ----------
        allocator:
            ``"component"`` (the module default, see
            :data:`DEFAULT_ALLOCATOR`) re-solves only the connected
            components a flow event touched and re-predicts only their
            members' completions; ``"incremental"`` uses the persistent
            whole-network :class:`IncrementalAllocator` with the
            per-epoch completion cache; ``"reference"`` re-solves with
            the pure :func:`allocate_rates` on every dirty refresh —
            slowest, kept for differential testing.
        parallel:
            Optional shared-memory component-solve pool (component mode
            only), e.g. :class:`repro.parallel.pool.ComponentSolvePool`.
            The pool is handed in as an object — this module sits below
            :mod:`repro.parallel` in the layering DAG, so the engine
            never constructs one itself.  Solves stay byte-identical
            with the pool on or off (same kernels either side of the
            process boundary); below the pool's measured work threshold
            components are solved in-process as usual.
        fastforward:
            When true (the module default, see
            :data:`DEFAULT_FASTFORWARD`), ``run()`` with no ``until`` bound
            executes component-mode event cycles through the fused
            fast-forward loop (:meth:`_run_fast`): completion cascades
            are driven without re-entering the general dispatcher, with
            the per-event settle/solve/drain/select/sweep phases
            inlined into one frame.  The replay is event-for-event and
            bit-for-bit identical to ``fastforward=False`` (pinned by
            the golden fixtures and the differential trace tests in
            ``tests/test_sim_fastforward.py``); the flag exists for
            that differential and for perf A/B runs.
        """
        if allocator is None:
            allocator = DEFAULT_ALLOCATOR
        if fastforward is None:
            fastforward = DEFAULT_FASTFORWARD
        if allocator not in ("component", "incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        if parallel is not None and allocator != "component":
            raise ValueError("parallel= requires allocator='component'")
        #: which rate-solve strategy this simulation runs (read-only).
        self.allocator = allocator
        #: whether unbounded ``run()`` uses the fused fast-forward loop
        #: (read-only; component mode only — other modes ignore it).
        self.fastforward = fastforward
        self.now = 0.0
        self.perf = SimPerf()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._resources: dict[str, Resource] = {}
        self._calloc: ComponentAllocator | None = None
        self._alloc: ComponentAllocator | IncrementalAllocator | None = None
        if allocator == "component":
            self._calloc = ComponentAllocator(pool=parallel)
            self._alloc = self._calloc
        elif allocator == "incremental":
            self._alloc = IncrementalAllocator()
        #: O(1) registry: flow -> completion callback, insertion-ordered.
        self._flows: dict[Flow, Callable[[Flow], None]] = {}
        self._dirty = True
        self.completed_flows = 0
        self.events_processed = 0
        #: dense slot arrays for the active flow set (shared with the
        #: allocator, so solve() scatters rates straight into the rate
        #: array).  See :mod:`repro.simulate.flowtable` for the layout,
        #: the free-list recycling and the generation-stamp contract.
        self._table = FlowTable()
        #: simulated time all slots' ``remaining`` values refer to
        self._settled_at = 0.0
        #: rate epoch; bumped on every re-solve, invalidates the prediction
        self._epoch = 0
        self._next_completion: tuple[float, int, Flow] | None = None
        self._pred_epoch = -1
        # Lazy-invalidation completion heap (component mode): entries are
        # ``(time, flow_id, fid, seq)``; ``_entry_seq[fid]`` names the only
        # live sequence number per slot (-1 = none), so superseded and
        # finished entries are recognised and discarded on pop.  Changed
        # fids reported by solve() park in ``_pending_push`` (an
        # insertion-ordered dict used as a set) until the next peek.
        self._heap: list[tuple[float, int, int, int]] = []
        self._entry_seq: list[int] = []
        self._push_seq = 0
        self._pending_push: dict[int, None] = {}
        #: tie-group side table: fid -> last fresh prediction, for flows
        #: whose heap entry was pulled into the current completion wave.
        #: A slot lives in exactly one of heap (live seq) / tie group /
        #: nowhere; re-rated members go back through the heap, finished
        #: members are dropped by ``_release_fid``.
        self._tie: dict[int, float] = {}
        #: fastest single-flow capacity over all resources — the hard
        #: upper bound on any flow's rate, for the coalescing bound below.
        self._cap_max = 0.0
        #: pessimistic retire-time heap (component mode): entries
        #: ``(bound, fid, seq)`` where ``bound = settled_at +
        #: (remaining − 1 byte)/rate`` is strictly earlier than the slot
        #: could reach the sweep threshold *at its current rate* — and a
        #: rate only changes at a re-solve, which pushes a fresh entry
        #: for every re-rated slot (see :meth:`_drain_pending`) and
        #: supersedes the old one via ``_pess_seq``.  The 1-byte margin
        #: dwarfs the settles' float rounding, so the sweep only ever
        #: runs the exact drain arithmetic on the handful of slots whose
        #: bound has come due, never an O(n) scan.
        self._pess: list[tuple[float, int, int]] = []
        #: the slot's only live pessimistic entry (-1 = none); parallel
        #: to ``_entry_seq`` but invalidated only by re-rates and
        #: releases, never by the peek's tie-group transitions.
        self._pess_seq: list[int] = []
        #: coalescing floor: at ``_scan_at`` every active flow's settled
        #: remaining was ≥ ``_scan_floor`` (lowered by every flow start,
        #: refreshed — at most once per failing coalesce check — by one
        #: fused scan in :meth:`_can_coalesce`).
        self._scan_floor = math.inf
        self._scan_at = 0.0

    # -- configuration -------------------------------------------------------

    def add_resource(self, resource: Resource) -> None:
        if resource.name in self._resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        cap = resource.effective_capacity(1)
        if cap > self._cap_max:
            self._cap_max = cap
        if self._alloc is not None:
            self._alloc.register(resource.name, resource)

    def add_resources(self, resources: list[Resource]) -> None:
        for r in resources:
            self.add_resource(r)

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._timers, (self.now + delay, next(self._seq), callback))

    def start_flow(
        self,
        size: float,
        path: "Sequence[str]",
        on_complete: Callable[[Flow], None],
        payload: object = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Begin a transfer now; ``on_complete(flow)`` fires when it finishes.

        ``path`` may be any sequence of resource names; callers that loop
        (the runner's read issue path) pass an already-built tuple so no
        per-flow copy is made.
        """
        tpath = path if isinstance(path, tuple) else tuple(path)
        flow = Flow(size, tpath, payload, rate_cap)
        resources = self._resources
        for r in tpath:
            if r not in resources:
                raise KeyError(f"unknown resource {r!r}")
        self._flows[flow] = on_complete
        fid = self._table.acquire(flow, self.now)
        entry_seq = self._entry_seq
        if fid == len(entry_seq):
            entry_seq.append(-1)
            self._pess_seq.append(-1)
        if flow.remaining < self._scan_floor:
            self._scan_floor = flow.remaining
        if self._alloc is not None:
            self._alloc.add(flow, fid)
        self._dirty = True
        self.perf.flows_started += 1
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a transfer: no completion callback will fire.

        Used for failure injection (the serving node died mid-transfer).
        """
        if flow not in self._flows:
            raise KeyError("flow is not active")
        # Credit the interval since the last settle point so the caller
        # observes the transfer's true residue.
        self._settle_all()
        del self._flows[flow]
        flow.remaining = float(self._table.rem[flow.fid])
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.perf.flows_cancelled += 1

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self, flow: Flow) -> float:
        """The flow's current max-min fair rate (refreshes if stale).

        A flow that is no longer active (finished or cancelled) reports
        0.0 without touching the solver — its old slot may already have
        been recycled by a younger flow (the table's generation stamp
        will have moved on), so the rate arrays must not be consulted
        for it (and a query must not trigger a spurious re-solve).
        """
        if flow not in self._flows:
            return 0.0
        self._refresh_rates()
        return float(self._table.rate[flow.fid])

    # -- incremental state ---------------------------------------------------

    # Slot-table compatibility views (tests and diagnostics poke these;
    # the hot path reads the table directly).
    @property
    def _flow_at(self) -> list[Flow | None]:
        return self._table.flow_at

    @property
    def _fid_of(self) -> dict[Flow, int]:
        return self._table.fid_of

    @property
    def _free_ids(self) -> list[int]:
        return self._table.free_ids

    @property
    def _rem(self) -> np.ndarray:
        return self._table.rem

    @property
    def _rate(self) -> np.ndarray:
        return self._table.rate

    def _release_fid(self, flow: Flow) -> None:
        """Return the flow's slot to the free list, restoring sentinels."""
        fid = self._table.release(flow)
        self._entry_seq[fid] = -1
        self._pess_seq[fid] = -1
        if self._tie:
            self._tie.pop(fid, None)

    def _settle_all(self) -> None:
        """Credit the elapsed epoch interval to every flow's ``remaining``.

        Must run with the rates that governed ``[_settled_at, now]`` still
        in place — i.e. *before* a re-solve replaces them.
        """
        dt = self.now - self._settled_at
        self._settled_at = self.now
        if dt <= 0.0 or not self._table.flow_at:
            return
        t0 = wall_clock()
        n = self._table.settle(dt)
        self.perf.settles += 1
        self.perf.flows_settled += n
        self.perf.settle_wall += wall_clock() - t0

    def _sync_remaining(self) -> None:
        """Copy the authoritative slot array back onto the Flow objects."""
        self._table.sync_remaining()

    def _refresh_rates(self) -> None:
        if not self._dirty:
            return
        # The old rates governed the interval up to ``now``; credit it
        # before they are replaced.
        self._settle_all()
        t0 = wall_clock()
        calloc = self._calloc
        if calloc is not None:
            calloc.solve(out=self._table.rate)
            perf = self.perf
            perf.solve_iterations += calloc.last_iterations
            perf.component_solves += calloc.last_component_solves
            perf.component_flows_resolved += calloc.last_flows_resolved
            perf.vectorized_solves += calloc.last_vectorized_solves
            perf.memo_hits += calloc.last_memo_hits
            if calloc.last_parallel_solves:
                perf.parallel_solves += calloc.last_parallel_solves
                perf.pool_dispatch_wall += calloc.last_pool_wall
            if calloc.last_component_size_max > perf.component_size_max:
                perf.component_size_max = calloc.last_component_size_max
            n_comp = calloc.component_count
            if n_comp > perf.components:
                perf.components = n_comp
            pending = self._pending_push
            for fid in calloc.last_changed:
                pending[fid] = None
        elif self._alloc is not None:
            self._alloc.solve(out=self._table.rate)
            self.perf.solve_iterations += self._alloc.last_iterations
        else:
            rates = allocate_rates(list(self._flows), self._resources)
            rate = self._table.rate
            fid_of = self._table.fid_of
            for f, r in rates.items():
                rate[fid_of[f]] = r
        self._dirty = False
        self._epoch += 1
        self.perf.solves += 1
        self.perf.solve_wall += wall_clock() - t0

    # -- event selection -----------------------------------------------------

    def _peek_completion(self) -> tuple[float, int, Flow] | None:
        """The earliest predicted completion.

        Component mode answers from the lazy heap
        (:meth:`_peek_completion_heap`); the cache modes from the
        per-epoch cache (:meth:`_peek_completion_cache`).  Both order by
        ``(time, flow_id)``.
        """
        self._refresh_rates()
        if self._calloc is not None:
            return self._peek_completion_heap()
        return self._peek_completion_cache()

    def _drain_pending(self) -> None:
        """Push a fresh heap entry for every flow the last solves re-rated.

        Each gets one entry ``(settled_at + rem/rate, flow_id, fid,
        seq)`` — the predicted *absolute* finish time, which stays valid
        for as long as the rate does, however far the clock advances
        meanwhile.  A re-rated member of the tie group goes back through
        the heap (its parked prediction is superseded).  The predictions
        are computed in one vectorised gather; numpy's elementwise
        divide/add round exactly like the scalar forms, so the entries
        are bit-identical to a per-flow loop.
        """
        pending = self._pending_push
        t0 = wall_clock()
        table = self._table
        flow_at = table.flow_at
        entry_seq = self._entry_seq
        pess_seq = self._pess_seq
        pess = self._pess
        tie = self._tie
        heap = self._heap
        push = heapq.heappush
        seq = self._push_seq
        base = self._settled_at
        alive: list[int] = []
        for fid in pending:
            if flow_at[fid] is None:
                # Re-solved, then removed before the push drained; its
                # entry_seq is already -1 (any recycled successor gets
                # its own re-solve and push).
                continue
            if tie:
                tie.pop(fid, None)
            alive.append(fid)
        pending.clear()
        if len(alive) >= 8:
            fids = np.array(alive, dtype=np.intp)
            rem = table.rem.take(fids)
            rate = table.rate.take(fids)
            times = base + rem / rate
            bounds = base + (rem - 1.0) / rate
            for fid, t, b in zip(alive, times.tolist(), bounds.tolist()):
                entry_seq[fid] = seq
                pess_seq[fid] = seq
                push(heap, (t, flow_at[fid].flow_id, fid, seq))
                push(pess, (b, fid, seq))
                seq += 1
        else:
            rem_item = table.rem.item
            rate_item = table.rate.item
            for fid in alive:
                rem = rem_item(fid)
                rate = rate_item(fid)
                entry_seq[fid] = seq
                pess_seq[fid] = seq
                push(heap, (base + rem / rate, flow_at[fid].flow_id, fid, seq))
                push(pess, (base + (rem - 1.0) / rate, fid, seq))
                seq += 1
        self._push_seq = seq
        self.perf.heap_pushes += len(alive)
        # Compact when superseded entries dominate: every pop and push
        # pays log(len) on garbage otherwise.  A heap rebuilt from only
        # the live entries pops them in the same order (pop order is the
        # sorted order of the keys, and the fast path's root/children
        # reads are arrangement-independent), so the replay is unchanged.
        cap = (len(table.fid_of) << 1) + 64
        if len(heap) > cap:
            live = [e for e in heap if entry_seq[e[2]] == e[3]]
            self.perf.stale_pops += len(heap) - len(live)
            heap[:] = live
            heapq.heapify(heap)
        if len(pess) > cap:
            live_p = [e for e in pess if pess_seq[e[1]] == e[2]]
            pess[:] = live_p
            heapq.heapify(pess)
        self.perf.scan_wall += wall_clock() - t0

    def _peek_completion_heap(self) -> tuple[float, int, Flow] | None:
        """Lazy-invalidation heap peek (component mode).

        The anchor is the earliest parked prediction across the heap and
        the tie group (their union is exactly the old single-heap state:
        tie-group park times are the fresh values a re-push would have
        parked).  Every candidate parked within the tie window of the
        anchor is re-predicted fresh and the winner snapped to the
        minimal ``flow_id`` — identical selection to draining the window
        out of the heap, without the per-event pop/re-push of the whole
        wave.  Entries whose seq is no longer the slot's live one (rate
        re-solved again, flow finished/cancelled, slot recycled) are
        discarded on pop.
        """
        if self._pending_push:
            self._drain_pending()
        heap = self._heap
        entry_seq = self._entry_seq
        tie = self._tie
        stale = 0
        # Discard stale tops so the anchor is a live prediction.
        while heap:
            t_top, flowid_top, fid_top, seq_top = heap[0]
            if entry_seq[fid_top] == seq_top:
                break
            heapq.heappop(heap)
            stale += 1
        if stale:
            self.perf.stale_pops += stale
        t_anchor = heap[0][0] if heap else math.inf
        if tie:
            t_tie = min(tie.values())
            if t_tie < t_anchor:
                t_anchor = t_tie
        if t_anchor == math.inf:
            return None
        horizon = t_anchor + _PEEK_TIE_WINDOW * max(1.0, abs(t_anchor))
        table = self._table
        rem_item = table.rem.item
        rate_item = table.rate.item
        base = self._settled_at
        flow_at = table.flow_at
        if not tie and heap:
            # Single-candidate fast path: the heap's second-smallest parked
            # time sits at the root's children, so when both are beyond the
            # horizon the tie-window drain below would pull exactly the top.
            # Pop/re-predict/re-push it directly — same entries, same
            # floats as the general path on this input.
            t_top, flowid_top, fid_top, seq_top = heap[0]
            n = len(heap)
            second = heap[1][0] if n > 1 else math.inf
            if n > 2 and heap[2][0] < second:
                second = heap[2][0]
            if second > horizon:
                t_new = base + rem_item(fid_top) / rate_item(fid_top)
                seq = self._push_seq
                self._push_seq = seq + 1
                entry_seq[fid_top] = seq
                # heapreplace = pop + push in one sift; every read of the
                # heap (root, min of the root's children, ascending pops)
                # is arrangement-independent, so the replay is unchanged.
                heapq.heapreplace(heap, (t_new, flowid_top, fid_top, seq))
                self.perf.heap_pushes += 1
                flow = flow_at[fid_top]
                assert flow is not None
                return (t_new, flowid_top, flow)
        # General path: gather every candidate parked within the horizon —
        # tie-group members for free, heap entries by popping them into the
        # tie group (their live-entry marker moves with them).
        cands: list[int] = []
        if tie:
            for fid, park in tie.items():
                if park <= horizon:
                    cands.append(fid)
        stale = 0
        while heap and heap[0][0] <= horizon:
            _, flow_id, fid, seq = heapq.heappop(heap)
            if entry_seq[fid] != seq:
                stale += 1
                continue
            entry_seq[fid] = -1
            tie[fid] = 0.0  # parked fresh value assigned just below
            cands.append(fid)
        if stale:
            self.perf.stale_pops += stale
        # Re-predict every candidate from the current settled state (a
        # parked prediction drifts from its fresh value only by the
        # settles' float rounding, far inside the window), then snap:
        # the winner is the minimal ``flow_id`` among candidates within
        # the window of the fresh minimum.  Symmetric workloads finish
        # whole waves of chunks at the *exact same* simulated instant,
        # and which prediction rounds lowest is float noise — snapping
        # makes the firing order (and with it every downstream RNG draw)
        # depend only on flow identity, matching the sweep's retire
        # order.
        t_min = math.inf
        if len(cands) >= 8:
            fids = np.array(cands, dtype=np.intp)
            fresh = base + table.rem.take(fids) / table.rate.take(fids)
            for fid, t_new in zip(cands, fresh.tolist()):
                tie[fid] = t_new
                if t_new < t_min:
                    t_min = t_new
        else:
            for fid in cands:
                t_new = base + rem_item(fid) / rate_item(fid)
                tie[fid] = t_new
                if t_new < t_min:
                    t_min = t_new
        best_t = math.inf
        best_id = -1
        best_fid = -1
        if cands:
            snap = t_min + _PEEK_TIE_WINDOW * max(1.0, abs(t_min))
            for fid in cands:
                t_new = tie[fid]
                if t_new <= snap:
                    flow_id = flow_at[fid].flow_id
                    if best_id < 0 or flow_id < best_id:
                        best_t = t_new
                        best_id = flow_id
                        best_fid = fid
        if best_id < 0:
            return None
        flow = flow_at[best_fid]
        assert flow is not None
        return (best_t, best_id, flow)

    def _peek_completion_cache(self) -> tuple[float, int, Flow] | None:
        """Per-epoch full-prediction cache (incremental/reference modes).

        One vectorised prediction pass per rate epoch; the ``(time,
        flow_id)``-minimal flow is cached and stays valid for the whole
        epoch because any flow-set change dirties the rates.  Ties on the
        predicted time break by ``flow_id`` — the registry's insertion
        order, matching the pre-incremental engine's scan.
        """
        if self._pred_epoch != self._epoch:
            t0 = wall_clock()
            table = self._table
            if table.fid_of:
                rem, rate, _ = table.views()
                t = self.now + rem / rate
                i = int(t.argmin())
                tv = t[i]
                ties = (t == tv).nonzero()[0]
                if len(ties) > 1:
                    flow = min(
                        (table.flow_at[j] for j in ties.tolist()),
                        key=lambda f: f.flow_id,
                    )
                else:
                    flow = table.flow_at[i]
                self._next_completion = (float(tv), flow.flow_id, flow)
            else:
                self._next_completion = None
            self._pred_epoch = self._epoch
            self.perf.prediction_rebuilds += 1
            self.perf.scan_wall += wall_clock() - t0
        return self._next_completion

    def _pending_event(self) -> tuple[float, float, tuple[float, int, Flow] | None] | None:
        """The next event, computed once: ``(flow_t, timer_t, completion)``."""
        completion = self._peek_completion()
        timer_t = self._timers[0][0] if self._timers else math.inf
        flow_t = completion[0] if completion else math.inf
        if timer_t is math.inf and flow_t is math.inf:
            return None
        return flow_t, timer_t, completion

    def _peek_time(self) -> float:
        event = self._pending_event()
        if event is None:
            return math.inf
        return min(event[0], event[1])

    # -- main loop ----------------------------------------------------------------

    def _can_coalesce(self, t: float) -> bool:
        """May the next timer at exactly ``t`` join the current cycle?

        True only when a conservative bound proves the sequential replay
        is unchanged: every active flow's remaining is still at least
        ``thresh`` bytes, where ``thresh/cap_max`` clears the tie window
        around ``t`` with margin.  Then no completion can be predicted
        at or before ``t`` (so event selection would pick the timer
        anyway) and no sweep in between can retire anything (so
        deferring the sweeps to the end of the wave is a no-op) —
        remaining-bytes bounds are immune to the rate *rises* the
        sequential replay's mid-wave re-solves could produce, which
        per-rate retire bounds are not.  The floor is lowered by every
        flow start; when the cheap check fails it is refreshed once by a
        fused scan before giving up, so the O(n) scan runs at most once
        per denied wave, never per event.
        """
        cap = self._cap_max
        floor = self._scan_floor
        drain = (t - self._scan_at) * cap
        thresh = 4.0 * _PEEK_TIE_WINDOW * max(1.0, t) * cap
        if thresh < 1.0:
            thresh = 1.0
        if floor - drain > thresh + 1e-9 * (floor + drain):
            return True
        table = self._table
        if not table.fid_of:
            return True
        dt = self.now - self._settled_at
        rem, rate, scratch = table.views()
        if dt > 0.0:
            np.multiply(rate, dt, out=scratch)
            np.subtract(rem, scratch, out=scratch)
            floor = float(scratch.min())
        else:
            floor = float(rem.min())
        self._scan_floor = floor
        self._scan_at = self.now
        drain = (t - self.now) * cap
        return floor - drain > thresh + 1e-9 * (floor + drain)

    def _process(self, event: tuple[float, float, tuple[float, int, Flow] | None]) -> int:
        """Process one event cycle; returns the number of events drained."""
        flow_t, timer_t, completion = event
        processed = 1
        if flow_t <= timer_t:
            assert completion is not None
            t, _, flow = completion
            self.now = t
            # The predicted flow finishes; numerically-simultaneous
            # completions are picked up by the sweep below.
            flow.remaining = 0.0
            self._table.rem[flow.fid] = 0.0
            self._finish(flow)
            self.perf.flow_events += 1
        else:
            self.now = timer_t
            timers = self._timers
            _, _, callback = heapq.heappop(timers)
            callback()
            self.perf.timer_events += 1
            # Coalesce the timer wave: drain every timer sharing this
            # exact timestamp in one settle/solve cycle while the replay
            # bound holds (see _can_coalesce).  The pop budget is the
            # heap size at wave start, so a callback endlessly
            # rescheduling at the same instant still returns to the main
            # loop (and its max_events guard).
            if timers and timers[0][0] == timer_t and self._calloc is not None:
                budget = len(timers)
                while (
                    processed <= budget
                    and timers
                    and timers[0][0] == timer_t
                    and self._can_coalesce(timer_t)
                ):
                    _, _, cb = heapq.heappop(timers)
                    cb()
                    self.perf.timer_events += 1
                    processed += 1
                if processed > 1:
                    self.perf.coalesced_events += processed - 1
        self._sweep()
        self.events_processed += processed
        return processed

    def _sweep(self) -> None:
        """Retire every flow the elapsed interval drained to (near) zero.

        Component mode pulls candidates from the pessimistic retire-time
        heap: a slot is examined only once its bound has come due, so
        the common case is one heap peek and no arithmetic at all.  Due
        candidates get the exact drain check (``remaining − rate·dt``,
        the same IEEE operations the full-array scan performs
        elementwise); survivors are re-queued with a bound refreshed
        from their just-computed remaining (their rate is unchanged — a
        re-rate would have superseded the entry).  The cache modes keep
        the fused whole-range scan.
        """
        table = self._table
        if not table.fid_of:
            return
        now = self.now
        if self._calloc is None:
            self._sweep_scan(now)
            return
        pess = self._pess
        flow_at = table.flow_at
        pess_seq = self._pess_seq
        pop = heapq.heappop
        cands: list[int] = []
        while pess:
            bound, fid, seq = pess[0]
            if pess_seq[fid] != seq:
                pop(pess)
                continue
            if bound > now:
                break
            pop(pess)
            cands.append(fid)
        if not cands:
            return
        dt = now - self._settled_at
        rem_item = table.rem.item
        rate_item = table.rate.item
        push = heapq.heappush
        hits: list[tuple[Flow, float]] = []
        for fid in cands:
            if dt > 0.0:
                current = rem_item(fid) - rate_item(fid) * dt
            else:
                current = rem_item(fid)
            if current <= REMAINING_EPS:
                hits.append((flow_at[fid], current))
            else:
                push(pess, (now + (current - 1.0) / rate_item(fid), fid, pess_seq[fid]))
        if not hits:
            return
        hits.sort(key=lambda item: item[0].flow_id)
        for flow, value in hits:
            if flow not in self._flows:  # a sweep callback cancelled it
                continue
            flow.remaining = max(0.0, float(value))
            table.rem[flow.fid] = flow.remaining
            self._finish(flow)

    def _sweep_scan(self, now: float) -> None:
        """Whole-range drain scan (cache modes): the original exact sweep."""
        table = self._table
        dt = now - self._settled_at
        rem, rate, scratch = table.views()
        if dt > 0.0:
            np.multiply(rate, dt, out=scratch)
            np.subtract(rem, scratch, out=scratch)
            current = scratch
        else:
            current = rem
        if current.min() > REMAINING_EPS:
            return
        drained = current <= REMAINING_EPS
        flow_at = table.flow_at
        hits = sorted(
            ((flow_at[i], current[i]) for i in drained.nonzero()[0].tolist()),
            key=lambda item: item[0].flow_id,
        )
        for flow, value in hits:
            if flow not in self._flows:  # a sweep callback cancelled it
                continue
            flow.remaining = max(0.0, float(value))
            table.rem[flow.fid] = flow.remaining
            self._finish(flow)

    def step(self) -> bool:
        """Process the next event cycle.  Returns False when nothing is
        pending.  A cycle is usually one event; a wave of timers sharing
        one timestamp may drain in a single cycle (``events_processed``
        still counts each timer)."""
        event = self._pending_event()
        if event is None:
            return False
        self._process(event)
        return True

    def _finish(self, flow: Flow) -> None:
        callback = self._flows.pop(flow)
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.completed_flows += 1
        self.perf.flows_finished += 1
        callback(flow)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``until``); returns the final clock."""
        if until is None and self.fastforward and self._calloc is not None:
            return self._run_fast(max_events)
        t0 = wall_clock()
        events = 0
        while True:
            event = self._pending_event()
            if until is not None:
                next_t = min(event[0], event[1]) if event else math.inf
                if next_t > until:
                    self._refresh_rates()
                    self.now = until
                    self._settle_all()
                    break
            if event is None:
                break
            events += self._process(event)
            if events > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
        self._sync_remaining()
        self.perf.run_wall += wall_clock() - t0
        return self.now

    def _run_fast(self, max_events: int) -> float:
        """Fused fast-forward event loop (component mode, no ``until``).

        One frame drives the entire run: the per-event phases the
        general loop dispatches through methods — settle, component
        solve, prediction drain, event selection, completion/timer
        processing, retire sweep — are inlined here with every hot
        structure cached in locals, and completion *cascades* (runs of
        consecutive completion events between timers) are fast-forwarded
        without ever returning to the general dispatcher.  Identity is
        by construction: each iteration performs exactly the operations
        ``_pending_event`` + ``_process`` would, in the same order on
        the same floats —

        * the per-epoch whole-table settle sequence is replayed
          unmerged.  (It must be: each settle rounds ``rem − rate·dt``
          once per epoch, so two epochs fused into one ``dt`` would
          produce different floats for *every* active flow, not just
          the cascading component's — there is no identity-preserving
          "analytic skip" over settle epochs, which is why the
          fast-forward fuses the loop instead of integrating across
          windows.)
        * re-rated flows go through the same ``_drain_pending`` (its
          pessimistic-bound refresh is load-bearing: a rate *increase*
          can pull a flow's true retire time earlier than its stale
          bound, so skipping the refresh could make a sweep miss a
          retire the per-event engine performs);
        * event selection inlines only the no-tie single-candidate fast
          path (the dominant case) and defers tie groups and candidate
          waves to :meth:`_peek_completion_heap` — the same code the
          general loop runs;
        * the rare-case sweep body is :meth:`_sweep` itself; the inline
          part is just the "nothing due" pessimistic-heap peek.

        Only structures whose identity is stable across callbacks are
        cached (the table's lists/dicts, the heaps, the timer list);
        the slot *arrays* are re-fetched wherever they are read because
        ``FlowTable.acquire`` replaces them on growth.  The loop also
        maintains the cascade telemetry (``fastforward_cascades``,
        ``cascade_events``) and flushes all counters — even when a
        callback raises — so perf stays comparable with the general
        loop's live accounting.
        """
        t0 = wall_clock()
        perf = self.perf
        calloc = self._calloc
        assert calloc is not None
        table = self._table
        timers = self._timers
        heap = self._heap
        pess = self._pess
        entry_seq = self._entry_seq
        pess_seq = self._pess_seq
        tie = self._tie
        pending = self._pending_push
        flow_at = table.flow_at
        fid_of = table.fid_of
        flows = self._flows
        # The allocator's dirty-component set (identity-stable: cleared
        # in place by solve()).  Empty means the last flow event removed
        # a singleton component — the refresh still settles and opens a
        # new epoch, but the solve call would be a no-op and is skipped.
        calloc_dirty = calloc._dirty
        heappop = heapq.heappop
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        heapify = heapq.heapify
        clock = wall_clock
        inf = math.inf
        tw = _PEEK_TIE_WINDOW
        events = 0
        run_len = 0
        solve_wall = 0.0
        settle_wall = 0.0
        scan_wall = 0.0
        solves = 0
        settles = 0
        flows_settled = 0
        iters_acc = 0
        comp_solves = 0
        flows_resolved = 0
        vec_solves = 0
        memo_acc = 0
        heap_pushes = 0
        stale_pops = 0
        flow_events = 0
        timer_events = 0
        coalesced = 0
        finished = 0
        casc_runs = 0
        casc_events = 0
        size_max = perf.component_size_max
        comp_peak = perf.components
        try:
            while True:
                # -- refresh rates (inlined _refresh_rates) ------------------
                if self._dirty:
                    now = self.now
                    dt = now - self._settled_at
                    self._settled_at = now
                    if dt > 0.0 and flow_at:
                        ts = clock()
                        flows_settled += table.settle(dt)
                        settles += 1
                        settle_wall += clock() - ts
                    ts = clock()
                    if calloc_dirty:
                        calloc.solve(out=table.rate)
                        iters_acc += calloc.last_iterations
                        comp_solves += calloc.last_component_solves
                        flows_resolved += calloc.last_flows_resolved
                        vec_solves += calloc.last_vectorized_solves
                        memo_acc += calloc.last_memo_hits
                        if calloc.last_parallel_solves:
                            perf.parallel_solves += calloc.last_parallel_solves
                            perf.pool_dispatch_wall += calloc.last_pool_wall
                        if calloc.last_component_size_max > size_max:
                            size_max = calloc.last_component_size_max
                        n_comp = calloc.component_count
                        if n_comp > comp_peak:
                            comp_peak = n_comp
                        for fid in calloc.last_changed:
                            pending[fid] = None
                    self._dirty = False
                    self._epoch += 1
                    solves += 1
                    solve_wall += clock() - ts
                if pending:
                    # Inlined scalar _drain_pending (the dominant shape:
                    # a handful of re-rated flows per epoch); big drains
                    # take the vectorised path in the method.  Both
                    # forms produce bit-identical entries.
                    if len(pending) >= 8:
                        self._drain_pending()
                    else:
                        ts = clock()
                        base = self._settled_at
                        seq = self._push_seq
                        rem_arr = table.rem
                        rate_arr = table.rate
                        npush = 0
                        for fid in pending:
                            f = flow_at[fid]
                            if f is None:
                                continue
                            if tie:
                                tie.pop(fid, None)
                            rem = rem_arr.item(fid)
                            rate = rate_arr.item(fid)
                            entry_seq[fid] = seq
                            pess_seq[fid] = seq
                            heappush(heap, (base + rem / rate, f.flow_id, fid, seq))
                            heappush(pess, (base + (rem - 1.0) / rate, fid, seq))
                            seq += 1
                            npush += 1
                        pending.clear()
                        self._push_seq = seq
                        heap_pushes += npush
                        cap = (len(fid_of) << 1) + 64
                        if len(heap) > cap:
                            live = [e for e in heap if entry_seq[e[2]] == e[3]]
                            stale_pops += len(heap) - len(live)
                            heap[:] = live
                            heapify(heap)
                        if len(pess) > cap:
                            pess[:] = [e for e in pess if pess_seq[e[1]] == e[2]]
                            heapify(pess)
                        scan_wall += clock() - ts
                # -- event selection -----------------------------------------
                timer_t = timers[0][0] if timers else inf
                n_stale = 0
                while heap:
                    top = heap[0]
                    if entry_seq[top[2]] == top[3]:
                        break
                    heappop(heap)
                    n_stale += 1
                if n_stale:
                    stale_pops += n_stale
                completion_flow = None
                if tie:
                    picked = self._peek_completion_heap()
                    if picked is not None:
                        flow_t = picked[0]
                        completion_flow = picked[2]
                    else:
                        flow_t = inf
                elif heap:
                    t_top, flowid_top, fid_top, seq_top = heap[0]
                    horizon = t_top + tw * max(1.0, abs(t_top))
                    n = len(heap)
                    second = heap[1][0] if n > 1 else inf
                    if n > 2 and heap[2][0] < second:
                        second = heap[2][0]
                    if second > horizon:
                        flow_t = self._settled_at + table.rem.item(
                            fid_top
                        ) / table.rate.item(fid_top)
                        seq = self._push_seq
                        self._push_seq = seq + 1
                        entry_seq[fid_top] = seq
                        heapreplace(heap, (flow_t, flowid_top, fid_top, seq))
                        heap_pushes += 1
                        completion_flow = flow_at[fid_top]
                    else:
                        picked = self._peek_completion_heap()
                        assert picked is not None
                        flow_t = picked[0]
                        completion_flow = picked[2]
                else:
                    flow_t = inf
                if flow_t == inf and timer_t == inf:
                    break
                # -- process (inlined _process / _finish) --------------------
                processed = 1
                if flow_t <= timer_t:
                    self.now = flow_t
                    flow = completion_flow
                    assert flow is not None
                    flow.remaining = 0.0
                    table.rem[flow.fid] = 0.0
                    callback = flows.pop(flow)
                    fidr = table.release(flow)
                    entry_seq[fidr] = -1
                    pess_seq[fidr] = -1
                    if tie:
                        tie.pop(fidr, None)
                    calloc.remove(flow)
                    self._dirty = True
                    self.completed_flows += 1
                    finished += 1
                    callback(flow)
                    flow_events += 1
                    run_len += 1
                else:
                    self.now = timer_t
                    _, _, cb = heappop(timers)
                    cb()
                    timer_events += 1
                    if timers and timers[0][0] == timer_t:
                        budget = len(timers)
                        can = self._can_coalesce
                        while (
                            processed <= budget
                            and timers
                            and timers[0][0] == timer_t
                            and can(timer_t)
                        ):
                            _, _, cb2 = heappop(timers)
                            cb2()
                            timer_events += 1
                            processed += 1
                        if processed > 1:
                            coalesced += processed - 1
                    if run_len > 1:
                        casc_runs += 1
                        casc_events += run_len - 1
                    run_len = 0
                # -- sweep (inlined nothing-due peek) ------------------------
                if fid_of:
                    now = self.now
                    while pess:
                        e = pess[0]
                        if pess_seq[e[1]] != e[2]:
                            heappop(pess)
                            continue
                        if e[0] > now:
                            break
                        self._sweep()
                        break
                self.events_processed += processed
                events += processed
                if events > max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            if run_len > 1:
                casc_runs += 1
                casc_events += run_len - 1
            perf.solve_wall += solve_wall
            perf.settle_wall += settle_wall
            perf.scan_wall += scan_wall
            perf.solves += solves
            perf.settles += settles
            perf.flows_settled += flows_settled
            perf.solve_iterations += iters_acc
            perf.component_solves += comp_solves
            perf.component_flows_resolved += flows_resolved
            perf.vectorized_solves += vec_solves
            perf.memo_hits += memo_acc
            perf.heap_pushes += heap_pushes
            perf.stale_pops += stale_pops
            perf.flow_events += flow_events
            perf.timer_events += timer_events
            perf.coalesced_events += coalesced
            perf.flows_finished += finished
            perf.fastforward_cascades += casc_runs
            perf.cascade_events += casc_events
            if size_max > perf.component_size_max:
                perf.component_size_max = size_max
            if comp_peak > perf.components:
                perf.components = comp_peak
            perf.run_wall += clock() - t0
        self._sync_remaining()
        return self.now
